"""Simulated RTnet rings never violate the analytic broadcast bounds.

The figure sweeps trust the closed-form :class:`RingAnalysis`; here a
small RTnet ring actually runs at the cell level -- every terminal's
cyclic broadcast circles the ring -- and the observed end-to-end
queueing delays are checked against both evaluation paths.
"""

import pytest

from repro.rtnet import (
    RingAnalysis,
    broadcast_route,
    build_rtnet,
    establish_workload,
    symmetric_workload,
    terminal_name,
)
from repro.sim import CbrSource, SimNetwork


def simulate_ring(ring_nodes, terminals, load, horizon=4000.0,
                  phases=None):
    """Run the symmetric cyclic workload; return (sim, analysis, names)."""
    workload = symmetric_workload(load, ring_nodes, terminals)
    analysis = RingAnalysis(workload, ring_nodes)
    net = build_rtnet(ring_nodes, terminals)
    sim = SimNetwork(net, unbounded_queues=True)
    names = {}
    for (node, slot), (params, priority) in sorted(workload.items()):
        name = f"bcast-{terminal_name(node, slot)}"
        route = broadcast_route(net, node, slot)
        sim.attach_route(name, route, priority)
        phase = 0.0 if phases is None else phases((node, slot))
        CbrSource(sim.engine, name, float(params.pcr),
                  sim.ingress(name), phase=phase, until=horizon)
        names[name] = node
    sim.run(until=horizon + 800)
    return sim, analysis, names


class TestRingSimulationWithinBounds:
    @pytest.mark.parametrize("ring_nodes,terminals,load", [
        (4, 1, 0.5),
        (4, 2, 0.4),
        (6, 1, 0.6),
    ])
    def test_aligned_sources(self, ring_nodes, terminals, load):
        sim, analysis, names = simulate_ring(ring_nodes, terminals, load)
        for name, node in names.items():
            stats = sim.metrics.stats(name)
            assert stats.delivered > 0
            bound = float(analysis.e2e_bound(node, 0))
            assert stats.max_e2e_delay <= bound + 1e-9

    def test_phase_scattered_sources(self):
        sim, analysis, names = simulate_ring(
            5, 2, 0.5,
            phases=lambda key: (key[0] * 7 + key[1] * 3) % 11 * 0.9)
        for name, node in names.items():
            stats = sim.metrics.stats(name)
            bound = float(analysis.e2e_bound(node, 0))
            assert stats.max_e2e_delay <= bound + 1e-9

    def test_per_link_waits_within_link_bounds(self):
        sim, analysis, names = simulate_ring(4, 2, 0.5)
        for name, node in names.items():
            stats = sim.metrics.stats(name)
            for hop_index, worst in enumerate(stats.max_hop_waits):
                link = (node + hop_index) % 4
                assert worst <= float(analysis.link_bound(link, 0)) + 1e-9

    def test_no_drops_with_real_queues(self):
        """Admitted broadcasts never overflow the real 32-cell queues."""
        workload = symmetric_workload(0.4, 4, 2)
        cac, _established = establish_workload(workload, 4, 2)
        net = cac.network
        sim = SimNetwork(net)     # real (bounded) queue sizes
        for (node, slot), (params, _priority) in sorted(workload.items()):
            name = f"bcast-{terminal_name(node, slot)}"
            sim.attach_route(name, broadcast_route(net, node, slot))
            CbrSource(sim.engine, name, float(params.pcr),
                      sim.ingress(name), until=3000.0)
        sim.run(until=3800.0)
        assert sim.total_drops() == 0
        assert sim.metrics.total_delivered() > 0

    def test_delivery_counts(self):
        sim, _analysis, names = simulate_ring(4, 1, 0.4, horizon=2000.0)
        counts = [sim.metrics.stats(name).delivered for name in names]
        # All broadcasts emit the same schedule: equal delivery counts.
        assert len(set(counts)) == 1
