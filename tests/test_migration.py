"""Make-before-break migration: cutover, policies, journal, atomicity."""

from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError, MigrationError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import Network
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.migration import (
    MIGRATION_OPS,
    MigrationJournal,
    MigrationRecord,
    no_double_booking,
)
from repro.rtnet.failover import evacuate_switch, failover_migration_study


def diamond_network(bounds=None):
    """t0 - s0 - {s1 | s2} - s3 - t1: two disjoint middle paths."""
    net = Network()
    for name in ("s0", "s1", "s2", "s3"):
        net.add_switch(name)
    port_bounds = bounds or {0: 64}
    for src, dst in [("s0", "s1"), ("s1", "s3"),
                     ("s0", "s2"), ("s2", "s3")]:
        net.add_link(src, dst, bounds=port_bounds)
    net.add_terminal("t0")
    net.add_link("t0", "s0")
    net.add_link("s0", "t0", bounds=port_bounds)
    net.add_terminal("t1")
    net.add_link("t1", "s3")
    net.add_link("s3", "t1", bounds=port_bounds)
    return net


def diamond_cac(**kwargs):
    net = diamond_network()
    injector = FaultInjector(FaultPlan([]))
    cac = NetworkCAC(net, fault_injector=injector, **kwargs)
    return net, injector, cac


def upper_path_request(net, name="vc0", rate=F(1, 10)):
    """Pinned over the s0->s1->s3 branch."""
    route = shortest_path(net, "t0", "t1", avoid=frozenset({"s2"}))
    return ConnectionRequest(name, cbr(rate), route)


class TestMigrate:
    def test_migrates_to_the_detour_with_a_new_generation(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        moved = cac.migrate("vc0", avoid=frozenset({"s0->s1"}))

        assert moved.name == "vc0"
        assert moved.generation == 1
        assert moved.leg_name == "vc0@g1"
        links = [hop.in_link for hop in moved.hops]
        assert "s0->s1" not in links
        assert "s0->s2" in links
        # Old legs are gone, the new generation is booked everywhere.
        assert sorted(cac.switch("s1").legs) == []
        assert sorted(cac.switch("s2").legs) == ["vc0@g1"]
        assert sorted(cac.switch("s0").legs) == ["vc0@g1"]
        assert no_double_booking(cac)

    def test_repeated_migration_bumps_the_generation(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        cac.migrate("vc0", avoid=frozenset({"s0->s1"}))
        back = cac.migrate("vc0", avoid=frozenset({"s0->s2"}))
        assert back.generation == 2
        assert back.leg_name == "vc0@g2"
        assert sorted(cac.switch("s1").legs) == ["vc0@g2"]
        assert no_double_booking(cac)

    def test_migrated_connection_tears_down_cleanly(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        cac.migrate("vc0", avoid=frozenset({"s0->s1"}))
        cac.teardown("vc0")
        assert cac.established == {}
        for name in ("s0", "s1", "s2", "s3"):
            assert cac.switch(name).legs == {}

    def test_no_route_raises_and_leaves_old_route_untouched(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        before = dict(cac.switch("s1").legs)
        with pytest.raises(MigrationError) as excinfo:
            cac.migrate("vc0", avoid=frozenset({"s0->s1", "s0->s2"}))
        assert "vc0" in str(excinfo.value)
        assert excinfo.value.connection == "vc0"
        assert cac.established["vc0"].generation == 0
        assert dict(cac.switch("s1").legs) == before
        assert no_double_booking(cac)

    def test_refused_detour_is_atomic(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net, rate=F(1, 10)))
        # Saturate the lower branch so the detour's admission refuses.
        blockers = [
            ConnectionRequest(
                f"block{index}", cbr(F(1, 4)),
                shortest_path(net, "t0", "t1",
                              avoid=frozenset({"s1"})))
            for index in range(3)
        ]
        for request in blockers:
            try:
                cac.setup(request)
            except AdmissionError:
                break
        with pytest.raises(MigrationError):
            cac.migrate("vc0", avoid=frozenset({"s0->s1"}))
        # Old route intact, no half-reserved detour legs anywhere.
        assert cac.established["vc0"].generation == 0
        assert "vc0" in cac.switch("s1").legs
        assert not cac.switch("s2").pending
        assert no_double_booking(cac)

    def test_unknown_connection_refused(self):
        _net, _injector, cac = diamond_cac()
        with pytest.raises(AdmissionError):
            cac.migrate("ghost", avoid=frozenset())


class TestFailureHandling:
    def test_link_failure_migrates_the_victims(self):
        net, injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        bystander = ConnectionRequest(
            "vc1", cbr(F(1, 12)),
            shortest_path(net, "t0", "t1", avoid=frozenset({"s1"})))
        cac.setup(bystander)

        injector.fail_link("s0->s1")
        report = cac.handle_link_failure("s0->s1")
        assert report.migrated == ("vc0",)
        assert report.dropped == ()
        assert report.kept == ()
        assert report.trigger == "s0->s1"
        assert report.kind == "link"
        assert report.survived == 1
        assert report.victims == ("vc0",)
        # The bystander on the lower path was not touched.
        assert cac.established["vc1"].generation == 0
        assert no_double_booking(cac)

    def test_switch_failure_migrates_around_the_switch(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        report = cac.handle_switch_failure("s1")
        assert report.migrated == ("vc0",)
        assert report.kind == "switch"
        assert all(hop.switch != "s1"
                   for hop in cac.established["vc0"].hops)
        assert no_double_booking(cac)

    def test_drop_policy_releases_unmigratable_victims(self):
        net, injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        injector.fail_link("s0->s1")
        injector.fail_link("s0->s2")
        report = cac.handle_link_failure("s0->s1",
                                         policy="migrate-or-drop")
        assert report.dropped == ("vc0",)
        assert "vc0" in report.failures
        assert cac.established == {}
        # Every reachable switch released its leg; s1 sits behind the
        # dead link but was never crashed, so the release walked to it.
        for name in ("s0", "s2", "s3"):
            assert cac.switch(name).legs == {}

    def test_keep_policy_leaves_victims_booked(self):
        net, injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        injector.fail_link("s0->s1")
        injector.fail_link("s0->s2")
        report = cac.handle_link_failure("s0->s1",
                                         policy="migrate-or-keep")
        assert report.kept == ("vc0",)
        assert cac.established["vc0"].generation == 0
        assert "vc0" in cac.switch("s1").legs
        assert no_double_booking(cac)

    def test_restored_link_carries_traffic_again(self):
        net, injector, cac = diamond_cac()
        injector.fail_link("s0->s1")
        injector.restore_link("s0->s1")
        cac.setup(upper_path_request(net))
        assert "vc0" in cac.established

    def test_unknown_policy_refused(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        with pytest.raises(ValueError):
            cac.handle_link_failure("s0->s1", policy="pray")

    def test_migration_counters(self, obs_enabled):
        registry, _tracer = obs_enabled
        net, injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        cac.handle_link_failure("s0->s1")
        snapshot = registry.snapshot()
        assert snapshot["cac_migrations_total"]["outcome=migrated"] == 1


class TestMigrationJournal:
    def test_successful_migration_journals_all_steps(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        cac.migrate("vc0", avoid=frozenset({"s0->s1"}))
        ops = [record.op
               for record in cac.migration_journal.for_connection("vc0")]
        assert ops == ["start", "cutover", "released", "done"]
        start = cac.migration_journal.entries[0]
        assert start.generation == 1
        assert "s0->s2" in start.detail

    def test_failed_migration_journals_the_refusal(self):
        net, _injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        with pytest.raises(MigrationError):
            cac.migrate("vc0", avoid=frozenset({"s0->s1", "s0->s2"}))
        ops = [record.op
               for record in cac.migration_journal.for_connection("vc0")]
        assert ops[-1] == "failed"

    def test_drop_and_keep_are_journaled(self):
        net, injector, cac = diamond_cac()
        cac.setup(upper_path_request(net))
        injector.fail_link("s0->s1")
        injector.fail_link("s0->s2")
        cac.handle_link_failure("s0->s1", policy="migrate-or-drop")
        ops = [record.op
               for record in cac.migration_journal.for_connection("vc0")]
        assert ops[-1] == "dropped"

    def test_journal_is_append_only_and_sequenced(self):
        journal = MigrationJournal()
        journal.append("start", "vc0", 1, "detour")
        journal.append("done", "vc0", 1)
        assert [r.sequence for r in journal] == [0, 1]
        assert len(journal) == 2
        assert journal.entries == journal.for_connection("vc0")

    def test_unknown_op_refused(self):
        with pytest.raises(ValueError):
            MigrationRecord(0, "teleport", "vc0", 1)
        assert "start" in MIGRATION_OPS


class TestFaultInjectorRestore:
    def test_restore_is_the_inverse_of_fail(self):
        injector = FaultInjector(FaultPlan([]))
        injector.fail_link("a->b")
        assert injector.link_down("a->b")
        assert injector.failed_links == {"a->b"}
        injector.restore_link("a->b")
        assert not injector.link_down("a->b")
        assert injector.failed_links == set()

    def test_listeners_see_both_transitions(self):
        injector = FaultInjector(FaultPlan([]))
        seen = []
        injector.add_link_listener(
            lambda link, up: seen.append((link, up)))
        injector.fail_link("a->b")
        injector.fail_link("a->b")     # idempotent: no second event
        injector.restore_link("a->b")
        injector.restore_link("a->b")  # idempotent too
        assert seen == [("a->b", False), ("a->b", True)]


class TestEvacuationUnderConcurrentFaults:
    """``evacuate_switch`` composes with live fault schedules."""

    def build(self):
        net = diamond_network()
        injector = FaultInjector(FaultPlan([]))
        cac = NetworkCAC(net, fault_injector=injector)
        cac.setup(upper_path_request(net, "vc0"))
        cac.setup(ConnectionRequest(
            "vc1", cbr(F(1, 12)),
            shortest_path(net, "t0", "t1", avoid=frozenset({"s1"}))))
        return net, injector, cac

    def test_evacuation_while_a_link_is_down(self):
        _net, injector, cac = self.build()
        # A concurrent link failure on the survivor's path must not
        # stop the evacuation of the crashed switch.
        injector.fail_link("s2->s3")
        affected = evacuate_switch(cac, "s1")
        assert [request.name for request in affected] == ["vc0"]
        assert "vc0" not in cac.established
        cac.recover_switch("s1")
        assert cac.switch("s1").legs == {}
        assert cac.switch("s1").verify_consistency()

    def test_evacuation_then_migration_of_survivors(self):
        _net, injector, cac = self.build()
        evacuate_switch(cac, "s1")
        cac.recover_switch("s1")
        # Now the other branch dies: the survivor migrates through the
        # just-recovered switch.
        injector.fail_link("s0->s2")
        report = cac.handle_link_failure("s0->s2")
        assert report.migrated == ("vc1",)
        assert any(hop.switch == "s1"
                   for hop in cac.established["vc1"].hops)
        assert no_double_booking(cac)

    def test_evacuated_requests_readmit_after_recovery(self):
        _net, injector, cac = self.build()
        affected = evacuate_switch(cac, "s1")
        cac.recover_switch("s1")
        for request in affected:
            cac.setup(request)
        assert "vc0" in cac.established
        assert no_double_booking(cac)


class TestMigrationStudy:
    def test_study_migrates_and_recloses(self):
        study = failover_migration_study(ring_nodes=6, sets_per_node=1)
        assert study.established == 18
        assert study.refused == 0
        # Every connection crossing the dead link survived by detour.
        assert len(study.migrated) == 9
        assert study.dropped == ()
        assert study.probes_to_detect == 3
        assert study.detection_latency is not None
        assert study.open_hops == ("ring0->ring1@ring1",)
        assert study.breaker_reclosed
        assert study.booking_safe

    def test_study_respects_the_keep_policy(self):
        study = failover_migration_study(ring_nodes=4,
                                         policy="migrate-or-keep")
        assert study.policy == "migrate-or-keep"
        assert study.dropped == ()
        assert study.booking_safe
