"""ASCII table / plot / CSV rendering."""

import math

from repro.analysis.report import ascii_plot, render_series, render_table, to_csv


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [100, 0.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "|" in lines[0]
        assert lines[2].split("|")[0].strip() == "1"

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(["v"], [[1.0], [0.123456], [math.inf]])
        assert "1" in out
        assert "0.1235" in out
        assert "inf" in out

    def test_bool_formatting(self):
        out = render_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out


class TestRenderSeries:
    def test_rows(self):
        out = render_series("curve", [(0.1, 5.0), (0.2, 10.0)])
        assert out.startswith("curve:")
        assert "0.1" in out and "10" in out


class TestAsciiPlot:
    def test_plots_points(self):
        out = ascii_plot({"s": [(0, 0), (1, 1)]}, width=10, height=5)
        assert "*" in out
        assert "legend: *=s" in out

    def test_multiple_series_get_markers(self):
        out = ascii_plot({
            "a": [(0, 0), (1, 1)],
            "b": [(0, 1), (1, 0)],
        }, width=10, height=5)
        assert "*=a" in out and "o=b" in out

    def test_infinities_skipped(self):
        out = ascii_plot({"s": [(0, math.inf), (1, 2.0)]},
                         width=10, height=5)
        assert "inf" not in out.splitlines()[0] or "2" in out

    def test_all_infinite_is_graceful(self):
        assert "no finite data" in ascii_plot(
            {"s": [(0, math.inf)]}, width=10, height=5)

    def test_constant_series(self):
        out = ascii_plot({"s": [(0, 5.0), (1, 5.0)]}, width=10, height=5)
        assert "*" in out


class TestCsv:
    def test_header_and_rows(self):
        out = to_csv(["x", "y"], [[1, 2.5], [3, 4.0]])
        lines = out.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,4"
