"""The rate-function-style delay bound (Raha et al. [9] baseline)."""

import math
from fractions import Fraction as F

import pytest

from repro.core import aggregate, cbr, delay_bound
from repro.core.baseline import rate_function_delay_bound
from repro.core.traffic import VBRParameters


class TestRateFunctionBound:
    def test_empty_is_zero(self):
        assert rate_function_delay_bound([]) == 0

    def test_single_undistorted_cbr(self):
        # No CDV, rate <= 1: the shifted curve never exceeds t except
        # the leading unit-rate cell segment (zero backlog).
        stream = cbr(F(1, 4)).worst_case_stream()
        assert rate_function_delay_bound([(stream, 0)]) == 0

    def test_hand_computed_clump(self):
        # One CBR 1/4 with CDV 8: the shifted curve dumps A(8) = 1+7/4
        # = 11/4 bits at t=0; it drains at 1 - 1/4 = 3/4... the maximum
        # of A(t+8) - t is at t=0: 11/4.
        stream = cbr(F(1, 4)).worst_case_stream()
        assert rate_function_delay_bound([(stream, 8)]) == F(11, 4)

    def test_sums_connections(self):
        stream = cbr(F(1, 8)).worst_case_stream()
        one = rate_function_delay_bound([(stream, 16)])
        four = rate_function_delay_bound([(stream, 16)] * 4)
        assert four > one

    def test_never_tighter_than_bitstream(self):
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 16), mbs=5)
        for cdv in (0, 8, 32, 96):
            comps = [(params.worst_case_stream(), cdv) for _ in range(3)]
            mrf = rate_function_delay_bound(comps)
            bitstream = delay_bound(aggregate(
                [s.delayed(c).filtered() for s, c in comps]))
            assert mrf >= bitstream

    def test_monotone_in_cdv(self):
        stream = cbr(F(1, 8)).worst_case_stream()
        bounds = [
            rate_function_delay_bound([(stream, cdv)] * 4)
            for cdv in (0, 16, 64)
        ]
        assert bounds == sorted(bounds)

    def test_overload_is_inf(self):
        stream = cbr(F(1, 2)).worst_case_stream()
        assert rate_function_delay_bound(
            [(stream, 10)] * 3) == math.inf

    def test_exact_capacity_is_finite(self):
        stream = cbr(F(1, 2)).worst_case_stream()
        bound = rate_function_delay_bound([(stream, 10)] * 2)
        assert bound != math.inf
        assert bound > 0

    def test_negative_cdv_rejected(self):
        stream = cbr(F(1, 4)).worst_case_stream()
        with pytest.raises(ValueError):
            rate_function_delay_bound([(stream, -1)])
