"""The event bus and the adapters feeding it (satellite unification)."""

from fractions import Fraction as F

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.signaling import (
    SetupMessage,
    SignalingTrace,
    message_event_fields,
)
from repro.network.topology import line_network
from repro.obs.events import Event, EventBus, EventLog
from repro.robustness.journal import AdmissionJournal
from repro.sim.cell import Cell
from repro.sim.engine import Engine
from repro.sim.trace import CellTracer


class TestEventBus:
    def test_emit_without_subscribers_returns_none(self):
        bus = EventBus()
        assert not bus.has_subscribers
        assert bus.emit("cat", "name", x=1) is None

    def test_emit_fans_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.name)))
        bus.subscribe(lambda e: seen.append(("b", e.name)))
        event = bus.emit("cat", "hello", time=3.0, value=7)
        assert isinstance(event, Event)
        assert event.time == 3.0 and event.fields == {"value": 7}
        assert seen == [("a", "hello"), ("b", "hello")]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit("cat", "one", time=0.0)
        unsubscribe()
        unsubscribe()                       # idempotent
        bus.emit("cat", "two", time=0.0)
        assert [e.name for e in seen] == ["one"]

    def test_event_to_dict_round_trips_fields(self):
        event = Event("journal", "reserve", 1.5, {"connection_id": "vc0"})
        assert event.to_dict() == {
            "category": "journal", "name": "reserve", "time": 1.5,
            "fields": {"connection_id": "vc0"},
        }


class TestEventLog:
    def test_collects_and_filters_by_category(self):
        bus = EventBus()
        with EventLog(bus) as log:
            bus.emit("a", "x", time=0.0)
            bus.emit("b", "y", time=0.0)
        bus.emit("a", "after-close", time=0.0)
        assert len(log) == 2
        assert [e.name for e in log.of_category("a")] == ["x"]

    def test_keep_cap(self):
        bus = EventBus()
        log = EventLog(bus, keep=2)
        for index in range(5):
            bus.emit("a", str(index), time=0.0)
        assert [e.name for e in log] == ["3", "4"]


class TestSignalingAdapter:
    def test_record_emits_one_event_per_message(self, obs_bus):
        with EventLog(obs_bus) as log:
            trace = SignalingTrace()
            trace.record(SetupMessage("vc0", "sw0", F(1, 8), F(1, 8),
                                      1, None, 0))
        assert len(trace) == 1              # legacy list API still works
        (event,) = log.of_category("signaling")
        assert event.name == "setup"
        assert event.fields["connection"] == "vc0"
        assert event.fields["at_node"] == "sw0"

    def test_full_walk_is_observable_on_the_bus(self, obs_bus):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        request = ConnectionRequest(
            "vc0", cbr(F(1, 8)), shortest_path(net, "t0.0", "t2.0"))
        with EventLog(obs_bus) as log:
            cac.setup(request, trace=SignalingTrace())
        names = [e.name for e in log.of_category("signaling")]
        assert names.count("setup") == 3    # one reserve per hop
        assert names.count("commit") == 3
        assert names[-1] == "connected"

    def test_explicit_bus_overrides_the_global(self, obs_bus):
        private = EventBus()
        with EventLog(private) as log:
            trace = SignalingTrace(bus=private)
            trace.record(SetupMessage("vc0", "sw0", F(1, 8), F(1, 8),
                                      1, None, 0))
        assert len(log) == 1

    def test_message_event_fields_cover_the_dataclass(self):
        message = SetupMessage("vc0", "sw0", F(1, 8), F(1, 8), 1, None, 0)
        fields = message_event_fields(message)
        assert fields["pcr"] == F(1, 8)
        assert set(fields) == {"connection", "at_node", "pcr", "scr",
                               "mbs", "delay_bound", "cdv_in"}


class TestJournalAdapter:
    def test_append_emits_journal_events(self, obs_bus):
        journal = AdmissionJournal()
        with EventLog(obs_bus) as log:
            journal.append("admit", "vc0", leg="leg")
            journal.append("release", "vc0")
        events = log.of_category("journal")
        assert [(e.name, e.fields["sequence"]) for e in events] == [
            ("admit", 0), ("release", 1)]
        assert all(e.fields["connection_id"] == "vc0" for e in events)

    def test_append_without_subscribers_is_silent(self):
        journal = AdmissionJournal()
        journal.append("admit", "vc0", leg="leg")
        assert len(journal) == 1


class TestCellTracerAdapter:
    def test_observe_emits_sim_cell_events(self, obs_bus):
        engine = Engine()
        tracer = CellTracer(engine)
        cell = Cell(connection="vc0", sequence=3, emitted_at=0.0)
        engine.schedule(2.5, lambda: tracer.observe("sw:out", cell))
        with EventLog(obs_bus) as log:
            engine.run()
        (event,) = log.of_category("sim.cell")
        assert event.name == "observe"
        assert event.time == 2.5            # engine time, not obs clock
        assert event.fields == {"station": "sw:out", "connection": "vc0",
                                "sequence": 3}
        # The legacy journey log still fills in.
        assert tracer.journey("vc0", 3).events[0].station == "sw:out"
