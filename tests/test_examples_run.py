"""Every example script must run to completion as a subprocess.

Examples double as integration tests of the public API surface; a
broken example means broken documentation.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "rtnet_cyclic.py", "vbr_bursty_plant.py",
            "jitter_motivation.py", "soft_vs_hard.py",
            "central_server.py"} <= names
