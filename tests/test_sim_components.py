"""Queues, ports, switches, sources, jitter stages -- component tests."""

import pytest

from repro.core.traffic import VBRParameters, cbr, worst_case_cell_times
from repro.exceptions import SimulationError
from repro.sim.cell import Cell
from repro.sim.engine import Engine
from repro.sim.jitter import ClumpingJitter, FixedJitter
from repro.sim.metrics import Metrics
from repro.sim.queues import PriorityFifo
from repro.sim.sources import (
    CbrSource,
    GreedyVbrSource,
    RandomVbrSource,
    ScheduleSource,
)
from repro.sim.switch import SimSwitch


def make_cell(name="vc", seq=0, at=0.0):
    return Cell(name, seq, at)


class TestPriorityFifo:
    def test_fifo_within_priority(self):
        fifo = PriorityFifo()
        for seq in range(3):
            fifo.push(make_cell(seq=seq), 0, float(seq))
        popped = [fifo.pop()[0].sequence for _ in range(3)]
        assert popped == [0, 1, 2]

    def test_priority_order(self):
        fifo = PriorityFifo()
        fifo.push(make_cell("low"), 2, 0.0)
        fifo.push(make_cell("high"), 0, 0.0)
        fifo.push(make_cell("mid"), 1, 0.0)
        assert [fifo.pop()[0].connection for _ in range(3)] == \
            ["high", "mid", "low"]

    def test_pop_empty_is_none(self):
        assert PriorityFifo().pop() is None

    def test_capacity_and_drops(self):
        fifo = PriorityFifo(capacities={0: 2})
        assert fifo.push(make_cell(seq=0), 0, 0.0)
        assert fifo.push(make_cell(seq=1), 0, 0.0)
        assert not fifo.push(make_cell(seq=2), 0, 0.0)
        assert fifo.drops(0) == 1
        assert fifo.total_drops() == 1
        assert fifo.depth(0) == 2

    def test_capacity_per_priority(self):
        fifo = PriorityFifo(capacities={0: 1})
        fifo.push(make_cell(), 0, 0.0)
        # Priority 1 has no declared capacity: unbounded.
        for seq in range(5):
            assert fifo.push(make_cell(seq=seq), 1, 0.0)

    def test_peak_depth_tracking(self):
        fifo = PriorityFifo()
        for seq in range(4):
            fifo.push(make_cell(seq=seq), 0, 0.0)
        fifo.pop()
        fifo.push(make_cell(seq=9), 0, 0.0)
        assert fifo.peak_depth(0) == 4

    def test_is_empty(self):
        fifo = PriorityFifo()
        assert fifo.is_empty
        fifo.push(make_cell(), 0, 0.0)
        assert not fifo.is_empty


class TestSwitchAndPort:
    def _switch_with_sink(self, engine, capacities=None):
        delivered = []
        switch = SimSwitch(engine, "sw")
        switch.add_port("out", delivered.append, capacities)
        return switch, delivered

    def test_forwarding_and_transmission(self):
        engine = Engine()
        switch, delivered = self._switch_with_sink(engine)
        switch.set_forwarding("vc", "out", 0)
        engine.schedule(5.0, lambda: switch.receive(make_cell(at=5.0)))
        engine.run()
        assert len(delivered) == 1
        assert engine.now == 6.0            # one cell time to transmit
        assert delivered[0].hop_waits == [0.0]

    def test_queueing_wait_recorded(self):
        engine = Engine()
        switch, delivered = self._switch_with_sink(engine)
        switch.set_forwarding("vc", "out", 0)
        # Two cells arrive back to back: the second waits 1 cell time.
        engine.schedule(0.0, lambda: switch.receive(make_cell(seq=0)))
        engine.schedule(0.0, lambda: switch.receive(make_cell(seq=1)))
        engine.run()
        assert [cell.hop_waits[0] for cell in delivered] == [0.0, 1.0]

    def test_priority_preemption_of_queue_order(self):
        engine = Engine()
        switch, delivered = self._switch_with_sink(engine)
        switch.set_forwarding("lo", "out", 1)
        switch.set_forwarding("hi", "out", 0)
        # Three low cells arrive, then a high cell during service of the
        # first: the high cell must jump the remaining low cells.
        engine.schedule(0.0, lambda: switch.receive(make_cell("lo", 0)))
        engine.schedule(0.0, lambda: switch.receive(make_cell("lo", 1)))
        engine.schedule(0.0, lambda: switch.receive(make_cell("lo", 2)))
        engine.schedule(0.5, lambda: switch.receive(make_cell("hi", 0)))
        engine.run()
        order = [(cell.connection, cell.sequence) for cell in delivered]
        assert order == [("lo", 0), ("hi", 0), ("lo", 1), ("lo", 2)]

    def test_unknown_connection_raises(self):
        engine = Engine()
        switch, _ = self._switch_with_sink(engine)
        with pytest.raises(SimulationError, match="forwarding"):
            switch.receive(make_cell("ghost"))

    def test_duplicate_port_rejected(self):
        engine = Engine()
        switch, _ = self._switch_with_sink(engine)
        with pytest.raises(SimulationError, match="already"):
            switch.add_port("out", lambda cell: None)

    def test_forwarding_to_missing_port_rejected(self):
        engine = Engine()
        switch, _ = self._switch_with_sink(engine)
        with pytest.raises(SimulationError, match="no port"):
            switch.set_forwarding("vc", "ghost", 0)

    def test_full_queue_drops(self):
        engine = Engine()
        switch, delivered = self._switch_with_sink(
            engine, capacities={0: 1})
        switch.set_forwarding("vc", "out", 0)
        for seq in range(4):
            engine.schedule(
                0.0, lambda seq=seq: switch.receive(make_cell(seq=seq)))
        engine.run()
        # One in service + one queued; two dropped.
        assert len(delivered) == 2
        assert switch.port("out").queue.total_drops() == 2

    def test_port_counts_transmissions(self):
        engine = Engine()
        switch, _ = self._switch_with_sink(engine)
        switch.set_forwarding("vc", "out", 0)
        for seq in range(3):
            engine.schedule(
                float(seq), lambda seq=seq: switch.receive(make_cell(seq=seq)))
        engine.run()
        assert switch.port("out").transmitted == 3


class TestSources:
    def test_schedule_source(self):
        engine = Engine()
        got = []
        ScheduleSource(engine, "vc", [0.0, 2.5, 7.0], got.append)
        engine.run()
        assert [cell.emitted_at for cell in got] == [0.0, 2.5, 7.0]
        assert [cell.sequence for cell in got] == [0, 1, 2]

    def test_cbr_source_periodic(self):
        engine = Engine()
        got = []
        CbrSource(engine, "vc", 0.25, got.append, phase=1.0, until=14.0)
        engine.run()
        assert [cell.emitted_at for cell in got] == [1.0, 5.0, 9.0, 13.0]

    def test_cbr_source_validation(self):
        with pytest.raises(ValueError):
            CbrSource(Engine(), "vc", 0.0, lambda c: None)
        with pytest.raises(ValueError):
            CbrSource(Engine(), "vc", 0.5, lambda c: None,
                      phase=5.0, until=1.0)

    def test_greedy_vbr_matches_schedule(self):
        engine = Engine()
        got = []
        params = VBRParameters(pcr=0.5, scr=0.1, mbs=3)
        GreedyVbrSource(engine, "vc", params, 5, got.append)
        engine.run()
        assert [cell.emitted_at for cell in got] == \
            pytest.approx(worst_case_cell_times(params, 5))

    def test_random_vbr_conforms(self):
        """Whatever the randomness, emissions respect the contract."""
        from repro.sim.gcra import DualLeakyBucket
        engine = Engine()
        got = []
        params = VBRParameters(pcr=0.5, scr=0.05, mbs=4)
        RandomVbrSource(engine, "vc", params, got.append,
                        until=3000.0, seed=7)
        engine.run()
        assert len(got) > 10
        police = DualLeakyBucket(params)
        for cell in got:
            assert police.conforms(cell.emitted_at)
            police.record_emission(cell.emitted_at)

    def test_random_vbr_reproducible(self):
        def run(seed):
            engine = Engine()
            got = []
            params = VBRParameters(pcr=0.5, scr=0.05, mbs=4)
            RandomVbrSource(engine, "vc", params, got.append,
                            until=1000.0, seed=seed)
            engine.run()
            return [cell.emitted_at for cell in got]
        assert run(3) == run(3)
        assert run(3) != run(4)


class TestJitter:
    def test_fixed_jitter_shifts(self):
        engine = Engine()
        got = []
        stage = FixedJitter(engine, 5.0,
                            lambda cell: got.append(engine.now))
        engine.schedule(2.0, lambda: stage.receive(make_cell()))
        engine.run()
        assert got == [7.0]

    def test_fixed_jitter_validation(self):
        with pytest.raises(ValueError):
            FixedJitter(Engine(), -1.0, lambda cell: None)

    def test_clumping_releases_at_window_end(self):
        engine = Engine()
        got = []
        stage = ClumpingJitter(engine, 10.0,
                               lambda cell: got.append(engine.now))
        for t in (1.0, 4.0, 9.0):
            engine.schedule(t, lambda: stage.receive(make_cell()))
        engine.run()
        assert got == [10.0, 11.0, 12.0]   # clumped back-to-back

    def test_clumping_bounded_by_cdv(self):
        engine = Engine()
        arrivals, releases = [], []
        stage = ClumpingJitter(engine, 8.0,
                               lambda cell: releases.append(engine.now))
        for index in range(10):
            t = index * 3.0
            arrivals.append(t)
            engine.schedule(t, lambda: stage.receive(make_cell()))
        engine.run()
        lags = [release - arrival
                for arrival, release in zip(arrivals, releases)]
        assert all(0 <= lag <= 8.0 + 1e-9 for lag in lags)

    def test_clumping_preserves_order(self):
        engine = Engine()
        got = []
        stage = ClumpingJitter(
            engine, 4.0, lambda cell: got.append(cell.sequence))
        for seq in range(8):
            engine.schedule(
                seq * 1.0, lambda seq=seq: stage.receive(make_cell(seq=seq)))
        engine.run()
        assert got == sorted(got)

    def test_clumping_validation(self):
        with pytest.raises(ValueError):
            ClumpingJitter(Engine(), 0.0, lambda cell: None)


class TestMetrics:
    def test_records_and_aggregates(self):
        metrics = Metrics()
        cell = make_cell("vc")
        cell.hop_waits.extend([1.0, 2.5])
        metrics.record(cell)
        other = make_cell("vc", seq=1)
        other.hop_waits.extend([0.5, 5.0])
        metrics.record(other)
        stats = metrics.stats("vc")
        assert stats.delivered == 2
        assert stats.max_e2e_delay == 5.5
        assert stats.mean_e2e_delay == pytest.approx((3.5 + 5.5) / 2)
        assert stats.max_hop_waits == [1.0, 5.0]

    def test_unknown_connection_is_zero(self):
        stats = Metrics().stats("ghost")
        assert stats.delivered == 0
        assert stats.mean_e2e_delay == 0.0

    def test_worst_e2e_across_connections(self):
        metrics = Metrics()
        a = make_cell("a")
        a.hop_waits.append(3.0)
        b = make_cell("b")
        b.hop_waits.append(7.0)
        metrics.record(a)
        metrics.record(b)
        assert metrics.worst_e2e_delay() == 7.0
        assert metrics.total_delivered() == 2
        assert metrics.connections() == ["a", "b"]

    def test_empty_metrics(self):
        assert Metrics().worst_e2e_delay() == 0.0
