"""The EDF comparison port."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import EdfPort, Engine, ScheduleSource, SimSwitch
from repro.sim.cell import Cell


def make_port(engine, delivered, budgets=None, default=None):
    return EdfPort(engine, "edf", delivered.append,
                   budgets=budgets, default_budget=default)


class TestEdfOrdering:
    def test_tight_deadline_jumps_queue(self):
        engine = Engine()
        delivered = []
        port = make_port(engine, delivered,
                         budgets={"loose": 100.0, "tight": 2.0})
        # Three loose cells queue up, then a tight one arrives.
        engine.schedule(0.0, lambda: port.receive(Cell("loose", 0, 0.0)))
        engine.schedule(0.0, lambda: port.receive(Cell("loose", 1, 0.0)))
        engine.schedule(0.0, lambda: port.receive(Cell("loose", 2, 0.0)))
        engine.schedule(0.5, lambda: port.receive(Cell("tight", 0, 0.5)))
        engine.run()
        order = [(c.connection, c.sequence) for c in delivered]
        assert order == [("loose", 0), ("tight", 0),
                         ("loose", 1), ("loose", 2)]

    def test_fifo_within_equal_deadlines(self):
        engine = Engine()
        delivered = []
        port = make_port(engine, delivered, default=10.0)
        for seq in range(3):
            engine.schedule(0.0, lambda seq=seq: port.receive(
                Cell("vc", seq, 0.0)))
        engine.run()
        assert [c.sequence for c in delivered] == [0, 1, 2]

    def test_waits_recorded(self):
        engine = Engine()
        delivered = []
        port = make_port(engine, delivered, default=10.0)
        engine.schedule(0.0, lambda: port.receive(Cell("vc", 0, 0.0)))
        engine.schedule(0.0, lambda: port.receive(Cell("vc", 1, 0.0)))
        engine.run()
        assert [c.hop_waits[0] for c in delivered] == [0.0, 1.0]


class TestBudgets:
    def test_missing_budget_rejected(self):
        engine = Engine()
        port = make_port(engine, [])
        with pytest.raises(SimulationError, match="no delay budget"):
            port.receive(Cell("ghost", 0, 0.0))

    def test_default_budget_applies(self):
        engine = Engine()
        port = make_port(engine, [], budgets={"a": 5.0}, default=50.0)
        assert port.budget_for("a") == 5.0
        assert port.budget_for("anything") == 50.0

    def test_deadline_miss_counted(self):
        engine = Engine()
        delivered = []
        port = make_port(engine, delivered, default=1.0)
        # Two simultaneous cells with 1-cell budgets: the second cannot
        # finish by its deadline (non-preemptive unit service).
        engine.schedule(0.0, lambda: port.receive(Cell("vc", 0, 0.0)))
        engine.schedule(0.0, lambda: port.receive(Cell("vc", 1, 0.0)))
        engine.run()
        assert port.deadline_misses == 1


class TestIntegrationWithSwitch:
    def test_custom_port_on_switch(self):
        engine = Engine()
        delivered = []
        switch = SimSwitch(engine, "sw")
        switch.add_custom_port("out", EdfPort(
            engine, "sw:out", delivered.append, default_budget=20.0))
        switch.set_forwarding("vc", "out", 0)
        ScheduleSource(engine, "vc", [0.0, 0.3], switch.receive)
        engine.run()
        assert len(delivered) == 2
        assert switch.port("out").transmitted == 2

    def test_duplicate_custom_port_rejected(self):
        engine = Engine()
        switch = SimSwitch(engine, "sw")
        switch.add_port("out", lambda cell: None)
        with pytest.raises(SimulationError, match="already"):
            switch.add_custom_port("out", object())

    def test_depth_tracking(self):
        engine = Engine()
        port = make_port(engine, [], default=10.0)
        for seq in range(4):
            engine.schedule(0.0, lambda seq=seq: port.receive(
                Cell("vc", seq, 0.0)))
        engine.run(until=0.0)
        # The first cell enters service immediately; three remain queued.
        assert port.peak_depth == 3
        engine.run()
        assert port.depth == 0
