"""End-to-end instrumentation: fixed workloads, exact metric snapshots."""

from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.delay_bound import delay_bound
from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError, SignalingTimeout
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network
from repro.robustness.faults import DROP, FaultInjector, FaultPlan, FaultSpec
from repro.robustness.retry import RetryPolicy


def two_switch_net():
    return line_network(2, bounds={0: 32}, terminals_per_switch=1)


def request_for(net, name="vc0"):
    return ConnectionRequest(
        name, cbr(F(1, 8)), shortest_path(net, "t0.0", "t1.0"))


class TestSetupTeardownSnapshot:
    """Regression-pin the counters of a fixed 2-switch setup/teardown."""

    def test_accepted_setup_counts(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(net)
        cac.setup(request_for(net))
        # One reserve (with its check) and one commit per hop.
        assert registry.total("cac_checks_total") == 2
        assert registry.total("cac_reserves_total") == 2
        assert registry.total("cac_commits_total") == 2
        assert registry.total("cac_rollbacks_total") == 0
        assert registry.total("cac_check_rejections_total") == 0
        assert registry.value("network_setups_total",
                              outcome="accepted") == 1
        # The faultless hop RTT is 0 simulated time, but every delivery
        # is observed: 2 reserves + 2 commits.
        assert registry.value("signaling_messages_total",
                              phase="reserve") == 2
        assert registry.value("signaling_messages_total",
                              phase="commit") == 2
        # The two-phase walk journals reserve + commit at each switch.
        assert registry.value("journal_ops_total", op="reserve") == 2
        assert registry.value("journal_ops_total", op="commit") == 2

    def test_teardown_counts(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(net)
        cac.setup(request_for(net))
        cac.teardown("vc0")
        assert registry.total("network_teardowns_total") == 1
        assert registry.total("cac_rollbacks_total") == 2
        assert registry.value("signaling_messages_total",
                              phase="release") == 2
        assert registry.value("journal_ops_total", op="release") == 2

    def test_rejected_setup_outcome(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(net)
        with pytest.raises(AdmissionError):
            cac.setup(ConnectionRequest(
                "vc0", cbr(F(1, 8)),
                shortest_path(net, "t0.0", "t1.0"), delay_bound=1))
        assert registry.value("network_setups_total",
                              outcome="unsatisfiable") == 1
        assert registry.value("network_setups_total",
                              outcome="accepted") == 0

    def test_setup_time_histogram_uses_simulated_time(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        NetworkCAC(net).setup(request_for(net))
        hist = registry.histogram("network_setup_time")
        assert hist.count == 1
        assert hist.sum == 0.0              # faultless walk: no timeouts


class TestSignalingFaultMetrics:
    def test_drop_counts_fault_and_retransmit(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(
            net,
            fault_injector=FaultInjector(FaultPlan(
                [FaultSpec(DROP, phase="reserve", hop=1)])),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                     max_delay=4.0),
        )
        cac.setup(request_for(net))
        assert registry.value("signaling_faults_total", kind=DROP) == 1
        assert registry.value("signaling_retransmits_total",
                              phase="reserve") == 1
        assert registry.total("signaling_timeouts_total") == 0
        # The dropped attempt burned one hop timeout plus backoff, all
        # visible in the delivery's simulated RTT.
        hist = registry.histogram("signaling_hop_rtt", phase="reserve")
        assert hist.count == 2
        assert hist.sum > 0

    def test_exhausted_retries_count_a_timeout(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(
            net,
            fault_injector=FaultInjector(FaultPlan(
                [FaultSpec(DROP, phase="reserve", hop=1, count=3)])),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                     max_delay=4.0),
        )
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(net))
        assert registry.value("signaling_timeouts_total",
                              phase="reserve") == 1
        assert registry.value("network_setups_total", outcome="timeout") == 1
        assert registry.total("cac_rollbacks_total") >= 1


class TestRecoveryMetrics:
    def loaded(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        switch.admit("a", "in", "out", 0,
                     cbr(F(1, 8)).worst_case_stream())
        switch.reserve("b", "in", "out", 0,
                       cbr(F(1, 16)).worst_case_stream())
        return switch

    def test_recover_counts_and_verifies(self, obs_enabled):
        registry, _tracer = obs_enabled
        switch = self.loaded()
        switch.crash()
        switch.recover()
        assert registry.value("cac_recoveries_total", switch="sw0") == 1
        assert registry.value("cac_recoveries_verified_total",
                              switch="sw0") == 1
        # Both journal entries replay (the pending reserve is then
        # discarded, but it was still walked).
        assert registry.value("cac_recovery_replayed_entries",
                              switch="sw0") == 2


class TestKernelPathMetrics:
    def test_exact_inputs_take_the_scalar_path(self, obs_enabled):
        registry, _tracer = obs_enabled
        stream = cbr(F(1, 8)).worst_case_stream()
        delay_bound(stream)
        assert registry.value("kernel_path_total", op="delay_bound",
                              path="scalar") == 1

    def test_float_inputs_take_the_numpy_path_when_available(
            self, obs_enabled):
        registry, _tracer = obs_enabled
        stream = cbr(0.125).worst_case_stream()
        delay_bound(stream)
        expected = "numpy" if stream.kernel is not None else "scalar"
        assert registry.value("kernel_path_total", op="delay_bound",
                              path=expected) == 1


class TestSimMetrics:
    def test_delivered_cells_and_worst_delay(self, obs_enabled):
        from repro.sim.cell import Cell
        from repro.sim.engine import Engine
        from repro.sim.metrics import Metrics

        registry, _tracer = obs_enabled
        metrics = Metrics()
        metrics.record(Cell("vc0", 0, 0.0, hop_waits=[3.0, 1.0]))
        metrics.record(Cell("vc0", 1, 1.0, hop_waits=[0.5]))
        assert registry.value("sim_cells_delivered_total") == 2
        assert registry.value("sim_worst_e2e_delay") == 4.0

        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert registry.value("sim_events_processed") == 2


class TestDisabledOverheadPath:
    def test_disabled_registry_records_nothing(self):
        from repro import obs
        assert not obs.enabled()
        net = two_switch_net()
        cac = NetworkCAC(net)
        cac.setup(request_for(net))
        cac.teardown("vc0")
        assert obs.get_registry().samples() == []

    def test_handles_rebind_after_registry_swap(self, obs_enabled):
        registry, _tracer = obs_enabled
        net = two_switch_net()
        cac = NetworkCAC(net)
        cac.setup(request_for(net))
        assert registry.total("cac_checks_total") == 2
        # Swap in a second registry mid-life: the switches' cached
        # instrument handles must follow it.
        from repro import obs
        second, _ = obs.enable(clock_source=cac.clock)
        cac.teardown("vc0")
        cac.setup(request_for(net, "vc1"))
        assert second.total("cac_checks_total") == 2
        assert registry.total("cac_checks_total") == 2   # untouched
