"""Property-based tests for the admission-control layer.

Random admit/release interleavings and random workloads; the invariants
are the ones DESIGN.md promises:

* incremental switch state always equals a from-scratch rebuild;
* everything admitted keeps every advertised bound;
* release is a perfect inverse of admit;
* the network-level walk is all-or-nothing under rejection.
"""

from fractions import Fraction as F

from hypothesis import given, settings, strategies as st

from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import VBRParameters
from repro.exceptions import AdmissionError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network


@st.composite
def traffic_descriptors(draw):
    pcr_den = draw(st.integers(min_value=2, max_value=16))
    scr_scale = draw(st.integers(min_value=2, max_value=16))
    mbs = draw(st.integers(min_value=1, max_value=6))
    pcr = F(1, pcr_den)
    return VBRParameters(pcr=pcr, scr=pcr / scr_scale, mbs=mbs)


@st.composite
def switch_actions(draw, max_actions=12):
    """A random interleaving of admits and releases."""
    actions = []
    alive = []
    count = draw(st.integers(min_value=1, max_value=max_actions))
    for index in range(count):
        release = alive and draw(st.booleans())
        if release:
            victim = alive.pop(draw(st.integers(
                min_value=0, max_value=len(alive) - 1)))
            actions.append(("release", victim, None, None, None))
        else:
            name = f"vc{index}"
            in_link = f"in{draw(st.integers(min_value=0, max_value=2))}"
            priority = draw(st.integers(min_value=0, max_value=1))
            params = draw(traffic_descriptors())
            cdv = draw(st.integers(min_value=0, max_value=64))
            actions.append(("admit", name, in_link, priority,
                            (params, cdv)))
            alive.append(name)
    return actions


@given(switch_actions())
@settings(max_examples=40, deadline=None)
def test_switch_state_never_drifts(actions):
    switch = SwitchCAC("sw")
    switch.configure_link("out", {0: 10_000, 1: 10_000})
    admitted = set()
    for action in actions:
        kind, name, in_link, priority, extra = action
        if kind == "admit":
            params, cdv = extra
            stream = params.worst_case_stream().delayed(cdv)
            try:
                switch.admit(name, in_link, "out", priority, stream)
                admitted.add(name)
            except AdmissionError:
                pass
        else:
            if name in admitted:
                switch.release(name)
                admitted.discard(name)
    assert switch.verify_consistency()
    assert set(switch.legs) == admitted


@given(switch_actions())
@settings(max_examples=40, deadline=None)
def test_admitted_traffic_keeps_advertised_bounds(actions):
    switch = SwitchCAC("sw")
    bounds = {0: 500, 1: 2000}
    switch.configure_link("out", bounds)
    for action in actions:
        kind, name, in_link, priority, extra = action
        if kind == "admit":
            params, cdv = extra
            try:
                switch.admit(name, in_link, "out", priority,
                             params.worst_case_stream().delayed(cdv))
            except AdmissionError:
                continue
        elif name in switch.legs:
            switch.release(name)
        for level, limit in bounds.items():
            assert switch.computed_bound("out", level) <= limit


@given(traffic_descriptors(), traffic_descriptors(),
       st.integers(min_value=0, max_value=32))
@settings(max_examples=40, deadline=None)
def test_release_is_inverse_of_admit(first, second, cdv):
    switch = SwitchCAC("sw")
    switch.configure_link("out", {0: 10_000})
    switch.admit("base", "in0", "out", 0, first.worst_case_stream())
    baseline = switch.sia("in0", "out", 0)
    bound_before = switch.computed_bound("out", 0)

    stream = second.worst_case_stream().delayed(cdv)
    try:
        switch.admit("guest", "in1", "out", 0, stream)
    except AdmissionError:
        return
    switch.release("guest")
    assert switch.sia("in0", "out", 0) == baseline
    assert switch.sia("in1", "out", 0).is_zero
    assert switch.computed_bound("out", 0) == bound_before


@given(st.lists(traffic_descriptors(), min_size=1, max_size=6),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=30, deadline=None)
def test_network_walk_is_all_or_nothing(descriptors, reject_seed):
    net = line_network(3, bounds={0: 64}, terminals_per_switch=3)
    from repro.core.admission import NetworkCAC
    cac = NetworkCAC(net)
    for index, params in enumerate(descriptors):
        src = f"t0.{index % 3}"
        dst = f"t2.{(index + reject_seed) % 3}"
        request = ConnectionRequest(
            f"vc{index}", params, shortest_path(net, src, dst))
        expectation = cac.would_admit(request)
        try:
            cac.setup(request)
            outcome = True
        except AdmissionError:
            outcome = False
        assert outcome == expectation
        if not outcome:
            assert f"vc{index}" not in cac.established
            for switch_name in ("s0", "s1", "s2"):
                assert f"vc{index}" not in cac.switch(switch_name).legs
    # Every switch's incremental state matches ground truth at the end.
    for switch_name in ("s0", "s1", "s2"):
        assert cac.switch(switch_name).verify_consistency()
