"""Parallel fan-out is bit-identical to serial execution.

The determinism contract of :mod:`repro.parallel`: ``jobs=N`` must
return *exactly* what the serial loop returns -- same floats, same
report fields, same per-switch journal digests.  The CI
parallel-equivalence job runs this module with
``PARALLEL_EQUIV_SCHEDULES`` raised; the local default keeps it quick.
"""

import multiprocessing
import os
from fractions import Fraction as F

import pytest

from repro.analysis.sweep import sweep_1d, sweep_2d
from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network
from repro.parallel import ParallelExecutor
from repro.robustness.harness import run_schedule, run_schedules
from repro.rtnet.evaluation import symmetric_delay_curve, vbr_capacity_curve
from repro.rtnet.failover import failover_capacity_curve

SCHEDULES = int(os.environ.get("PARALLEL_EQUIV_SCHEDULES", "8"))

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform")


# -- picklable work functions and factories (module-level on purpose) --

def triple(x):
    return x * 3


def ratio(a, b):
    return a / b


def fault_network():
    return line_network(4, bounds={0: 64}, terminals_per_switch=2)


def fault_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14)]
    spans = [("t0.0", "t3.0"), ("t0.1", "t2.0"),
             ("t1.0", "t3.1"), ("t2.1", "t3.0")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


#: One pool shared across the module: cheaper than a pool per test, and
#: exactly the reuse pattern the executor is designed for.
@pytest.fixture(scope="module")
def pool():
    with ParallelExecutor(jobs=4) as executor:
        yield executor


class TestSweepEquivalence:
    def test_sweep_1d(self, pool):
        values = [0.125 * step for step in range(24)]
        serial = sweep_1d(triple, values)
        fanned = sweep_1d(triple, values, executor=pool)
        assert pool.last_fallback is None
        assert fanned.rows == serial.rows

    def test_sweep_2d(self, pool):
        serial = sweep_2d(ratio, [1.0, 2.0, 3.0], [7.0, 11.0, 13.0])
        fanned = sweep_2d(ratio, [1.0, 2.0, 3.0], [7.0, 11.0, 13.0],
                          executor=pool)
        assert fanned.rows == serial.rows
        assert fanned.csv() == serial.csv()

    def test_sweep_jobs_argument(self):
        values = list(range(16))
        assert sweep_1d(triple, values, jobs=4).rows == \
            sweep_1d(triple, values).rows


class TestCurveEquivalence:
    def test_symmetric_delay_curve(self, pool):
        loads = [0.1, 0.3, 0.5, 0.7, 0.9]
        serial = symmetric_delay_curve(loads, terminals_per_node=4,
                                       ring_nodes=8)
        fanned = symmetric_delay_curve(loads, terminals_per_node=4,
                                       ring_nodes=8, executor=pool)
        assert fanned == serial

    def test_vbr_capacity_curve(self, pool):
        serial = vbr_capacity_curve([1, 4, 8], ring_nodes=8)
        fanned = vbr_capacity_curve([1, 4, 8], ring_nodes=8, executor=pool)
        assert fanned == serial

    def test_failover_capacity_curve(self):
        serial = failover_capacity_curve([1, 2], ring_nodes=8,
                                         tolerance=1 / 16)
        fanned = failover_capacity_curve([1, 2], ring_nodes=8,
                                         tolerance=1 / 16, jobs=4)
        assert fanned == serial


class TestFaultScheduleEquivalence:
    def test_run_schedules_matches_serial(self, pool):
        seeds = range(SCHEDULES)
        serial = [run_schedule(seed, fault_network, fault_requests)
                  for seed in seeds]
        fanned = run_schedules(seeds, fault_network, fault_requests,
                               executor=pool)
        assert pool.last_fallback is None
        assert len(fanned) == len(serial)
        for ours, theirs in zip(fanned, serial):
            assert ours.seed == theirs.seed
            assert ours.plan == theirs.plan
            assert ours.attempted == theirs.attempted
            assert ours.established == theirs.established
            assert ours.errors == theirs.errors
            assert ours.recovered == theirs.recovered
            assert ours.consistent == theirs.consistent
            assert ours.equivalent == theirs.equivalent
            assert ours.journals == theirs.journals
            assert ours.trace.messages == theirs.trace.messages

    def test_journal_digests_populated(self):
        report = run_schedule(0, fault_network, fault_requests)
        assert report.journals
        switch_names = [name for name, _ops in report.journals]
        assert switch_names == sorted(switch_names)


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis always in CI
    pass
else:
    class TestPropertyEquivalence:
        """Random inputs, same contract: fan-out == serial, bit for bit."""

        @settings(max_examples=15, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_subnormal=False),
            max_size=40))
        def test_sweep_1d_any_floats(self, pool, values):
            assert sweep_1d(triple, values, executor=pool).rows == \
                sweep_1d(triple, values).rows

        @settings(max_examples=10, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(st.integers(min_value=0, max_value=2**31 - 1))
        def test_fault_schedule_any_seed(self, pool, seed):
            serial = run_schedule(seed, fault_network, fault_requests)
            fanned, = run_schedules([seed, seed], fault_network,
                                    fault_requests, executor=pool)[:1]
            assert fanned.journals == serial.journals
            assert fanned.established == serial.established
            assert fanned.errors == serial.errors
