"""Route construction, shortest paths, alternate paths and ring walks."""

import pytest

from repro.exceptions import RoutingError
from repro.network.routing import (
    Route,
    alternate_paths,
    ring_walk,
    shortest_path,
)
from repro.network.topology import Network, line_network, ring_network


@pytest.fixture
def line():
    return line_network(3, bounds={0: 32}, terminals_per_switch=1)


class TestRoute:
    def test_valid_route(self, line):
        route = Route(line, ["t0.0->s0", "s0->s1", "s1->t1.0"])
        assert route.source == "t0.0"
        assert route.destination == "t1.0"
        assert len(route) == 3

    def test_disconnected_rejected(self, line):
        with pytest.raises(RoutingError, match="do not connect"):
            Route(line, ["t0.0->s0", "s1->s2"])

    def test_empty_rejected(self, line):
        with pytest.raises(RoutingError, match="at least one"):
            Route(line, [])

    def test_through_terminal_rejected(self, line):
        line.add_link("t1.0", "s2", name="illegal")
        with pytest.raises(RoutingError, match="not a switch"):
            Route(line, ["s1->t1.0", "illegal"])

    def test_hops_skip_access_link(self, line):
        route = Route(line, ["t0.0->s0", "s0->s1", "s1->t1.0"])
        hops = route.hops()
        assert [(h.switch, h.in_link, h.out_link) for h in hops] == [
            ("s0", "t0.0->s0", "s0->s1"),
            ("s1", "s0->s1", "s1->t1.0"),
        ]

    def test_hops_from_switch_source(self, line):
        route = Route(line, ["s0->s1", "s1->s2"])
        hops = route.hops()
        assert hops[0].switch == "s0"
        assert hops[0].in_link == "@source"

    def test_equality_and_hash(self, line):
        a = Route(line, ["s0->s1", "s1->s2"])
        b = Route(line, ["s0->s1", "s1->s2"])
        assert a == b
        assert len({a, b}) == 1

    def test_repr_shows_path(self, line):
        assert "s0 -> s1" in repr(Route(line, ["s0->s1"]))


class TestShortestPath:
    def test_direct_neighbors(self, line):
        route = shortest_path(line, "s0", "s1")
        assert route.link_names == ("s0->s1",)

    def test_terminal_to_terminal(self, line):
        route = shortest_path(line, "t0.0", "t2.0")
        assert route.source == "t0.0"
        assert route.destination == "t2.0"
        assert len(route) == 4   # access + 2 ring + delivery

    def test_no_route(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        with pytest.raises(RoutingError, match="no route"):
            shortest_path(net, "a", "b")

    def test_same_node_rejected(self, line):
        with pytest.raises(RoutingError):
            shortest_path(line, "s0", "s0")

    def test_does_not_route_through_terminals(self):
        # a - t - b is the only physical path; BFS must refuse it.
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        net.add_terminal("t")
        net.add_duplex("a", "t")
        net.add_duplex("t", "b")
        with pytest.raises(RoutingError, match="no route"):
            shortest_path(net, "a", "b")

    def test_picks_fewest_links(self):
        net = Network()
        for name in ("a", "b", "c", "d"):
            net.add_switch(name)
        net.add_link("a", "b")
        net.add_link("b", "d")
        net.add_link("a", "c")
        net.add_link("c", "b")
        route = shortest_path(net, "a", "d")
        assert route.link_names == ("a->b", "b->d")


def diamond_network():
    """a -> {b, c} -> d: two equal-length disjoint switch paths."""
    net = Network()
    for name in ("a", "b", "c", "d"):
        net.add_switch(name)
    net.add_link("a", "b")
    net.add_link("b", "d")
    net.add_link("a", "c")
    net.add_link("c", "d")
    return net


class TestAlternatePaths:
    def test_diamond_orders_equal_lengths_by_link_names(self):
        net = diamond_network()
        routes = alternate_paths(net, "a", "d", k=3)
        assert [r.link_names for r in routes] == [
            ("a->b", "b->d"),
            ("a->c", "c->d"),
        ]

    def test_diamond_k1_is_the_lexicographic_shortest(self):
        net = diamond_network()
        (route,) = alternate_paths(net, "a", "d", k=1)
        assert route.link_names == ("a->b", "b->d")

    def test_ring_offers_both_directions_shortest_first(self):
        net = ring_network(4, bounds={0: 32})
        # Add the counter-rotating ring so two directions exist.
        for index in range(4):
            nxt = (index + 1) % 4
            net.add_link(f"s{nxt}", f"s{index}", name=f"r{nxt}->{index}")
        routes = alternate_paths(net, "s0", "s3", k=2)
        assert routes[0].link_names == ("r0->3",)          # 1 hop, reverse
        assert routes[1].link_names == ("s0->s1", "s1->s2", "s2->s3")

    def test_unidirectional_ring_has_exactly_one_loopless_path(self):
        net = ring_network(4, bounds={0: 32})
        routes = alternate_paths(net, "s0", "s2", k=5)
        assert [r.link_names for r in routes] == [("s0->s1", "s1->s2")]

    def test_disconnected_returns_empty(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        assert alternate_paths(net, "a", "b", k=3) == []

    def test_avoid_link_reroutes(self):
        net = diamond_network()
        routes = alternate_paths(net, "a", "d", k=2,
                                 avoid=frozenset(("a->b",)))
        assert [r.link_names for r in routes] == [("a->c", "c->d")]

    def test_avoid_node_reroutes(self):
        net = diamond_network()
        routes = alternate_paths(net, "a", "d", k=2, avoid=frozenset(("c",)))
        assert [r.link_names for r in routes] == [("a->b", "b->d")]

    def test_never_routes_through_terminals(self):
        net = diamond_network()
        net.add_terminal("t")
        net.add_duplex("a", "t")
        net.add_duplex("t", "d")
        routes = alternate_paths(net, "a", "d", k=5)
        for route in routes:
            assert "t" not in [link.dst for link in route.links[:-1]]

    def test_terminal_endpoints_work(self, line):
        routes = alternate_paths(line, "t0.0", "t2.0", k=2)
        assert len(routes) == 1
        assert routes[0].source == "t0.0"
        assert routes[0].destination == "t2.0"

    def test_same_node_rejected(self):
        net = diamond_network()
        with pytest.raises(RoutingError):
            alternate_paths(net, "a", "a", k=1)

    def test_bad_k_rejected(self):
        net = diamond_network()
        with pytest.raises(RoutingError, match="k >= 1"):
            alternate_paths(net, "a", "d", k=0)

    def test_first_route_matches_shortest_path_length(self):
        net = diamond_network()
        best = alternate_paths(net, "a", "d", k=1)[0]
        assert len(best) == len(shortest_path(net, "a", "d"))


class TestRingWalk:
    def test_full_circle(self):
        net = ring_network(4, bounds={0: 32})
        route = ring_walk(net, "s1", hops=4)
        assert route.link_names == (
            "s1->s2", "s2->s3", "s3->s0", "s0->s1")

    def test_with_access_link(self):
        net = ring_network(4, bounds={0: 32}, terminals_per_switch=1)
        route = ring_walk(net, "s0", hops=3, access_from="t0.0")
        assert route.source == "t0.0"
        assert route.link_names[0] == "t0.0->s0"
        assert len(route) == 4

    def test_zero_hops_rejected(self):
        net = ring_network(3, bounds={0: 32})
        with pytest.raises(RoutingError):
            ring_walk(net, "s0", hops=0)

    def test_ambiguous_topology_rejected(self):
        net = ring_network(3, bounds={0: 32})
        net.add_link("s0", "s2", name="chord")
        with pytest.raises(RoutingError, match="ring walk"):
            ring_walk(net, "s0", hops=2)
