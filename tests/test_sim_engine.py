"""Discrete-event engine unit tests."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(5.0, lambda tag=tag: fired.append(tag))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(4.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_schedule_in(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: engine.schedule_in(
            3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_in(-1.0, lambda: None)


class TestNonFiniteGuards:
    """NaN/inf event times corrupt the heap order silently; reject them."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_schedule_rejects_non_finite(self, bad):
        with pytest.raises(SimulationError, match="finite"):
            Engine().schedule(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_schedule_in_rejects_non_finite(self, bad):
        with pytest.raises(SimulationError, match="finite"):
            Engine().schedule_in(bad, lambda: None)

    def test_schedule_many_rejects_non_finite(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="finite"):
            engine.schedule_many([(1.0, lambda: None),
                                  (float("nan"), lambda: None)])


class TestRunControl:
    def test_until_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_event_exactly_at_horizon_fires(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=5.0)
        assert fired == [5]

    def test_cancellation(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_peek_next_time_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek_next_time() == 2.0

    def test_peek_empty(self):
        assert Engine().peek_next_time() is None

    def test_events_processed_counter(self):
        engine = Engine()
        for t in (1.0, 2.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_runaway_guard(self):
        engine = Engine()

        def rearm():
            engine.schedule_in(0.1, rearm)
        engine.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(until=1e12, max_events=100)


class TestScheduleMany:
    def test_matches_individual_scheduling(self):
        batched, loop = Engine(), Engine()
        times = [3.0, 1.0, 2.0, 1.0, 5.0]
        fired_batched, fired_loop = [], []
        batched.schedule_many(
            (t, lambda i=i: fired_batched.append(i))
            for i, t in enumerate(times))
        for i, t in enumerate(times):
            loop.schedule(t, lambda i=i: fired_loop.append(i))
        batched.run()
        loop.run()
        assert fired_batched == fired_loop == [1, 3, 2, 0, 4]

    def test_ties_against_prior_schedule_calls(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("first"))
        engine.schedule_many([(1.0, lambda: fired.append("second")),
                              (1.0, lambda: fired.append("third"))])
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_returns_cancellable_handles(self):
        engine = Engine()
        fired = []
        handles = engine.schedule_many(
            [(1.0, lambda: fired.append(1)), (2.0, lambda: fired.append(2))])
        assert len(handles) == 2
        handles[0].cancel()
        engine.run()
        assert fired == [2]

    def test_rejects_past_times(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.schedule_many([(1.0, lambda: None)])

    def test_empty_iterable(self):
        engine = Engine()
        assert engine.schedule_many([]) == []
        assert engine.heap_size == 0


class TestLazyCancelCompaction:
    def test_heap_stays_bounded_under_churn(self):
        """Schedule/cancel cycles (re-armed timers) must not leak."""
        engine = Engine()
        live = [engine.schedule(1e9, lambda: None) for _ in range(50)]
        for step in range(10_000):
            engine.schedule(float(step + 1), lambda: None).cancel()
            assert engine.heap_size <= 250
        assert engine.pending_events == 50
        assert all(not handle.cancelled for handle in live)

    def test_compaction_preserves_firing_order(self):
        churny, reference = Engine(), Engine()
        fired_churny, fired_reference = [], []
        for engine, fired in ((churny, fired_churny),
                              (reference, fired_reference)):
            for i in range(40):
                engine.schedule(10.0 + (i % 4),
                                lambda i=i, out=fired: out.append(i))
        # Only the churny engine takes enough cancels to compact.
        for _ in range(5):
            doomed = [churny.schedule(5.0, lambda: None)
                      for _ in range(100)]
            for handle in doomed:
                handle.cancel()
        churny.run()
        reference.run()
        assert fired_churny == fired_reference

    def test_cancel_is_idempotent_in_the_accounting(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending_events == 1

    def test_pending_events_tracks_cancellations(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        assert engine.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending_events == 6
        engine.run()
        assert engine.pending_events == 0
        assert engine.events_processed == 6

    def test_small_heaps_never_compact(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles:
            handle.cancel()
        # All ten stay in the heap lazily (below the compaction floor).
        assert engine.heap_size == 10
        engine.run()
        assert engine.events_processed == 0


class TestProcess:
    """Generators as resumable processes: the admission-plane primitive."""

    def test_yields_become_waits(self):
        engine = Engine()
        ticks = []

        def steps():
            ticks.append(engine.now)
            yield 2.0
            ticks.append(engine.now)
            yield 3.5
            ticks.append(engine.now)

        engine.process(steps())
        engine.run()
        assert ticks == [0.0, 2.0, 5.5]

    def test_return_value_lands_in_result(self):
        engine = Engine()
        finished = []

        def steps():
            yield 1.0
            return "committed"

        handle = engine.process(steps(), on_done=finished.append)
        assert not handle.done
        engine.run()
        assert handle.done
        assert handle.result == "committed"
        assert handle.error is None
        assert finished == [handle]

    def test_exceptions_are_captured_not_propagated(self):
        engine = Engine()
        survivor = []

        def doomed():
            yield 1.0
            raise ValueError("walk rejected")

        handle = engine.process(doomed())
        engine.schedule(5.0, lambda: survivor.append(engine.now))
        engine.run()                      # must not raise
        assert handle.done
        assert isinstance(handle.error, ValueError)
        assert handle.result is None
        assert survivor == [5.0], "one dead process stalled the engine"

    def test_cancel_runs_finally_blocks(self):
        engine = Engine()
        cleaned = []

        def steps():
            try:
                yield 10.0
            finally:
                cleaned.append(True)

        handle = engine.process(steps())
        engine.run(until=1.0)             # started, now suspended
        handle.cancel()
        handle.cancel()                   # idempotent
        assert handle.done and cleaned == [True]
        engine.run()
        assert engine.now == 1.0          # resume event was dropped

    def test_zero_yield_queues_behind_same_instant_events(self):
        engine = Engine()
        order = []

        def steps():
            order.append("start")
            yield 0.0
            order.append("resumed")

        engine.process(steps())
        engine.schedule(0.0, lambda: order.append("queued"))
        engine.run()
        # The process starts first (submitted first), but its zero-wait
        # resume lands behind the already-queued same-instant event.
        assert order == ["start", "queued", "resumed"]

    def test_concurrent_processes_interleave_deterministically(self):
        def run_once():
            engine = Engine()
            order = []

            def walker(tag, wait):
                for step in range(3):
                    order.append((tag, engine.now))
                    yield wait
                return tag

            a = engine.process(walker("a", 2.0))
            b = engine.process(walker("b", 3.0))
            engine.run()
            return order, a.result, b.result

        first = run_once()
        second = run_once()
        assert first == second
        order, result_a, result_b = first
        assert (result_a, result_b) == ("a", "b")
        assert order == [("a", 0.0), ("b", 0.0), ("a", 2.0), ("b", 3.0),
                         ("a", 4.0), ("b", 6.0)]
