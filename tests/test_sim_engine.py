"""Discrete-event engine unit tests."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = Engine()
        fired = []
        for tag in "abc":
            engine.schedule(5.0, lambda tag=tag: fired.append(tag))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(4.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_schedule_in(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: engine.schedule_in(
            3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_past_scheduling_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_in(-1.0, lambda: None)


class TestRunControl:
    def test_until_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_event_exactly_at_horizon_fires(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=5.0)
        assert fired == [5]

    def test_cancellation(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_peek_next_time_skips_cancelled(self):
        engine = Engine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek_next_time() == 2.0

    def test_peek_empty(self):
        assert Engine().peek_next_time() is None

    def test_events_processed_counter(self):
        engine = Engine()
        for t in (1.0, 2.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_runaway_guard(self):
        engine = Engine()

        def rearm():
            engine.schedule_in(0.1, rearm)
        engine.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(until=1e12, max_events=100)
