"""Traffic descriptors, Algorithm 2.1, and the discrete token model."""

from fractions import Fraction as F

import pytest

from repro.core.bitstream import BitStream
from repro.core.traffic import (
    VBRParameters,
    cbr,
    equivalent_vbr_for_cbr_set,
    worst_case_cell_times,
)
from repro.exceptions import TrafficModelError


class TestVBRParameters:
    def test_valid_descriptor(self):
        v = VBRParameters(pcr=0.5, scr=0.1, mbs=4)
        assert (v.pcr, v.scr, v.mbs) == (0.5, 0.1, 4)

    def test_scr_above_pcr_rejected(self):
        with pytest.raises(TrafficModelError):
            VBRParameters(pcr=0.1, scr=0.5, mbs=2)

    def test_zero_scr_rejected(self):
        with pytest.raises(TrafficModelError):
            VBRParameters(pcr=0.5, scr=0, mbs=2)

    def test_pcr_above_link_rate_rejected(self):
        with pytest.raises(TrafficModelError):
            VBRParameters(pcr=1.5, scr=0.5, mbs=2)

    def test_mbs_below_one_rejected(self):
        with pytest.raises(TrafficModelError):
            VBRParameters(pcr=0.5, scr=0.1, mbs=0)

    def test_cbr_helper(self):
        c = cbr(0.25)
        assert c.is_cbr
        assert c.pcr == c.scr == 0.25
        assert c.mbs == 1

    def test_cbr_with_vestigial_mbs_normalized(self):
        # ATM signalling may carry MBS > 1 for CBR; it has no effect.
        v = VBRParameters(pcr=0.25, scr=0.25, mbs=100)
        assert v.mbs == 1

    def test_mean_interval(self):
        assert VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=2).mean_interval() == 8

    def test_as_fractions(self):
        v = VBRParameters(pcr=0.5, scr=0.1, mbs=4).as_fractions()
        assert v.pcr == F(1, 2)
        assert v.scr == F(1, 10)

    def test_frozen(self):
        v = cbr(0.25)
        with pytest.raises(AttributeError):
            v.pcr = 0.5


class TestWorstCaseStream:
    """Algorithm 2.1."""

    def test_paper_formula(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        assert v.worst_case_stream() == BitStream(
            [1, F(1, 2), F(1, 10)],
            [0, 1, 1 + F(3, F(1, 2))],
        )

    def test_burst_duration(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        assert v.burst_duration == 6     # (MBS-1)/PCR

    def test_cbr_collapses_to_two_segments(self):
        s = cbr(F(1, 4)).worst_case_stream()
        assert s == BitStream([1, F(1, 4)], [0, 1])

    def test_mbs_one_collapses(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=1)
        assert v.worst_case_stream() == BitStream(
            [1, F(1, 10)], [0, 1])

    def test_full_rate_pcr_merges_head(self):
        v = VBRParameters(pcr=1, scr=F(1, 10), mbs=4)
        # The leading cell and the PCR burst are both at rate 1.
        assert v.worst_case_stream() == BitStream(
            [1, F(1, 10)], [0, 4])

    def test_total_burst_bits(self):
        # By the end of the PCR burst exactly MBS cells have been sent.
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        s = v.worst_case_stream()
        assert s.bits(1 + v.burst_duration) == 4

    def test_long_run_rate_is_scr(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        assert v.worst_case_stream().long_run_rate == F(1, 10)


class TestWorstCaseCellTimes:
    """Equation (1): the greedy discrete process."""

    def test_burst_then_sustained(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        times = worst_case_cell_times(v, 6)
        assert times[:4] == [0, 2, 4, 6]           # MBS cells at PCR
        assert times[4] == pytest.approx(16)       # then SCR spacing
        assert times[5] == pytest.approx(26)

    def test_cbr_is_evenly_spaced(self):
        times = worst_case_cell_times(cbr(F(1, 4)), 5)
        assert times == [0, 4, 8, 12, 16]

    def test_count_zero(self):
        assert worst_case_cell_times(cbr(0.5), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            worst_case_cell_times(cbr(0.5), -1)

    def test_envelope_dominates_discrete_arrivals(self):
        """The continuous envelope bounds the discrete cell process.

        A cell emitted at time t arrives over [t, t+1] at the link rate;
        the envelope must never report fewer bits than that process.
        """
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=5)
        envelope = v.worst_case_stream()
        times = worst_case_cell_times(v, 30)

        def discrete_bits(t):
            return sum(min(1, max(0, t - start)) for start in times)

        probes = [t + frac for t in range(0, 40) for frac in (0.0, 0.31, 0.77)]
        for t in probes:
            assert envelope.bits(t) >= discrete_bits(t) - 1e-9

    def test_envelope_tight_at_cell_boundaries(self):
        """At the end of each burst cell the envelope is exact."""
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        envelope = v.worst_case_stream()
        times = worst_case_cell_times(v, 4)
        for index, start in enumerate(times):
            assert envelope.bits(start + 1) == pytest.approx(index + 1)

    def test_average_rate_respects_scr(self):
        v = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        times = worst_case_cell_times(v, 200)
        # Long-run average spacing approaches 1/SCR = 10.
        span = times[-1] - times[99]
        assert span / 100 == pytest.approx(10, rel=0.01)


class TestEquivalentVbr:
    """Section 5's N-CBR <-> VBR equivalence."""

    def test_parameters(self):
        v = equivalent_vbr_for_cbr_set(16, F(1, 64))
        assert v.mbs == 16
        assert v.scr == F(1, 4)
        assert v.pcr == 1

    def test_single_connection(self):
        v = equivalent_vbr_for_cbr_set(1, F(1, 4))
        assert v.scr == F(1, 4)
        assert v.mbs == 1

    def test_overload_rejected(self):
        with pytest.raises(TrafficModelError):
            equivalent_vbr_for_cbr_set(8, F(1, 4))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            equivalent_vbr_for_cbr_set(0, F(1, 4))

    def test_dominates_clumped_individuals(self):
        """The equivalent VBR envelope bounds N fully clumped CBRs.

        Each CBR cell can be jittered to arrive back to back; the worst
        aggregate is N cells at once then rate N*R -- which, carried on
        one link, is what the equivalent VBR envelope describes.
        """
        count, rate = 4, F(1, 32)
        v = equivalent_vbr_for_cbr_set(count, rate)
        envelope = v.worst_case_stream()
        # N simultaneous bursts on one link arrive as MBS=N at rate 1.
        clumped = BitStream([1, count * rate], [0, count])
        assert envelope.dominates(clumped)
