"""Property-based round-trips for the serialization layer."""

import json
from fractions import Fraction as F

from hypothesis import given, settings, strategies as st

from repro.core.traffic import VBRParameters
from repro.network.serialization import (
    network_from_dict,
    network_to_dict,
    number_from_json,
    number_to_json,
    traffic_from_dict,
    traffic_to_dict,
)
from repro.network.topology import Network


numbers = st.one_of(
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    st.fractions(min_value=0, max_value=1000, max_denominator=10**6),
)


@given(numbers)
def test_number_round_trip(value):
    encoded = number_to_json(value)
    json.dumps(encoded)
    assert number_from_json(encoded) == value


@st.composite
def traffic_descriptors(draw):
    pcr = draw(st.fractions(min_value=F(1, 64), max_value=1,
                            max_denominator=64))
    scr = pcr / draw(st.integers(min_value=1, max_value=32))
    mbs = draw(st.integers(min_value=1, max_value=100))
    return VBRParameters(pcr=pcr, scr=scr, mbs=mbs)


@given(traffic_descriptors())
def test_traffic_round_trip(params):
    data = traffic_to_dict(params)
    json.dumps(data)
    assert traffic_from_dict(data) == params


@st.composite
def random_networks(draw):
    net = Network()
    switches = draw(st.integers(min_value=1, max_value=5))
    terminals = draw(st.integers(min_value=0, max_value=4))
    for index in range(switches):
        net.add_switch(f"s{index}")
    for index in range(terminals):
        net.add_terminal(f"t{index}")
        net.add_link(f"t{index}", f"s{index % switches}")
    pairs = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=switches - 1),
                  st.integers(min_value=0, max_value=switches - 1)),
        max_size=6, unique=True))
    for a, b in pairs:
        if a == b:
            continue
        name = f"s{a}->s{b}"
        if name in net:
            continue
        bound = draw(st.integers(min_value=1, max_value=512))
        net.add_link(f"s{a}", f"s{b}", bounds={0: bound})
    return net


@given(random_networks())
@settings(max_examples=30, deadline=None)
def test_network_round_trip(net):
    data = network_to_dict(net)
    json.dumps(data)
    rebuilt = network_from_dict(data)
    assert sorted(n.name for n in rebuilt.nodes()) == \
        sorted(n.name for n in net.nodes())
    for link in net.links():
        twin = rebuilt.link(link.name)
        assert (twin.src, twin.dst) == (link.src, link.dst)
        assert twin.capacity == link.capacity
        assert dict(twin.bounds) == dict(link.bounds)
