"""Per-hop circuit breakers: state machine, fast-fail, reconciliation.

The integration tests pin the acceptance criterion with metric
snapshots: an open breaker fast-fails deliveries with *zero* additional
retransmissions, and a half-open probe reconciles the switch (journal
replay / orphan-leg rollback) *before* the breaker closes.
"""

from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.exceptions import LinkDown, SignalingTimeout
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network
from repro.robustness.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_VALUES,
    BreakerBoard,
    CircuitBreaker,
)
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.retry import ManualClock, RetryPolicy


def breaker(clock=None, threshold=3, reset=64.0, on_close=None):
    return CircuitBreaker("s1", "s0->s1", clock or ManualClock(),
                          failure_threshold=threshold,
                          reset_timeout=reset, on_close=on_close)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        brk = breaker()
        assert brk.state == CLOSED
        assert brk.allow()
        assert brk.target == "s0->s1@s1"

    def test_opens_after_threshold_consecutive_failures(self):
        brk = breaker(threshold=3)
        brk.record_failure()
        brk.record_failure()
        assert brk.state == CLOSED
        brk.record_failure()
        assert brk.state == OPEN
        assert not brk.allow()

    def test_success_resets_the_failure_count(self):
        brk = breaker(threshold=3)
        brk.record_failure()
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        brk.record_failure()
        assert brk.state == CLOSED

    def test_half_open_after_reset_timeout(self):
        clock = ManualClock()
        brk = breaker(clock=clock, threshold=1, reset=64.0)
        brk.record_failure()
        assert not brk.allow()
        clock.advance(63.9)
        assert not brk.allow()
        clock.advance(0.1)
        assert brk.allow()  # the probe
        assert brk.state == HALF_OPEN

    def test_probe_failure_reopens_for_a_full_timeout(self):
        clock = ManualClock()
        brk = breaker(clock=clock, threshold=1, reset=64.0)
        brk.record_failure()
        clock.advance(64.0)
        assert brk.allow()
        brk.record_failure()  # the probe dies
        assert brk.state == OPEN
        assert not brk.allow()
        clock.advance(64.0)
        assert brk.allow()

    def test_probe_success_runs_on_close_hook_before_closing(self):
        clock = ManualClock()
        seen = []
        brk = breaker(clock=clock, threshold=1,
                      on_close=lambda b: seen.append(b.state))
        brk.record_failure()
        clock.advance(64.0)
        assert brk.allow()
        brk.record_success()
        # The hook observed the pre-close state: reconcile, *then* trust.
        assert seen == [HALF_OPEN]
        assert brk.state == CLOSED
        assert brk.allow()

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0}, {"reset": 0.0}, {"reset": -1.0},
    ])
    def test_bad_parameters_refused(self, kwargs):
        with pytest.raises(ValueError):
            breaker(**kwargs)


class TestBreakerBoard:
    def test_breakers_are_lazy_and_stable(self):
        board = BreakerBoard()
        first = board.breaker("s1", "s0->s1")
        assert board.breaker("s1", "s0->s1") is first
        assert board.breaker("s2", "s1->s2") is not first
        assert len(board.breakers()) == 2

    def test_open_hops_reports_only_open(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("s1", "s0->s1").record_failure()
        board.breaker("s2", "s1->s2")
        assert board.open_hops() == ["s0->s1@s1"]

    def test_on_close_hook_is_shared(self):
        closed = []
        board = BreakerBoard(failure_threshold=1,
                             on_close=lambda b: closed.append(b.target))
        brk = board.breaker("s1", "s0->s1")
        brk.record_failure()
        board.clock.advance(board.reset_timeout)
        assert brk.allow()
        brk.record_success()
        assert closed == ["s0->s1@s1"]


def crashed_switch_cac(bounds=None):
    """A 3-switch line CAC with one established connection via s1."""
    net = line_network(3, bounds=bounds or {0: 64},
                       terminals_per_switch=1)
    injector = FaultInjector(FaultPlan([]))
    cac = NetworkCAC(net, fault_injector=injector,
                     retry_policy=RetryPolicy(max_attempts=2,
                                              base_delay=0.5,
                                              max_delay=2.0),
                     breaker_threshold=3, breaker_reset_timeout=64.0)
    request = ConnectionRequest("vc0", cbr(F(1, 10)),
                                shortest_path(net, "t0.0", "t2.0"))
    cac.setup(request)
    return net, cac


class TestFastFailIntegration:
    """Metric-snapshot proof that OPEN costs zero retransmissions."""

    def attempt(self, cac, net, name):
        request = ConnectionRequest(name, cbr(F(1, 100)),
                                    shortest_path(net, "t0.0", "t2.0"))
        return cac.setup(request)

    def test_open_breaker_fast_fails_without_retransmits(self,
                                                         obs_enabled):
        registry, _tracer = obs_enabled
        net, cac = crashed_switch_cac()
        cac.switch("s1").crash()

        # Three setups exhaust their retry budgets against silent s1.
        for index in range(3):
            with pytest.raises(SignalingTimeout):
                self.attempt(cac, net, f"probe{index}")
        assert cac.breakers.open_hops() == ["s0->s1@s1"]
        retransmits = registry.total("signaling_retransmits_total")
        timeouts = registry.total("signaling_timeouts_total")
        assert retransmits > 0

        # Open: the next walks fail instantly -- LinkDown, not timeout,
        # and not a single further retransmission.
        for index in range(5):
            with pytest.raises(LinkDown):
                self.attempt(cac, net, f"fast{index}")
        assert registry.total("signaling_retransmits_total") == retransmits
        assert registry.total("signaling_timeouts_total") == timeouts
        assert registry.total("signaling_fast_fails_total") >= 5
        assert registry.total("cac_breaker_fast_fails_total") >= 5

        snapshot = registry.snapshot()
        gauge = snapshot["cac_breaker_state"]["target=s0->s1@s1"]
        assert gauge == STATE_VALUES[OPEN]

    def test_health_monitor_declares_the_hop_down(self, obs_enabled):
        _registry, _tracer = obs_enabled
        net, cac = crashed_switch_cac()
        cac.switch("s1").crash()
        for index in range(3):
            with pytest.raises(SignalingTimeout):
                self.attempt(cac, net, f"probe{index}")
        assert cac.health.is_down("s0->s1")
        assert cac.health.is_down("s1")


class TestReconcileBeforeClose:
    """The half-open probe reconciles switch state before readmission."""

    def open_the_breaker(self, cac, net):
        for index in range(3):
            request = ConnectionRequest(
                f"fail{index}", cbr(F(1, 100)),
                shortest_path(net, "t0.0", "t2.0"))
            with pytest.raises(SignalingTimeout):
                cac.setup(request)
        assert cac.breakers.open_hops() == ["s0->s1@s1"]

    def test_probe_reconciles_orphan_legs_before_closing(self,
                                                         obs_enabled):
        registry, _tracer = obs_enabled
        net, cac = crashed_switch_cac()
        s1 = cac.switch("s1")
        s1.crash()
        # Teardown while s1 is dark: its journal still holds vc0.
        cac.teardown("vc0")
        self.open_the_breaker(cac, net)

        # s1 restarts *on its own* (journal replay): the orphaned vc0
        # leg is back, and the crash epoch moved past what the breaker
        # last saw.
        s1.recover()
        assert "vc0" in s1.legs
        epoch_after_restart = s1.epoch

        # The reset timeout elapses; the next probe is the half-open
        # trial.  Closing must reconcile first: the orphan leg is gone
        # the moment the breaker trusts the hop again.
        cac.clock.advance(65.0)
        results = cac.probe(hops=[("s1", "s0->s1")])
        assert results == {"s0->s1@s1": True}
        brk = cac.breakers.breaker("s1", "s0->s1")
        assert brk.state == CLOSED
        assert brk.known_epoch == epoch_after_restart
        assert "vc0" not in s1.legs
        assert s1.verify_consistency()

        snapshot = registry.snapshot()
        gauge = snapshot["cac_breaker_state"]["target=s0->s1@s1"]
        assert gauge == STATE_VALUES[CLOSED]
        # rollback of the orphan leg was counted
        assert registry.total("cac_rollbacks_total") > 0

    def test_close_hook_recovers_a_still_crashed_switch(self):
        net, cac = crashed_switch_cac()
        s1 = cac.switch("s1")
        s1.crash()
        cac.teardown("vc0")
        self.open_the_breaker(cac, net)

        # A success races the crash: the close hook finds the switch
        # still down and brings it back through recover_switch (journal
        # replay + reconciliation) before the breaker closes.
        cac.clock.advance(65.0)
        brk = cac.breakers.breaker("s1", "s0->s1")
        assert brk.allow()
        brk.record_success()
        assert brk.state == CLOSED
        assert not s1.crashed
        assert "vc0" not in s1.legs
        assert s1.verify_consistency()

    def test_new_traffic_books_cleanly_after_reclose(self):
        net, cac = crashed_switch_cac()
        s1 = cac.switch("s1")
        s1.crash()
        cac.teardown("vc0")
        self.open_the_breaker(cac, net)
        s1.recover()
        cac.clock.advance(65.0)
        cac.probe(hops=[("s1", "s0->s1")])

        request = ConnectionRequest("vc1", cbr(F(1, 10)),
                                    shortest_path(net, "t0.0", "t2.0"))
        cac.setup(request)
        assert "vc1" in cac.established
        assert sorted(s1.legs) == ["vc1"]
