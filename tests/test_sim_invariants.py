"""Simulator-wide invariants: conservation, ordering, work conservation."""

import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.traffic import VBRParameters, cbr
from repro.network.routing import shortest_path
from repro.network.topology import line_network, star_network
from repro.sim import (
    CbrSource,
    Engine,
    RandomVbrSource,
    ScheduleSource,
    SimNetwork,
    SimSwitch,
)


class TestConservation:
    def test_every_emitted_cell_is_delivered_or_queued(self):
        net = star_network(4, bounds={0: 512})
        sim = SimNetwork(net)
        sources = []
        for index in range(3):
            route = shortest_path(net, f"t{index}", "t3")
            sim.attach_route(f"vc{index}", route)
            sources.append(CbrSource(
                sim.engine, f"vc{index}", 0.3,
                sim.ingress(f"vc{index}"), until=800))
        sim.run(until=820)   # stop before everything drains
        emitted = sum(source.emitted for source in sources)
        delivered = sim.metrics.total_delivered()
        queued = sum(
            port.queue.depth()
            for name in ("hub",)
            for port in sim.switch(name).ports().values()
        )
        # In flight: at most one cell in service per port plus cells on
        # the 1-cell-time access links.
        assert delivered + queued <= emitted
        assert emitted - (delivered + queued) <= 3 + 1 * 1 + 3
        sim.run(until=2000)
        assert sim.metrics.total_delivered() == emitted

    def test_drops_plus_delivered_account_for_everything(self):
        net = star_network(3, bounds={0: 2})   # tiny queue: forced drops
        sim = SimNetwork(net)
        sources = []
        for index in range(2):
            route = shortest_path(net, f"t{index}", "t2")
            sim.attach_route(f"vc{index}", route)
            sources.append(CbrSource(
                sim.engine, f"vc{index}", 1.0,
                sim.ingress(f"vc{index}"), until=200))
        sim.run(until=800)
        emitted = sum(source.emitted for source in sources)
        assert sim.metrics.total_delivered() + sim.total_drops() == emitted
        assert sim.total_drops() > 0


class TestOrdering:
    def test_fifo_per_connection_end_to_end(self):
        net = line_network(3, bounds={0: 64}, terminals_per_switch=2)
        sim = SimNetwork(net)
        received = {}
        for index in range(4):
            src = f"t{index % 2}.{index // 2}"
            name = f"vc{index}"
            route = shortest_path(net, src, "t2.0")
            sim.attach_route(name, route)
            CbrSource(sim.engine, name, 0.2, sim.ingress(name),
                      phase=index * 0.7, until=1500)
        # Shadow the metrics with an order recorder.
        original = sim.metrics.record

        def record(cell):
            received.setdefault(cell.connection, []).append(cell.sequence)
            original(cell)
        sim.metrics.record = record
        sim.run(until=2000)
        for name, sequence in received.items():
            assert sequence == sorted(sequence), f"{name} reordered"


class TestWorkConservation:
    def test_port_never_idles_with_backlog(self):
        """Total busy time equals cells transmitted (unit service)."""
        engine = Engine()
        delivered = []
        switch = SimSwitch(engine, "sw")
        switch.add_port("out", delivered.append)
        switch.set_forwarding("vc", "out", 0)
        times = [0.0, 0.2, 0.4, 5.0, 5.1, 20.0]
        ScheduleSource(engine, "vc", times, switch.receive)
        engine.run()
        # Back-to-back groups finish exactly one cell time apart.
        finish = sorted(engine.now for _ in [None])   # engine at last event
        assert len(delivered) == len(times)
        waits = [cell.hop_waits[0] for cell in delivered]
        # First of each burst waits 0; followers queue behind.
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(0.8)
        assert waits[2] == pytest.approx(1.6)
        assert waits[3] == 0.0
        assert waits[4] == pytest.approx(0.9)
        assert waits[5] == 0.0


class TestRandomizedConservation:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_random_vbr_all_delivered_eventually(self, seed):
        net = star_network(3, bounds={0: 2048})
        sim = SimNetwork(net)
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=5)
        sources = []
        for index in range(2):
            route = shortest_path(net, f"t{index}", "t2")
            sim.attach_route(f"vc{index}", route)
            sources.append(RandomVbrSource(
                sim.engine, f"vc{index}", params,
                sim.ingress(f"vc{index}"), until=2000, seed=seed + index))
        sim.run(until=4000)
        emitted = sum(source.emitted for source in sources)
        assert sim.metrics.total_delivered() == emitted
        assert sim.total_drops() == 0
