"""Run the doctest examples embedded in the library's docstrings.

The examples in docstrings are part of the documented contract; this
harness keeps them honest.
"""

import doctest

import pytest

import repro.analysis.capacity
import repro.analysis.report
import repro.analysis.sweep
import repro.core.bitstream
import repro.core.server
import repro.core.switch_cac
import repro.core.traffic
import repro.network.topology
import repro.sim.engine
import repro.sim.gcra
import repro.units
import repro.workload.churn

MODULES = [
    repro.units,
    repro.core.bitstream,
    repro.core.traffic,
    repro.core.switch_cac,
    repro.core.server,
    repro.network.topology,
    repro.sim.engine,
    repro.sim.gcra,
    repro.analysis.capacity,
    repro.analysis.report,
    repro.analysis.sweep,
    repro.workload.churn,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda module: module.__name__)
def test_module_doctests(module):
    flags = doctest.ELLIPSIS | doctest.IGNORE_EXCEPTION_DETAIL
    result = doctest.testmod(module, optionflags=flags, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}"
    )
