"""EnvelopeSource: replaying worst-case envelopes cell by cell.

These tests double as the tightness demonstration: the discrete
adversary built from the analysis's own envelope drives a simulated
port to *exactly* the computed worst-case delay.
"""

from fractions import Fraction as F

import pytest

from repro.core import aggregate, cbr, delay_bound
from repro.core.bitstream import BitStream
from repro.core.traffic import VBRParameters, worst_case_cell_times
from repro.sim import Engine, EnvelopeSource, SimSwitch, envelope_cell_times


class TestEnvelopeCellTimes:
    def test_source_envelope_matches_greedy_schedule(self):
        """Replaying the Alg 2.1 envelope = the eq. (1) greedy source."""
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        replay = envelope_cell_times(params.worst_case_stream(), 8)
        greedy = worst_case_cell_times(params, 8)
        assert replay == pytest.approx(greedy)

    def test_cbr_envelope(self):
        times = envelope_cell_times(cbr(F(1, 4)).worst_case_stream(), 4)
        assert times == pytest.approx([0, 4, 8, 12])

    def test_clumped_envelope_is_earlier(self):
        base = cbr(F(1, 4)).worst_case_stream()
        clumped = base.delayed(12)
        early = envelope_cell_times(clumped, 6)
        late = envelope_cell_times(base, 6)
        assert all(a <= b + 1e-9 for a, b in zip(early, late))

    def test_never_negative(self):
        clumped = cbr(F(1, 2)).worst_case_stream().delayed(40)
        assert all(t >= 0 for t in envelope_cell_times(clumped, 20))

    def test_count_validation(self):
        with pytest.raises(ValueError):
            envelope_cell_times(cbr(0.5).worst_case_stream(), -1)

    def test_exhausted_envelope_rejected(self):
        finite = BitStream([1, 0], [0, 3])   # only 3 cells ever
        assert len(envelope_cell_times(finite, 3)) == 3
        with pytest.raises(ValueError, match="delivers only"):
            envelope_cell_times(finite, 4)

    def test_discrete_process_dominated_by_envelope(self):
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=5)
        envelope = params.worst_case_stream().delayed(17)
        times = envelope_cell_times(envelope, 30)

        def discrete_bits(t):
            return sum(min(1.0, max(0.0, t - start)) for start in times)

        probes = [i * 0.41 for i in range(300)]
        for t in probes:
            assert float(envelope.bits(t)) >= discrete_bits(t) - 1e-9


class TestTightness:
    """The headline: discrete adversaries achieve the analytic bound."""

    def _drive_port(self, streams, cells=40):
        engine = Engine()
        delivered = []
        switch = SimSwitch(engine, "sw")
        switch.add_port("out", delivered.append)
        for index, stream in enumerate(streams):
            switch.set_forwarding(f"vc{index}", "out", 0)
            EnvelopeSource(engine, f"vc{index}", stream, cells,
                           switch.receive)
        engine.run()
        return max(cell.hop_waits[0] for cell in delivered)

    def test_clumped_cbr_collision_is_exact(self):
        streams = [
            cbr(F(1, 4)).worst_case_stream().delayed(24).filtered()
            for _ in range(3)
        ]
        worst = self._drive_port(streams)
        bound = float(delay_bound(aggregate(streams)))
        assert worst == pytest.approx(bound)

    def test_vbr_burst_collision_is_nearly_exact(self):
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 16), mbs=6)
        streams = [params.worst_case_stream().filtered()
                   for _ in range(2)]
        worst = self._drive_port(streams, cells=60)
        bound = float(delay_bound(aggregate(streams)))
        assert worst <= bound + 1e-9
        # Discretization can cost at most one cell of slack.
        assert worst >= bound - 1.0

    def test_never_exceeds_bound(self):
        mixes = [
            [cbr(F(1, 8)).worst_case_stream().delayed(10)] * 4,
            [VBRParameters(pcr=F(1, 2), scr=F(1, 12), mbs=4)
             .worst_case_stream().delayed(cdv).filtered()
             for cdv in (0, 8, 24)],
        ]
        for streams in mixes:
            worst = self._drive_port(list(streams), cells=50)
            bound = float(delay_bound(aggregate(streams)))
            assert worst <= bound + 1e-9
