"""Ring wrap-around after a single failure: the real-time cost."""

import pytest

from repro.exceptions import TrafficModelError
from repro.rtnet import (
    RingAnalysis,
    failover_capacity,
    symmetric_workload,
    wrapped_analysis,
    wrapped_ring_size,
    wrapped_workload,
)


class TestWrappedRingSize:
    def test_formula(self):
        assert wrapped_ring_size(16) == 30
        assert wrapped_ring_size(3) == 4

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            wrapped_ring_size(2)


class TestWrappedWorkload:
    def test_keys_preserved(self):
        workload = symmetric_workload(0.4, 4, 2)
        wrapped = wrapped_workload(workload, 4)
        assert wrapped == workload

    def test_out_of_range_node_rejected(self):
        workload = {(7, 0): next(iter(
            symmetric_workload(0.4, 8, 1).values()))}
        with pytest.raises(TrafficModelError):
            wrapped_workload(workload, 4)


class TestWrappedAnalysis:
    def test_transit_only_positions_carry_traffic(self):
        """Secondary ports see transit streams even with no terminals."""
        workload = symmetric_workload(0.4, 4, 1)
        analysis = wrapped_analysis(workload, 4)
        # Position 4 (a secondary port) is crossed by broadcasts.
        assert not analysis.arrival_stream(4, 0).is_zero

    def test_wrapped_bounds_dominate_healthy(self):
        workload = symmetric_workload(0.4, 6, 2)
        healthy = RingAnalysis(workload, 6)
        wrapped = wrapped_analysis(workload, 6)
        assert wrapped.worst_e2e_bound(0) > healthy.worst_e2e_bound(0)

    def test_wrapped_route_length(self):
        # e2e bound sums 2R-3 links on the wrapped cycle.
        workload = symmetric_workload(0.3, 4, 1)
        analysis = wrapped_analysis(workload, 4)
        total = sum(analysis.link_bound((0 + j) % 6, 0) for j in range(5))
        assert analysis.e2e_bound(0, 0) == total


class TestFailoverCapacity:
    def test_failure_costs_capacity(self):
        healthy, wrapped = failover_capacity(
            4, ring_nodes=8, tolerance=1 / 32)
        assert 0 < wrapped < healthy

    def test_cost_is_bounded(self):
        # The wrap roughly doubles the hop count; capacity should drop
        # but not collapse (the deadline has slack at moderate N).
        healthy, wrapped = failover_capacity(
            1, ring_nodes=8, tolerance=1 / 32)
        assert wrapped > healthy * 0.4

    def test_monotone_in_terminals(self):
        one = failover_capacity(1, ring_nodes=8, tolerance=1 / 32)
        many = failover_capacity(8, ring_nodes=8, tolerance=1 / 32)
        assert many[1] <= one[1]
