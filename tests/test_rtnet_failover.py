"""Ring wrap-around after a single failure: the real-time cost."""

import pytest

from repro.exceptions import TrafficModelError
from repro.rtnet import (
    RingAnalysis,
    failover_capacity,
    symmetric_workload,
    wrapped_analysis,
    wrapped_ring_size,
    wrapped_workload,
)


class TestWrappedRingSize:
    def test_formula(self):
        assert wrapped_ring_size(16) == 30
        assert wrapped_ring_size(3) == 4

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            wrapped_ring_size(2)


class TestWrappedWorkload:
    def test_keys_preserved(self):
        workload = symmetric_workload(0.4, 4, 2)
        wrapped = wrapped_workload(workload, 4)
        assert wrapped == workload

    def test_out_of_range_node_rejected(self):
        workload = {(7, 0): next(iter(
            symmetric_workload(0.4, 8, 1).values()))}
        with pytest.raises(TrafficModelError):
            wrapped_workload(workload, 4)


class TestWrappedAnalysis:
    def test_transit_only_positions_carry_traffic(self):
        """Secondary ports see transit streams even with no terminals."""
        workload = symmetric_workload(0.4, 4, 1)
        analysis = wrapped_analysis(workload, 4)
        # Position 4 (a secondary port) is crossed by broadcasts.
        assert not analysis.arrival_stream(4, 0).is_zero

    def test_wrapped_bounds_dominate_healthy(self):
        workload = symmetric_workload(0.4, 6, 2)
        healthy = RingAnalysis(workload, 6)
        wrapped = wrapped_analysis(workload, 6)
        assert wrapped.worst_e2e_bound(0) > healthy.worst_e2e_bound(0)

    def test_wrapped_route_length(self):
        # e2e bound sums 2R-3 links on the wrapped cycle.
        workload = symmetric_workload(0.3, 4, 1)
        analysis = wrapped_analysis(workload, 4)
        total = sum(analysis.link_bound((0 + j) % 6, 0) for j in range(5))
        assert analysis.e2e_bound(0, 0) == total


class TestFailoverCapacity:
    def test_failure_costs_capacity(self):
        healthy, wrapped = failover_capacity(
            4, ring_nodes=8, tolerance=1 / 32)
        assert 0 < wrapped < healthy

    def test_cost_is_bounded(self):
        # The wrap roughly doubles the hop count; capacity should drop
        # but not collapse (the deadline has slack at moderate N).
        healthy, wrapped = failover_capacity(
            1, ring_nodes=8, tolerance=1 / 32)
        assert wrapped > healthy * 0.4

    def test_monotone_in_terminals(self):
        one = failover_capacity(1, ring_nodes=8, tolerance=1 / 32)
        many = failover_capacity(8, ring_nodes=8, tolerance=1 / 32)
        assert many[1] <= one[1]


class TestEvacuateSwitch:
    """Crash a node and tear its connections down via the robust path."""

    def make_loaded_cac(self):
        from fractions import Fraction as F

        from repro.core.admission import NetworkCAC
        from repro.core.traffic import cbr
        from repro.network.connection import ConnectionRequest
        from repro.network.routing import shortest_path
        from repro.network.topology import line_network

        net = line_network(4, bounds={0: 64}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        # "crossing" traverses s1; "local" lives entirely on s3's port.
        cac.setup(ConnectionRequest(
            "crossing", cbr(F(1, 10)), shortest_path(net, "t0.0", "t2.0")))
        cac.setup(ConnectionRequest(
            "local", cbr(F(1, 10)), shortest_path(net, "t3.0", "t2.0")))
        return cac

    def test_affected_connections_are_torn_down(self):
        from repro.rtnet import evacuate_switch

        cac = self.make_loaded_cac()
        affected = evacuate_switch(cac, "s1")
        assert [request.name for request in affected] == ["crossing"]
        assert set(cac.established) == {"local"}
        assert cac.switch("s1").crashed
        # Surviving hops of the evacuated connection are clean.
        for name in ("s0", "s2", "s3"):
            switch = cac.switch(name)
            assert "crossing" not in switch.legs
            assert switch.verify_consistency()

    def test_recovery_reconciles_the_dead_switch(self):
        from repro.rtnet import evacuate_switch

        cac = self.make_loaded_cac()
        evacuate_switch(cac, "s1")
        recovered = cac.recover_switch("s1")
        # Journal replay resurrects the orphaned leg; reconciliation
        # against the network's committed set must drop it again.
        assert recovered.legs == {}
        assert recovered.verify_consistency()
        for switch in cac.switches().values():
            assert switch.verify_consistency()

    def test_evacuated_requests_can_be_readmitted(self):
        from repro.rtnet import evacuate_switch

        cac = self.make_loaded_cac()
        affected = evacuate_switch(cac, "s1")
        cac.recover_switch("s1")
        for request in affected:
            cac.setup(request)
        assert set(cac.established) == {"crossing", "local"}
