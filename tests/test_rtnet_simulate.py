"""The turn-key ring simulation builder and its bound comparisons."""

import pytest

from repro.core.traffic import VBRParameters
from repro.rtnet import (
    RingAnalysis,
    simulate_ring_workload,
    symmetric_workload,
)


class TestSimulateRingWorkload:
    def test_cbr_workload_within_bounds(self):
        workload = symmetric_workload(0.5, 4, 1)
        run = simulate_ring_workload(workload, 4, 1, horizon=2500)
        report = run.compare(RingAnalysis(workload, 4))
        assert report.all_within_bounds
        assert report.violations() == []
        assert report.worst_margin >= 0
        assert run.total_delivered > 0
        assert run.total_drops == 0

    def test_phases_shift_sources(self):
        # Any phase assignment must stay within the worst-case bounds
        # (emission alignment does not equal merge-point alignment on a
        # ring -- per-hop transmission latency re-phases streams -- so
        # neither run is guaranteed worse, but both are guaranteed safe).
        workload = symmetric_workload(0.4, 4, 1)
        analysis = RingAnalysis(workload, 4)
        aligned = simulate_ring_workload(workload, 4, 1, horizon=2000)
        scattered = simulate_ring_workload(
            workload, 4, 1, horizon=2000,
            phases=lambda key: key[0] * 1.3)
        assert aligned.compare(analysis).all_within_bounds
        assert scattered.compare(analysis).all_within_bounds
        # The phase offsets do change what the cells experience.
        aligned_rows = aligned.compare(analysis).rows
        scattered_rows = scattered.compare(analysis).rows
        assert aligned_rows != scattered_rows

    def test_vbr_terminals_get_greedy_sources(self):
        params = VBRParameters(pcr=0.5, scr=0.02, mbs=4)
        workload = {(node, 0): (params, 0) for node in range(4)}
        run = simulate_ring_workload(workload, 4, 1, horizon=3000,
                                     greedy_cells=30)
        assert run.total_delivered == 4 * 30
        report = run.compare(RingAnalysis(workload, 4))
        assert report.all_within_bounds

    def test_connection_bookkeeping(self):
        workload = symmetric_workload(0.3, 4, 2)
        run = simulate_ring_workload(workload, 4, 2, horizon=1500)
        assert len(run.connections) == 8
        for name, (node, slot, priority) in run.connections.items():
            assert f"term{node}.{slot}" in name
            assert priority == 0
