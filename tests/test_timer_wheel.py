"""The timer wheel is invisible except to the clock.

``Engine`` routes near-future events through a slot wheel and keeps a
single overflow heap for the far future; ``timer_wheel=False`` is the
reference single-heap implementation.  Both must pop events in the
exact same ``(time, sequence)`` order -- these tests drive randomized
schedule / cancel / bulk-schedule / nested-schedule scripts through
both modes (with tiny wheels, so rotations happen constantly) and
demand bit-identical firing logs.
"""

import random

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Engine

#: Small wheels force frequent rotations; the 1-slot wheel is the
#: degenerate case where almost everything lives in the overflow tier.
WHEEL_SHAPES = [(16, 0.5), (4, 3.0), (1, 1.0), (128, 0.25)]


def _script(seed):
    """A deterministic op script: phases of scheduling, cancels, runs.

    Times deliberately exceed any small wheel's horizon so entries land
    in the overflow tier and migrate through rotations; equal times and
    zero-delay nests exercise the sequence-number tiebreak.
    """
    rng = random.Random(seed)
    ops = []
    clock = 0.0
    scheduled = 0
    for _phase in range(rng.randint(3, 6)):
        for _ in range(rng.randint(4, 20)):
            roll = rng.random()
            if roll < 0.50:
                time = clock + rng.choice(
                    [0.0, rng.uniform(0, 5), rng.uniform(0, 60),
                     rng.uniform(0, 200)])
                nested = tuple(
                    (rng.choice([0.0, rng.uniform(0, 25)]), f"n{scheduled}.{k}")
                    for k in range(rng.randint(0, 2)))
                ops.append(("schedule", time, f"e{scheduled}", nested))
                scheduled += 1
            elif roll < 0.65 and scheduled:
                ops.append(("cancel", rng.randrange(scheduled)))
            else:
                base = clock + rng.uniform(0, 150)
                times = sorted(base + rng.uniform(0, 40) for _ in range(
                    rng.randint(1, 6)))
                if rng.random() < 0.5:
                    times += times[:1]  # a duplicate instant
                ops.append(("many", tuple(times), f"m{scheduled}"))
                scheduled += len(times)
        clock += rng.uniform(0.5, 45)
        ops.append(("run", clock))
    ops.append(("run", None))
    return ops


def _drive(engine, script):
    """Apply one script; return the (time, tag, peek-after-run) log."""
    log = []
    handles = []

    def callback(tag, nested):
        def fire():
            log.append((engine.now, tag))
            for delay, sub_tag in nested:
                engine.schedule_in(delay, callback(sub_tag, ()))
        return fire

    for op in script:
        if op[0] == "schedule":
            _, time, tag, nested = op
            handles.append(engine.schedule(time, callback(tag, nested)))
        elif op[0] == "cancel":
            handles[op[1]].cancel()
        elif op[0] == "many":
            _, times, prefix = op
            handles.extend(engine.schedule_many(
                [(time, callback(f"{prefix}.{k}", ()))
                 for k, time in enumerate(times)]))
        else:
            _, until = op
            if until is None:
                engine.run()
            else:
                engine.run(until=until)
            log.append(("peek", engine.peek_next_time(), engine.now))
    return log


@pytest.mark.parametrize("slots,width", WHEEL_SHAPES)
@pytest.mark.parametrize("seed", range(8))
def test_wheel_matches_pure_heap(seed, slots, width):
    script = _script(seed)
    wheel = Engine(timer_wheel=True, wheel_slots=slots, wheel_width=width)
    heap = Engine(timer_wheel=False)
    assert _drive(wheel, script) == _drive(heap, script)
    assert wheel.pending_events == heap.pending_events == 0
    assert wheel.events_processed == heap.events_processed


def test_equal_times_fire_in_schedule_order_across_rotation():
    """The sequence tiebreak survives migration out of the overflow."""
    engine = Engine(timer_wheel=True, wheel_slots=4, wheel_width=1.0)
    fired = []
    # All far beyond the initial horizon, several at the same instant.
    for tag in range(6):
        engine.schedule(500.0, lambda tag=tag: fired.append(tag))
    engine.schedule(499.0, lambda: fired.append("early"))
    engine.run()
    assert fired == ["early", 0, 1, 2, 3, 4, 5]


def test_callbacks_can_schedule_into_the_current_slot():
    """A zero-delay reschedule fires this run, after queued peers."""
    engine = Engine(timer_wheel=True, wheel_slots=8, wheel_width=1.0)
    order = []
    engine.schedule(3.0, lambda: (order.append("a"),
                                  engine.schedule_in(0.0,
                                                     lambda: order.append("c"))))
    engine.schedule(3.0, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


@pytest.mark.parametrize("slots,width", [(16, 0.5), (1, 1.0)])
def test_cancel_churn_stays_bounded_and_equivalent(slots, width):
    """Re-armed-timer churn compacts identically in both modes."""
    wheel = Engine(timer_wheel=True, wheel_slots=slots, wheel_width=width)
    heap = Engine(timer_wheel=False)
    logs = []
    for engine in (wheel, heap):
        fired = []
        pending = []
        rng = random.Random(7)
        for round_index in range(40):
            for handle in pending:
                handle.cancel()
            pending = [
                engine.schedule(engine.now + rng.uniform(0.1, 90),
                                lambda i=(round_index, k): fired.append(i))
                for k in range(20)
            ]
            assert engine.heap_size <= 250
            engine.run(until=engine.now + rng.uniform(0.1, 4))
        engine.run()
        logs.append(fired)
    assert logs[0] == logs[1]


def test_env_variable_controls_default(monkeypatch):
    monkeypatch.setenv("REPRO_TIMER_WHEEL", "off")
    assert not Engine()._wheel_enabled
    assert Engine(timer_wheel=True)._wheel_enabled  # ctor wins
    monkeypatch.setenv("REPRO_TIMER_WHEEL", "on")
    assert Engine()._wheel_enabled
    monkeypatch.delenv("REPRO_TIMER_WHEEL")
    assert Engine()._wheel_enabled  # on by default


def test_invalid_wheel_parameters_are_rejected():
    for kwargs in ({"wheel_slots": 0}, {"wheel_slots": -3},
                   {"wheel_width": 0.0}, {"wheel_width": -1.0},
                   {"wheel_width": float("inf")},
                   {"wheel_width": float("nan")}):
        with pytest.raises(SimulationError):
            Engine(timer_wheel=True, **kwargs)
