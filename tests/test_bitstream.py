"""Unit tests for the bit-stream representation and algebra (Sections 2-3)."""

import math
from fractions import Fraction as F

import pytest

from repro.core.bitstream import BitStream, ZERO_STREAM, aggregate
from repro.exceptions import BitStreamError


def stream(*pairs):
    """Build a stream from (rate, time) pairs, paper-style."""
    rates = [rate for rate, _ in pairs]
    times = [time for _, time in pairs]
    return BitStream(rates, times)


class TestConstruction:
    def test_single_segment(self):
        s = BitStream([0.5], [0])
        assert s.rates == (0.5,)
        assert s.times == (0,)

    def test_must_start_at_zero(self):
        with pytest.raises(BitStreamError, match="t\\(0\\)"):
            BitStream([1.0], [1])

    def test_lengths_must_match(self):
        with pytest.raises(BitStreamError, match="equal length"):
            BitStream([1.0, 0.5], [0])

    def test_empty_rejected(self):
        with pytest.raises(BitStreamError, match="at least one"):
            BitStream([], [])

    def test_decreasing_times_rejected(self):
        with pytest.raises(BitStreamError, match="non-decreasing"):
            BitStream([1.0, 0.5, 0.2], [0, 5, 3])

    def test_increasing_rates_rejected(self):
        with pytest.raises(BitStreamError, match="non-increasing"):
            BitStream([0.2, 0.5], [0, 1])

    def test_negative_rate_rejected(self):
        with pytest.raises(BitStreamError, match="negative rate"):
            BitStream([-0.5], [0])

    def test_tiny_negative_rate_clamped(self):
        s = BitStream([1.0, -1e-12], [0, 1])
        assert s.rates[-1] == 0

    def test_adjacent_equal_rates_merge(self):
        s = BitStream([1.0, 1.0, 0.5], [0, 1, 2])
        assert s.rates == (1.0, 0.5)
        assert s.times == (0, 2)

    def test_zero_length_segment_dropped(self):
        s = BitStream([1.0, 0.7, 0.5], [0, 2, 2])
        assert s.rates == (1.0, 0.5)
        assert s.times == (0, 2)

    def test_constant_and_zero(self):
        assert BitStream.constant(0.3).rates == (0.3,)
        assert BitStream.zero().is_zero
        assert ZERO_STREAM.is_zero

    def test_fractions_preserved(self):
        s = BitStream([F(1, 2)], [0])
        assert s.rates[0] == F(1, 2)
        assert isinstance(s.bits(F(3)), F)


class TestAccessors:
    def setup_method(self):
        self.s = stream((1, 0), (0.5, 1), (0.1, 7))

    def test_rate_at(self):
        assert self.s.rate_at(0) == 1
        assert self.s.rate_at(0.99) == 1
        assert self.s.rate_at(1) == 0.5      # right-continuous
        assert self.s.rate_at(6.5) == 0.5
        assert self.s.rate_at(7) == 0.1
        assert self.s.rate_at(1000) == 0.1

    def test_rate_at_negative_rejected(self):
        with pytest.raises(ValueError):
            self.s.rate_at(-1)

    def test_peak_and_long_run(self):
        assert self.s.peak_rate == 1
        assert self.s.long_run_rate == 0.1

    def test_len_and_segments(self):
        assert len(self.s) == 3
        assert list(self.s.segments) == [(1, 0), (0.5, 1), (0.1, 7)]

    def test_repr_mentions_pairs(self):
        assert "BitStream[" in repr(self.s)


class TestCumulativeBits:
    def setup_method(self):
        self.s = stream((1, 0), (F(1, 2), 1), (F(1, 10), 7))

    def test_bits_at_breakpoints(self):
        assert self.s.bits(0) == 0
        assert self.s.bits(1) == 1
        assert self.s.bits(7) == 4

    def test_bits_mid_segment(self):
        assert self.s.bits(F(1, 2)) == F(1, 2)
        assert self.s.bits(4) == 1 + F(3, 2)
        assert self.s.bits(17) == 5

    def test_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            self.s.bits(-1)

    def test_time_of_bits_inverse(self):
        for amount in (0, F(1, 2), 1, 2, 4, 5):
            t = self.s.time_of_bits(amount)
            assert self.s.bits(t) == amount

    def test_time_of_bits_zero_rate_tail(self):
        s = stream((1, 0), (0, 1))
        assert s.time_of_bits(1) == 1
        assert s.time_of_bits(1.5) == math.inf

    def test_time_of_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            self.s.time_of_bits(-1)

    def test_breakpoint_bits(self):
        assert self.s.breakpoint_bits() == (0, 1, 4)


class TestMultiplexing:
    """Algorithm 3.2."""

    def test_rates_add_pointwise(self):
        a = stream((1, 0), (F(1, 2), 2))
        b = stream((F(1, 4), 0), (F(1, 8), 3))
        total = a + b
        assert total == stream(
            (F(5, 4), 0), (F(3, 4), 2), (F(5, 8), 3))

    def test_commutative(self):
        a = stream((1, 0), (0.5, 2))
        b = stream((0.25, 0), (0.125, 3))
        assert a + b == b + a

    def test_identity_with_zero(self):
        a = stream((1, 0), (0.5, 2))
        assert a + ZERO_STREAM == a

    def test_shared_breakpoints_merge(self):
        a = stream((1, 0), (F(1, 2), 2))
        b = stream((1, 0), (F(1, 4), 2))
        assert (a + b) == stream((2, 0), (F(3, 4), 2))

    def test_aggregate_matches_pairwise(self):
        parts = [
            stream((1, 0), (F(1, 2), 1)),
            stream((F(1, 4), 0), (F(1, 8), 3)),
            stream((F(1, 3), 0), (F(1, 6), 2)),
        ]
        pairwise = parts[0] + parts[1] + parts[2]
        assert aggregate(parts) == pairwise

    def test_aggregate_empty_is_zero(self):
        assert aggregate([]) == ZERO_STREAM

    def test_aggregate_single(self):
        a = stream((1, 0), (0.5, 2))
        assert aggregate([a]) is a

    def test_scaled_matches_repeated_sum(self):
        a = stream((1, 0), (F(1, 2), 1), (F(1, 10), 7))
        assert a.scaled(3) == a + a + a

    def test_scaled_by_zero_is_zero(self):
        a = stream((1, 0), (0.5, 1))
        assert a.scaled(0).is_zero

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            stream((1, 0)).scaled(-1)


class TestDemultiplexing:
    """Algorithm 3.3."""

    def test_removes_component_exactly(self):
        a = stream((1, 0), (F(1, 2), 1), (F(1, 10), 7))
        b = stream((F(1, 4), 0), (F(1, 20), 5))
        assert (a + b) - b == a
        assert (a + b) - a == b

    def test_subtracting_self_gives_zero(self):
        a = stream((1, 0), (F(1, 2), 1))
        assert (a - a).is_zero

    def test_overdraw_rejected(self):
        a = stream((F(1, 2), 0))
        b = stream((1, 0))
        with pytest.raises(BitStreamError):
            a - b


class TestDelay:
    """Algorithm 3.1 -- worst-case clumping after CDV."""

    def setup_method(self):
        # VBR envelope: PCR 1/2, SCR 1/10, MBS 4.
        self.s = stream((1, 0), (F(1, 2), 1), (F(1, 10), 7))

    def test_zero_cdv_is_identity(self):
        assert self.s.delayed(0) is self.s

    def test_zero_stream_unchanged(self):
        assert ZERO_STREAM.delayed(5) is ZERO_STREAM

    def test_negative_cdv_rejected(self):
        with pytest.raises(ValueError):
            self.s.delayed(-1)

    def test_paper_shape(self):
        # CDV=3: AREA1 = A(3) = 2 bits; drained against rate 1/2 tail in
        # 4 time units, so S' is full rate on [0,4) then the SCR tail.
        delayed = self.s.delayed(F(3))
        assert delayed == stream((1, 0), (F(1, 10), 4))

    def test_bit_conservation_after_clump(self):
        # Past the clump, the delayed curve equals A(t + CDV) exactly.
        cdv = F(3)
        delayed = self.s.delayed(cdv)
        for t in (4, 5, 10, 100):
            assert delayed.bits(t) == self.s.bits(t + cdv)

    def test_full_rate_head(self):
        delayed = self.s.delayed(F(3))
        assert delayed.peak_rate == 1
        assert delayed.bits(2) == 2  # rate 1 during the clump release

    def test_delayed_dominates_original(self):
        # Clumping only moves bits earlier: the delayed stream dominates.
        delayed = self.s.delayed(F(3))
        assert delayed.dominates(self.s)

    def test_more_cdv_dominates_less(self):
        little = self.s.delayed(F(1))
        lots = self.s.delayed(F(5))
        assert lots.dominates(little)

    def test_full_rate_stream_saturates(self):
        # A connection at the link rate clumps into the constant
        # full-rate stream: the backlog never drains.
        cbr_full = stream((1, 0))
        assert cbr_full.delayed(2) == BitStream.constant(1)

    def test_cdv_before_first_breakpoint(self):
        # CDV smaller than the leading full-rate segment: the delayed
        # curve is the exact envelope min(t, A(t + CDV)) everywhere.
        cdv = F(1, 2)
        delayed = self.s.delayed(cdv)
        assert delayed.rate_at(0) == 1
        for t in (F(1, 2), 1, F(3, 2), 3, 10):
            assert delayed.bits(t) == min(t, self.s.bits(t + cdv))

    def test_aggregate_rejected(self):
        over = stream((2, 0), (F(1, 2), 1))
        with pytest.raises(BitStreamError, match="peak rate"):
            over.delayed(1)

    def test_cbr_delay_matches_hand_calculation(self):
        # CBR at rate 1/4 with CDV 8: AREA1 = 2 bits, drained at rate
        # 1 - 1/4 = 3/4, so full rate until t = 8/3.
        cbr = stream((F(1, 4), 0))
        delayed = cbr.delayed(8)
        assert delayed == stream((1, 0), (F(1, 4), F(8, 3)))


class TestFiltering:
    """Algorithm 3.4 -- smoothing by a transmission link."""

    def test_under_capacity_unchanged(self):
        s = stream((1, 0), (F(1, 2), 1))
        assert s.filtered() is s

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            stream((1, 0)).filtered(0)

    def test_paper_shape(self):
        # Aggregate 3x the VBR envelope: backlog 5 by t=7, drains at
        # rate 7/10, so the filtered stream is rate 1 until 99/7.
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        assert s.filtered() == stream((1, 0), (F(3, 10), F(99, 7)))

    def test_never_exceeds_capacity(self):
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        assert s.filtered().peak_rate == 1
        assert s.filtered(F(1, 2)).peak_rate == F(1, 2)

    def test_bit_conservation_after_drain(self):
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        filtered = s.filtered()
        drain = F(99, 7)
        for t in (drain, drain + 1, drain + 100):
            assert filtered.bits(t) == s.bits(t)

    def test_output_cumulative_never_exceeds_input(self):
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        filtered = s.filtered()
        for t in (0, F(1, 2), 1, 3, 7, 10, 20):
            assert filtered.bits(t) <= s.bits(t)
            assert filtered.bits(t) <= t

    def test_overloaded_link_saturates(self):
        s = stream((2, 0), (F(3, 2), 5))   # long-run rate above capacity
        assert s.filtered() == BitStream.constant(1)

    def test_exact_capacity_with_backlog_saturates(self):
        s = stream((2, 0), (1, 5))   # backlog 5 never drains at rate 1
        assert s.filtered() == BitStream.constant(1)

    def test_idempotent(self):
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        once = s.filtered()
        assert once.filtered() == once

    def test_non_unit_capacity(self):
        s = stream((1, 0), (F(1, 10), 2))   # 2 bits backlog over cap 1/2
        filtered = s.filtered(F(1, 2))
        # Backlog (1 - 1/2)*2 = 1 drains at 1/2 - 1/10 = 2/5: 2.5 extra.
        assert filtered == stream((F(1, 2), 0), (F(1, 10), F(9, 2)))


class TestBacklogAndBusyPeriod:
    def test_no_overload_no_backlog(self):
        s = stream((1, 0), (F(1, 2), 1))
        assert s.backlog_bound() == 0
        assert s.busy_period() == 0

    def test_backlog_of_aggregate(self):
        s = stream((3, 0), (F(3, 2), 1), (F(3, 10), 7))
        assert s.backlog_bound() == 5
        assert s.busy_period() == F(99, 7)

    def test_unstable_backlog_infinite(self):
        s = stream((2, 0))
        assert s.backlog_bound() == math.inf
        assert s.busy_period() == math.inf

    def test_backlog_against_smaller_capacity(self):
        s = stream((1, 0), (F(1, 10), 2))
        assert s.backlog_bound(F(1, 2)) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            stream((1, 0)).backlog_bound(0)
        with pytest.raises(ValueError):
            stream((1, 0)).busy_period(-1)


class TestComparison:
    def test_structural_equality(self):
        assert stream((1, 0), (0.5, 1)) == stream((1, 0), (0.5, 1))
        assert stream((1, 0)) != stream((0.5, 0))

    def test_hashable(self):
        assert len({stream((1, 0)), stream((1, 0)), stream((0.5, 0))}) == 2

    def test_approx_equal_tolerates_noise(self):
        a = stream((1, 0), (0.5, 1))
        b = stream((1, 0), (0.5 + 1e-12, 1 + 1e-12))
        assert a.approx_equal(b)

    def test_approx_equal_detects_difference(self):
        a = stream((1, 0), (0.5, 1))
        b = stream((1, 0), (0.4, 1))
        assert not a.approx_equal(b)

    def test_approx_equal_different_segment_counts(self):
        # Structurally different but same cumulative curve within noise.
        a = stream((1, 0), (0.5, 1))
        b = stream((1, 0), (0.5 + 5e-13, 1), (0.5, 2))
        assert a.approx_equal(b)

    def test_dominates(self):
        big = stream((1, 0), (F(1, 2), 2))
        small = stream((F(1, 2), 0), (F(1, 4), 2))
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_dominates_self(self):
        s = stream((1, 0), (0.5, 1))
        assert s.dominates(s)

    def test_dominates_requires_tail_slope(self):
        # Bigger now but slower forever: eventually overtaken.
        early = stream((1, 0), (F(1, 10), 1))
        late = stream((F(1, 2), 0))
        assert not early.dominates(late)


class TestNumberConversions:
    def test_as_floats(self):
        s = stream((F(1, 2), 0), (F(1, 3), F(7, 2)))
        converted = s.as_floats()
        assert all(isinstance(r, float) for r in converted.rates)
        assert all(isinstance(t, float) for t in converted.times)
        assert converted.rates[0] == 0.5

    def test_as_fractions_snaps_floats(self):
        s = stream((0.5, 0), (0.25, 1.5))
        converted = s.as_fractions()
        assert converted.rates == (F(1, 2), F(1, 4))
        assert converted.times == (0, F(3, 2))

    def test_as_fractions_preserves_exact(self):
        s = stream((F(1, 3), 0))
        assert s.as_fractions().rates[0] == F(1, 3)

    def test_round_trip_bits_agree(self):
        s = stream((F(1, 2), 0), (F(1, 10), 3))
        assert s.as_floats().bits(7.0) == pytest.approx(float(s.bits(7)))
