"""Journal semantics, crash/recover, and the double-release regression."""

from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError, SwitchUnavailable
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network
from repro.robustness.journal import AdmissionJournal, JournalEntry


def stream(rate):
    return cbr(rate).worst_case_stream()


def loaded_switch():
    """A switch with committed legs at two priorities plus one pending."""
    switch = SwitchCAC("sw0")
    switch.configure_link("out", {0: 64, 1: 256})
    switch.admit("a", "in-a", "out", 0, stream(F(1, 8)))
    switch.admit("b", "in-b", "out", 1, stream(F(1, 10)))
    switch.admit("c", "in-a", "out", 1, stream(F(1, 16)))
    switch.release("c")
    switch.reserve("d", "in-b", "out", 0, stream(F(1, 12)))
    return switch


def committed_snapshot(switch):
    """Exact committed-state fingerprint: legs plus every Sia aggregate."""
    keys = {
        (leg.in_link, leg.out_link, leg.priority)
        for leg in switch.legs.values()
    }
    return (
        dict(switch.legs),
        {key: switch.sia(*key) for key in keys},
    )


class TestJournalPrimitive:
    def test_entries_are_sequenced_and_immutable(self):
        journal = AdmissionJournal()
        journal.append("admit", "a", leg="leg-a")
        journal.append("release", "a")
        assert [entry.sequence for entry in journal] == [0, 1]
        assert [entry.op for entry in journal] == ["admit", "release"]
        snapshot = journal.entries
        journal.append("admit", "b", leg="leg-b")
        assert len(snapshot) == 2          # old snapshots never mutate
        assert len(journal) == 3

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown journal op"):
            AdmissionJournal().append("compact", "a")
        with pytest.raises(ValueError, match="unknown journal op"):
            JournalEntry(0, "compact", "a")

    def test_reserve_requires_a_leg(self):
        with pytest.raises(ValueError, match="must carry its leg"):
            AdmissionJournal().append("reserve", "a")

    def test_replay_folds_to_committed_and_pending(self):
        journal = AdmissionJournal()
        journal.append("reserve", "a", leg="leg-a")
        journal.append("commit", "a")
        journal.append("reserve", "b", leg="leg-b")
        journal.append("abort", "b")
        journal.append("admit", "c", leg="leg-c")
        journal.append("release", "c")
        journal.append("reserve", "d", leg="leg-d")
        committed, pending = journal.replay()
        assert committed == {"a": "leg-a"}
        assert pending == {"d": "leg-d"}


class TestSwitchJournaling:
    def test_every_transition_is_journaled(self):
        switch = loaded_switch()
        ops = [(entry.op, entry.connection_id) for entry in switch.journal]
        assert ops == [
            ("admit", "a"), ("admit", "b"), ("admit", "c"),
            ("release", "c"), ("reserve", "d"),
        ]

    def test_two_phase_ops_are_journaled(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        switch.reserve("x", "in", "out", 0, stream(F(1, 8)))
        switch.commit("x")
        switch.rollback("x")
        switch.reserve("y", "in", "out", 0, stream(F(1, 8)))
        switch.rollback("y")
        ops = [(entry.op, entry.connection_id) for entry in switch.journal]
        assert ops == [
            ("reserve", "x"), ("commit", "x"), ("release", "x"),
            ("reserve", "y"), ("abort", "y"),
        ]


class TestCrashRecover:
    def test_crash_loses_volatile_state_and_refuses_work(self):
        switch = loaded_switch()
        switch.crash()
        assert switch.crashed
        assert switch.legs == {}
        assert switch.pending == {}
        with pytest.raises(SwitchUnavailable):
            switch.check("in-a", "out", 0, stream(F(1, 8)))
        with pytest.raises(SwitchUnavailable):
            switch.admit("z", "in-a", "out", 0, stream(F(1, 8)))
        with pytest.raises(SwitchUnavailable):
            switch.release("a")
        with pytest.raises(SwitchUnavailable):
            switch.reserve("z", "in-a", "out", 0, stream(F(1, 8)))
        with pytest.raises(SwitchUnavailable):
            switch.commit("d")
        with pytest.raises(SwitchUnavailable):
            switch.rollback("a")

    def test_recovery_is_bit_identical_on_committed_state(self):
        switch = loaded_switch()
        switch.rollback("d")   # make pre-crash state committed-only
        legs_before, sia_before = committed_snapshot(switch)
        journal_before = len(switch.journal)
        switch.crash()
        switch.recover()
        legs_after, sia_after = committed_snapshot(switch)
        assert legs_after == legs_before
        assert set(sia_after) == set(sia_before)
        for key in sia_before:
            # Fraction arithmetic + op-for-op replay => exact equality.
            assert sia_after[key] == sia_before[key]
        assert switch.verify_consistency()
        assert len(switch.journal) == journal_before   # replay appends nothing

    def test_recovery_discards_inflight_reservations(self):
        switch = loaded_switch()
        legs_before = dict(switch.legs)
        switch.crash()
        switch.recover()
        assert set(switch.legs) == set(legs_before)
        assert switch.pending == {}
        # The discarded reservation is journaled as an abort, so a second
        # crash/recover round-trips to the same state.
        assert switch.journal.entries[-1].op == "abort"
        assert switch.journal.entries[-1].connection_id == "d"
        switch.crash()
        switch.recover()
        assert set(switch.legs) == set(legs_before)
        assert switch.verify_consistency()

    def test_recovered_switch_keeps_admitting(self):
        switch = loaded_switch()
        switch.crash()
        switch.recover()
        result = switch.admit("e", "in-a", "out", 1, stream(F(1, 16)))
        assert result.admitted
        assert switch.verify_consistency()


class TestDoubleReleaseRegression:
    """Satellite: double release must raise, never corrupt the caches."""

    def test_double_release_raises_and_leaves_caches_intact(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        switch.admit("a", "in-a", "out", 0, stream(F(1, 8)))
        switch.admit("b", "in-b", "out", 0, stream(F(1, 10)))
        switch.release("a")
        soa_before = switch.soa("out", 0)
        with pytest.raises(AdmissionError, match="not admitted"):
            switch.release("a")
        assert switch.soa("out", 0) == soa_before
        assert set(switch.legs) == {"b"}
        assert switch.verify_consistency()

    def test_release_of_unknown_connection_raises(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        with pytest.raises(AdmissionError, match="unknown or already"):
            switch.release("ghost")
        assert switch.verify_consistency()

    def test_release_of_pending_reservation_points_at_rollback(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        switch.reserve("r", "in", "out", 0, stream(F(1, 8)))
        with pytest.raises(AdmissionError, match="only reserved"):
            switch.release("r")
        assert "r" in switch.pending
        assert switch.verify_consistency()

    def test_rollback_is_idempotent(self):
        switch = SwitchCAC("sw0")
        switch.configure_link("out", {0: 64})
        switch.admit("a", "in-a", "out", 0, stream(F(1, 8)))
        assert switch.rollback("a") is not None
        assert switch.rollback("a") is None
        assert switch.rollback("never-existed") is None
        assert switch.verify_consistency()

    def test_network_double_teardown_raises_cleanly(self):
        network = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(network)
        cac.setup(ConnectionRequest(
            "vc0", cbr(F(1, 8)), shortest_path(network, "t0.0", "t2.0")))
        cac.teardown("vc0")
        with pytest.raises(AdmissionError, match="no established"):
            cac.teardown("vc0")
        for switch in cac.switches().values():
            assert switch.legs == {}
            assert switch.verify_consistency()
