"""Hard / soft CDV accumulation policies."""

import math

import pytest

from repro.core.accumulation import HARD, SOFT, HardCdv, SoftCdv, make_policy


class TestHard:
    def test_empty_is_zero(self):
        assert HARD.accumulate([]) == 0

    def test_sums(self):
        assert HARD.accumulate([32, 32, 32]) == 96

    def test_exact_with_fractions(self):
        from fractions import Fraction as F
        assert HARD.accumulate([F(1, 3), F(1, 6)]) == F(1, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HARD.accumulate([5, -1])

    def test_name(self):
        assert HARD.name == "hard"
        assert "HardCdv" in repr(HardCdv())


class TestSoft:
    def test_empty_is_zero(self):
        assert SOFT.accumulate([]) == 0

    def test_sqrt_of_sum_of_squares(self):
        assert SOFT.accumulate([3, 4]) == pytest.approx(5)

    def test_single_bound_unchanged(self):
        assert SOFT.accumulate([32]) == pytest.approx(32)

    def test_never_exceeds_hard(self):
        for bounds in ([32] * 4, [1, 2, 3], [10, 0, 10]):
            assert SOFT.accumulate(bounds) <= HARD.accumulate(bounds) + 1e-12

    def test_at_least_the_largest_bound(self):
        assert SOFT.accumulate([5, 12, 3]) >= 12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SOFT.accumulate([-2])

    def test_name(self):
        assert SOFT.name == "soft"


class TestMakePolicy:
    def test_by_name(self):
        assert make_policy("hard") is HARD
        assert make_policy("SOFT") is SOFT

    def test_instance_passthrough(self):
        custom = SoftCdv()
        assert make_policy(custom) is custom

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown CDV policy"):
            make_policy("medium")
