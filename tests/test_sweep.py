"""Generic sweep helpers."""

from repro.analysis.sweep import sweep_1d, sweep_2d


class TestSweep1d:
    def test_values_in_order(self):
        result = sweep_1d(lambda x: x * 2, [3, 1, 2])
        assert result.values() == [6, 2, 4]
        assert result.rows == [[3, 6], [1, 2], [2, 4]]

    def test_table_rendering(self):
        out = sweep_1d(lambda x: x, [1], param="load",
                       result="bound").table("T")
        assert "load" in out and "bound" in out and out.startswith("T")

    def test_csv(self):
        out = sweep_1d(lambda x: x + 1, [1, 2], param="a").csv()
        assert out.splitlines()[0] == "a,value"
        assert out.splitlines()[1] == "1,2"


class TestSweep2d:
    def test_row_major_grid(self):
        result = sweep_2d(lambda a, b: a * 10 + b, [1, 2], [3, 4])
        assert result.rows == [
            [1, 3, 13], [1, 4, 14], [2, 3, 23], [2, 4, 24]]

    def test_headers(self):
        result = sweep_2d(lambda a, b: 0, [1], [1],
                          first="n", second="load", result="delay")
        assert result.headers == ["n", "load", "delay"]

    def test_real_usage_with_ring_analysis(self):
        from repro.rtnet import RingAnalysis, symmetric_workload
        result = sweep_2d(
            lambda count, load: float(RingAnalysis(
                symmetric_workload(load, 4, count), 4
            ).worst_link_bound(0)),
            [1, 2], [0.2, 0.4],
            first="terminals", second="load", result="bound")
        values = result.values()
        assert values[0] < values[1]        # more load, bigger bound
        assert values[0] < values[2]        # more terminals, bigger bound


class TestSweepEdgeCases:
    def test_empty_first_axis(self):
        result = sweep_2d(lambda a, b: a + b, [], [1, 2])
        assert result.rows == []
        assert result.values() == []

    def test_empty_second_axis(self):
        result = sweep_2d(lambda a, b: a + b, [1, 2], [])
        assert result.rows == []

    def test_empty_1d(self):
        result = sweep_1d(lambda x: x, [])
        assert result.rows == []
        assert result.csv() == "x,value"

    def test_single_point_1d(self):
        result = sweep_1d(lambda x: -x, [5])
        assert result.rows == [[5, -5]]

    def test_single_point_2d(self):
        result = sweep_2d(lambda a, b: a * b, [3], [4])
        assert result.rows == [[3, 4, 12]]

    def test_csv_quotes_embedded_commas(self):
        out = sweep_1d(lambda x: f"a,{x}", ["p,q"], param="x,y").csv()
        lines = out.splitlines()
        assert lines[0] == '"x,y",value'
        assert lines[1] == '"p,q","a,p,q"'

    def test_csv_escapes_embedded_quotes(self):
        out = sweep_1d(lambda x: 'say "hi"', [1]).csv()
        assert '"say ""hi"""' in out

    def test_csv_plain_fields_stay_bare(self):
        out = sweep_1d(lambda x: x + 0.5, [1, 2], param="load").csv()
        assert '"' not in out
        assert out.splitlines()[1] == "1,1.5"

    def test_table_with_awkward_strings(self):
        out = sweep_1d(lambda x: "a,b | c", [1], param="p").table()
        assert "a,b | c" in out
