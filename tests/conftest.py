"""Shared fixtures: observability isolation and optional CI export.

``obs_enabled`` installs a fresh registry + tracer driven by a
ManualClock and restores whatever was installed before, so tests can
assert on metrics/spans without leaking global state into each other.

When the ``REPRO_OBS_JSONL`` environment variable names a file (the CI
fault-stress job sets it), observability is switched on for the whole
session and the final metrics registry is dumped there as JSON lines
for artifact upload.
"""

import os

import pytest

from repro import obs
from repro.robustness.retry import ManualClock


@pytest.fixture
def obs_clock():
    """A fresh ManualClock (also installed as the obs clock by
    ``obs_enabled``)."""
    return ManualClock()


@pytest.fixture
def obs_enabled(obs_clock):
    """``(registry, tracer)`` installed globally for one test."""
    previous_clock = obs.get_clock()
    previous_registry = obs.get_registry()
    previous_tracer = obs.get_tracer()
    registry, tracer = obs.enable(clock_source=obs_clock)
    yield registry, tracer
    obs.set_registry(previous_registry)
    obs.set_tracer(previous_tracer)
    obs.set_clock(previous_clock)


@pytest.fixture
def obs_bus():
    """A fresh global event bus for one test, restored afterwards."""
    bus = obs.EventBus()
    previous = obs.set_bus(bus)
    yield bus
    obs.set_bus(previous)


@pytest.fixture(scope="session", autouse=True)
def _obs_session_export():
    """Dump session-wide metrics as JSONL when REPRO_OBS_JSONL is set."""
    path = os.environ.get("REPRO_OBS_JSONL")
    if not path:
        yield
        return
    registry, _tracer = obs.enable()
    yield
    from repro.obs.export import metrics_to_jsonl
    text = metrics_to_jsonl(obs.get_registry())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + ("\n" if text else ""))
    obs.disable()
