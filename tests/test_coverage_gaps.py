"""Focused tests for paths the main suites exercise only indirectly."""

from fractions import Fraction as F

import pytest

from repro.core import NetworkCAC, SwitchCAC, cbr
from repro.core.traffic import VBRParameters
from repro.network import ConnectionRequest, shortest_path
from repro.network.topology import line_network, star_network
from repro.rtnet import RingAnalysis, symmetric_workload
from repro.sim import (
    CbrSource,
    Engine,
    EnvelopeSource,
    GreedyVbrSource,
    SimNetwork,
)


class TestArrivalStreamApi:
    """NetworkCAC.arrival_stream: the Step 1 construction, exposed."""

    def test_first_hop_is_undistorted(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        request = ConnectionRequest(
            "vc", cbr(F(1, 4)), shortest_path(net, "t0.0", "t2.0"))
        assert cac.arrival_stream(request, 0) == \
            request.traffic.worst_case_stream()

    def test_later_hops_are_clumped(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        request = ConnectionRequest(
            "vc", cbr(F(1, 4)), shortest_path(net, "t0.0", "t2.0"))
        hop0 = cac.arrival_stream(request, 0)
        hop2 = cac.arrival_stream(request, 2)
        assert hop2 == hop0.delayed(64)       # two upstream 32-cell hops
        assert hop2.dominates(hop0)


class TestSwitchAccessors:
    def test_soa_and_sof_reflect_admissions(self):
        switch = SwitchCAC("sw")
        switch.configure_link("out", {0: 100, 1: 100})
        hi = cbr(F(1, 4)).worst_case_stream()
        lo = cbr(F(1, 8)).worst_case_stream()
        switch.admit("hi", "in0", "out", 0, hi)
        switch.admit("lo", "in1", "out", 1, lo)
        assert switch.soa("out", 0) == hi.filtered()
        assert switch.soa("out", 1) == lo.filtered()
        # Priority 1's interference is the filtered priority-0 traffic.
        assert switch.sof_higher("out", 1) == hi.filtered().filtered()
        # The top priority has no interference.
        assert switch.sof_higher("out", 0).is_zero

    def test_out_links_listing(self):
        switch = SwitchCAC("sw")
        switch.configure_link("a", {0: 32})
        switch.configure_link("b", {0: 32})
        assert sorted(switch.out_links()) == ["a", "b"]


class TestPropagationDelay:
    def test_propagation_shifts_delivery_not_queueing(self):
        net = star_network(2, bounds={0: 32})
        plain = SimNetwork(net)
        slow = SimNetwork(star_network(2, bounds={0: 32}),
                          propagation=5.0)
        for sim in (plain, slow):
            route = shortest_path(sim.topology, "t0", "t1")
            sim.attach_route("vc", route)
            CbrSource(sim.engine, "vc", 0.25, sim.ingress("vc"),
                      until=100)
            sim.run(until=300)
        assert plain.metrics.stats("vc").delivered == \
            slow.metrics.stats("vc").delivered
        # Propagation adds latency but no queueing wait.
        assert plain.metrics.stats("vc").max_e2e_delay == \
            slow.metrics.stats("vc").max_e2e_delay == 0.0


class TestSourcePhases:
    def test_greedy_vbr_phase_offsets_schedule(self):
        engine = Engine()
        got = []
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=3)
        GreedyVbrSource(engine, "vc", params, 3, got.append, phase=7.5)
        engine.run()
        assert [cell.emitted_at for cell in got] == [7.5, 9.5, 11.5]

    def test_envelope_source_phase(self):
        engine = Engine()
        got = []
        EnvelopeSource(engine, "vc", cbr(F(1, 4)).worst_case_stream(),
                       2, got.append, phase=3.0)
        engine.run()
        assert [cell.emitted_at for cell in got] == [3.0, 7.0]

    def test_cbr_emits_exactly_until(self):
        engine = Engine()
        got = []
        CbrSource(engine, "vc", 0.25, got.append, phase=0.0, until=8.0)
        engine.run()
        assert [cell.emitted_at for cell in got] == [0.0, 4.0, 8.0]


class TestRingAnalysisCaching:
    def test_link_bound_memoized(self):
        analysis = RingAnalysis(symmetric_workload(0.4, 4, 1), 4)
        first = analysis.link_bound(0, 0)
        second = analysis.link_bound(0, 0)
        assert first == second
        assert (0, 0) in analysis._link_bounds

    def test_all_links_cover_the_ring(self):
        analysis = RingAnalysis(symmetric_workload(0.4, 5, 1), 5)
        assert len(analysis.all_link_bounds(0)) == 5


class TestSwitchSourceRoutes:
    def test_route_starting_at_switch_simulates(self):
        """Routes whose source is a switch use the direct ingress."""
        from repro.network.routing import Route
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        sim = SimNetwork(net)
        route = Route(net, ["s0->s1", "s1->s2"])
        sim.attach_route("transit", route)
        from repro.sim.cell import Cell
        sim.engine.schedule(
            0.0, lambda: sim.ingress("transit")(Cell("transit", 0, 0.0)))
        sim.run(until=50)
        # Destination s2 is a switch: delivered locally there.
        assert sim.metrics.stats("transit").delivered == 1
