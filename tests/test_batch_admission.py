"""The batched admission pipeline: ``check_batch`` / ``setup_many``.

The acceptance property (ISSUE 4): ``setup_many`` must admit *exactly*
the set a sequential one-by-one setup loop admits -- same refusals,
bit-identical committed aggregates, identical per-switch journals --
including when the group check falls back to sequential and when faults
are injected mid-batch.  The batch is an optimisation, never a policy
change.
"""

import os
from fractions import Fraction as F

import pytest

from repro.core.admission import BatchSetupResult, NetworkCAC
from repro.core.server import CacServer
from repro.core.switch_cac import Leg
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError
from repro.network.connection import ConnectionRequest
from repro.network.routing import ring_walk, shortest_path
from repro.network.signaling import (
    BatchSetupMessage,
    ConnectedMessage,
    SignalingTrace,
)
from repro.network.topology import line_network, ring_network, star_network
from repro.robustness.harness import run_schedule
from repro.rtnet.evaluation import establish_workload
from repro.rtnet.workloads import plant_mix_workload

SCHEDULES = int(os.environ.get("FAULT_SCHEDULES", "60"))
BATCH_SCHEDULES = max(10, SCHEDULES // 3)


def line_factory():
    return line_network(4, bounds={0: 64}, terminals_per_switch=2)


def line_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14), F(1, 11)]
    spans = [("t0.0", "t3.0"), ("t0.1", "t2.0"), ("t1.0", "t3.1"),
             ("t0.0", "t1.1"), ("t2.1", "t3.0")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


def ring_factory():
    return ring_network(4, bounds={0: 64}, terminals_per_switch=1)


def ring_requests(network):
    return [
        ConnectionRequest(
            f"bcast{index}", cbr(F(1, 12)),
            ring_walk(network, f"s{index}", hops=3,
                      access_from=f"t{index}.0"))
        for index in range(4)
    ]


def overload_factory():
    """A two-priority line so tight that some of the batch is refused."""
    return line_network(3, bounds={0: 48, 1: 96}, terminals_per_switch=2)


def overload_requests(network):
    rates = [F(1, 4), F(1, 5), F(1, 3), F(1, 6), F(1, 4), F(1, 7)]
    spans = [("t0.0", "t2.0"), ("t0.1", "t2.1"), ("t1.0", "t2.0"),
             ("t0.0", "t1.0"), ("t1.1", "t2.1"), ("t0.1", "t1.1")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst),
                          priority=index % 2)
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


def run_sequential(factory, request_factory):
    """The reference: one-by-one setup, refusals collected not raised."""
    network = factory()
    cac = NetworkCAC(network)
    failures = {}
    for request in request_factory(network):
        try:
            cac.setup(request)
        except AdmissionError as refused:
            failures[request.name] = refused
    return cac, failures


def run_batched(factory, request_factory, trace=None):
    network = factory()
    cac = NetworkCAC(network)
    outcome = cac.setup_many(request_factory(network), trace=trace)
    return cac, outcome


def assert_bit_identical(batched_cac, sequential_cac):
    """Committed state equality, exact -- not approx_equal."""
    assert set(batched_cac.established) == set(sequential_cac.established)
    for name, connection in batched_cac.established.items():
        assert connection.e2e_bound == \
            sequential_cac.established[name].e2e_bound
    for name, switch in batched_cac.switches().items():
        reference = sequential_cac.switch(name)
        assert list(switch.legs) == list(reference.legs)
        assert not switch.pending and not reference.pending
        ours = switch.recompute_aggregates()
        theirs = reference.recompute_aggregates()
        assert set(ours) == set(theirs)
        for key, stream in ours.items():
            assert stream.rates == theirs[key].rates
            assert stream.times == theirs[key].times
        # live aggregates, not just the from-scratch rebuild
        for (in_link, out_link, priority), stream in theirs.items():
            live = switch.sia(in_link, out_link, priority)
            assert live.rates == stream.rates
            assert live.times == stream.times
        assert switch.verify_consistency()


EQUIVALENCE_CASES = [
    ("line", line_factory, line_requests),
    ("ring", ring_factory, ring_requests),
    ("overload", overload_factory, overload_requests),
]


@pytest.mark.parametrize("label,factory,requests", EQUIVALENCE_CASES,
                         ids=[label for label, _, _ in EQUIVALENCE_CASES])
class TestBatchEqualsSequential:
    def test_same_admissions_and_bit_identical_state(
            self, label, factory, requests):
        sequential_cac, sequential_failures = run_sequential(
            factory, requests)
        batched_cac, outcome = run_batched(factory, requests)
        assert isinstance(outcome, BatchSetupResult)
        assert set(outcome.admitted_names) == \
            set(sequential_cac.established)
        assert set(outcome.failures) == set(sequential_failures)
        for name, refused in outcome.failures.items():
            assert type(refused) is type(sequential_failures[name])
        assert_bit_identical(batched_cac, sequential_cac)

    def test_journals_are_op_for_op_identical(
            self, label, factory, requests):
        sequential_cac, _ = run_sequential(factory, requests)
        batched_cac, _ = run_batched(factory, requests)
        for name, switch in batched_cac.switches().items():
            assert (
                [(e.op, e.connection_id) for e in switch.journal]
                == [(e.op, e.connection_id)
                    for e in sequential_cac.switch(name).journal]
            ), f"journal divergence at {name}"

    def test_crash_recovery_reproduces_batched_state(
            self, label, factory, requests):
        batched_cac, _ = run_batched(factory, requests)
        before = {
            name: switch.recompute_aggregates()
            for name, switch in batched_cac.switches().items()
        }
        for switch in batched_cac.switches().values():
            switch.crash()
            switch.recover()
        for name, switch in batched_cac.switches().items():
            after = switch.recompute_aggregates()
            assert set(after) == set(before[name])
            for key, stream in after.items():
                assert stream.rates == before[name][key].rates
                assert stream.times == before[name][key].times
            assert switch.verify_consistency()


def test_all_feasible_batch_takes_the_fast_path():
    trace = SignalingTrace()
    _cac, outcome = run_batched(line_factory, line_requests, trace=trace)
    assert outcome.batched
    assert not outcome.failures
    batch_messages = [m for m in trace.messages
                      if isinstance(m, BatchSetupMessage)]
    assert batch_messages and all(m.admitted for m in batch_messages)
    # one group verdict per switch the batch touches
    assert len({m.at_node for m in batch_messages}) == len(batch_messages)
    connected = {m.connection for m in trace.messages
                 if isinstance(m, ConnectedMessage)}
    assert connected == set(outcome.admitted_names)


def test_infeasible_batch_falls_back_to_sequential():
    trace = SignalingTrace()
    _cac, outcome = run_batched(overload_factory, overload_requests,
                                trace=trace)
    assert not outcome.batched
    assert outcome.failures  # the overload corpus really refuses some
    assert outcome.established  # ... and admits others
    failing = [m for m in trace.messages
               if isinstance(m, BatchSetupMessage) and not m.admitted]
    assert failing, "the failed group check should be visible in the trace"


def test_empty_and_singleton_batches():
    network = line_factory()
    cac = NetworkCAC(network)
    empty = cac.setup_many([])
    assert empty.established == () and not empty.failures

    single = cac.setup_many(line_requests(network)[:1])
    assert single.admitted_names == ("vc0",)
    for switch in cac.switches().values():
        assert switch.verify_consistency()


def test_duplicate_name_within_batch_is_refused():
    network = line_factory()
    requests = line_requests(network)
    clone = ConnectionRequest("vc0", cbr(F(1, 13)),
                              shortest_path(network, "t2.0", "t3.0"))
    outcome = NetworkCAC(line_factory()).setup_many(requests + [clone])
    # the reference semantics: the first "vc0" wins, the clone is refused
    # exactly as a sequential loop would refuse the second setup("vc0")
    assert "vc0" in outcome.admitted_names
    assert list(outcome.failures) == ["vc0"] or "vc0" in outcome.failures
    sequential_cac, sequential_failures = run_sequential(
        line_factory, lambda net: line_requests(net) + [ConnectionRequest(
            "vc0", cbr(F(1, 13)), shortest_path(net, "t2.0", "t3.0"))])
    assert set(sequential_failures) == set(outcome.failures)


@pytest.mark.parametrize("seed", range(BATCH_SCHEDULES))
def test_fault_schedules_batched_equals_sequential(seed):
    """Injected faults mid-batch: identical reports either way."""
    batched = run_schedule(seed, line_factory, line_requests, batched=True)
    sequential = run_schedule(seed, line_factory, line_requests,
                              batched=False)
    assert batched.established == sequential.established
    assert batched.errors == sequential.errors
    assert batched.recovered == sequential.recovered
    assert batched.consistent and batched.equivalent
    assert sequential.consistent and sequential.equivalent


def test_check_batch_group_verdict_and_violations():
    network = line_factory()
    cac = NetworkCAC(network)
    switch = cac.switch("s1")
    stream = cbr(F(1, 10)).worst_case_stream()
    good = [Leg(f"vc{i}", "s0->s1", "s1->s2", 0, stream)
            for i in range(3)]
    verdict = switch.check_batch(good)
    assert verdict.admitted
    assert ("s1->s2", 0) in verdict.computed_bounds
    assert set(verdict.results) == {"vc0", "vc1", "vc2"}
    # monotonicity in action: the group verdict licenses each member
    for leg in good:
        switch.reserve_checked(leg, verdict.results[leg.connection_id])
        switch.commit(leg.connection_id)
    assert switch.verify_consistency()

    flood = [Leg(f"big{i}", "s0->s1", "s1->s2", 0,
                 cbr(F(1, 2)).worst_case_stream()) for i in range(4)]
    refused = switch.check_batch(flood)
    assert not refused.admitted
    assert refused.violations["s1->s2"]
    assert not refused.results["big0"].admitted


def test_server_batch_decisions_match_sequential_decisions():
    network = overload_factory()
    requests = overload_requests(network)
    decisions = CacServer(network).request_setup_many(requests)
    assert [d.connection for d in decisions] == \
        [r.name for r in requests]

    sequential_cac, sequential_failures = run_sequential(
        overload_factory, overload_requests)
    for decision in decisions:
        if decision.admitted:
            assert decision.connection in sequential_cac.established
            assert decision.e2e_bound == \
                sequential_cac.established[decision.connection].e2e_bound
        else:
            assert decision.connection in sequential_failures


def test_server_batch_refuses_duplicate_names_in_order():
    network = line_factory()
    requests = line_requests(network)[:2]
    duplicate = ConnectionRequest(
        "vc0", cbr(F(1, 13)),
        shortest_path(network, "t2.0", "t3.0"))
    decisions = CacServer(network).request_setup_many(
        requests + [duplicate])
    assert [d.connection for d in decisions] == ["vc0", "vc1", "vc0"]
    assert decisions[0].admitted and decisions[1].admitted
    assert not decisions[2].admitted


def test_establish_workload_batched_parity():
    sequential_net, sequential_established = establish_workload(
        plant_mix_workload(4), ring_nodes=4, terminals_per_node=3)
    batched_net, batched_established = establish_workload(
        plant_mix_workload(4), ring_nodes=4, terminals_per_node=3,
        batched=True)
    assert [c.name for c in batched_established] == \
        [c.name for c in sequential_established]
    assert [c.e2e_bound for c in batched_established] == \
        [c.e2e_bound for c in sequential_established]
    for name, switch in batched_net.switches().items():
        reference = sequential_net.switch(name).recompute_aggregates()
        ours = switch.recompute_aggregates()
        assert set(ours) == set(reference)
        for key, stream in ours.items():
            assert stream.rates == reference[key].rates
            assert stream.times == reference[key].times


def test_setup_many_then_teardown_round_trips():
    network = star_network(4, bounds={0: 64})
    cac = NetworkCAC(network)
    requests = [
        ConnectionRequest(f"vc{i}", cbr(F(1, 12)),
                          shortest_path(network, f"t{i}", f"t{(i+1) % 4}"))
        for i in range(4)
    ]
    outcome = cac.setup_many(requests)
    assert set(outcome.admitted_names) == {f"vc{i}" for i in range(4)}
    for name in outcome.admitted_names:
        cac.teardown(name)
    for switch in cac.switches().values():
        assert not switch.legs and not switch.pending
        assert switch.verify_consistency()
