"""Network-level CAC: route setup, CDV accumulation, rollback, signalling."""

import math
from fractions import Fraction as F

import pytest

from repro.core.accumulation import HARD, SOFT
from repro.core.admission import NetworkCAC
from repro.core.traffic import VBRParameters, cbr
from repro.exceptions import AdmissionError, QosUnsatisfiable, SwitchRejection
from repro.network.connection import ConnectionRequest
from repro.network.routing import Route, ring_walk, shortest_path
from repro.network.signaling import (
    AbortMessage,
    CommitMessage,
    ConnectedMessage,
    RejectMessage,
    ReleaseMessage,
    SetupMessage,
    SignalingTrace,
)
from repro.network.topology import line_network, ring_network, star_network


@pytest.fixture
def line():
    return line_network(4, bounds={0: 32}, terminals_per_switch=1)


def request_over(net, name, src, dst, traffic=None, **kwargs):
    return ConnectionRequest(
        name, traffic or cbr(F(1, 8)), shortest_path(net, src, dst), **kwargs)


class TestSetup:
    def test_simple_establishment(self, line):
        cac = NetworkCAC(line)
        established = cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        assert established.name == "vc0"
        assert len(established.hops) == 4   # 3 ring ports + delivery port
        assert established.e2e_bound == 4 * 32
        assert "vc0" in cac.established

    def test_duplicate_name_rejected(self, line):
        cac = NetworkCAC(line)
        cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        with pytest.raises(AdmissionError, match="already established"):
            cac.setup(request_over(line, "vc0", "t0.0", "t1.0"))

    def test_cdv_grows_along_route(self, line):
        cac = NetworkCAC(line)
        established = cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        cdvs = [hop.cdv_in for hop in established.hops]
        assert cdvs == [0, 32, 64, 96]   # hard accumulation of 32/hop

    def test_soft_cdv_is_smaller(self, line):
        cac = NetworkCAC(line, cdv_policy="soft")
        established = cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        cdvs = [hop.cdv_in for hop in established.hops]
        assert cdvs[0] == 0
        assert cdvs[1] == pytest.approx(32)
        assert cdvs[2] == pytest.approx(32 * math.sqrt(2))
        assert cdvs[3] == pytest.approx(32 * math.sqrt(3))

    def test_qos_check_rejects_tight_request(self, line):
        cac = NetworkCAC(line)
        with pytest.raises(QosUnsatisfiable):
            cac.setup(request_over(line, "vc0", "t0.0", "t3.0",
                                   delay_bound=100))
        assert cac.established == {}

    def test_qos_check_accepts_matching_request(self, line):
        cac = NetworkCAC(line)
        established = cac.setup(request_over(line, "vc0", "t0.0", "t3.0",
                                             delay_bound=128))
        assert established.e2e_bound <= 128

    def test_computed_bounds_within_advertised(self, line):
        cac = NetworkCAC(line)
        for index in range(4):
            cac.setup(request_over(line, f"vc{index}", "t0.0", "t3.0"))
        for hop_key, stats in cac.port_report().items():
            assert stats["computed_bound"] <= stats["advertised"]

    def test_rejection_rolls_back_upstream_hops(self):
        # Saturate the last hop so the walk fails mid-route, then verify
        # no residue is left anywhere.
        net = line_network(3, bounds={0: 500}, terminals_per_switch=2)
        cac = NetworkCAC(net)
        # Fill the s1->s2 link almost completely via a shorter route.
        blocker = ConnectionRequest(
            "blocker", cbr(F(9, 10)),
            shortest_path(net, "t1.0", "t2.0"))
        cac.setup(blocker)
        victim = ConnectionRequest(
            "victim", cbr(F(1, 4)), shortest_path(net, "t0.0", "t2.1"))
        with pytest.raises(SwitchRejection):
            cac.setup(victim)
        assert "victim" not in cac.established
        # The first hop (s0) must have been released.
        assert cac.switch("s0").legs == {}

    def test_would_admit_matches_setup(self, line):
        cac = NetworkCAC(line)
        good = request_over(line, "vc0", "t0.0", "t3.0")
        assert cac.would_admit(good)
        cac.setup(good)
        bad = request_over(line, "vc1", "t0.0", "t3.0", traffic=cbr(F(95, 100)))
        assert not cac.would_admit(bad)
        with pytest.raises(SwitchRejection):
            cac.setup(bad)

    def test_would_admit_does_not_mutate(self, line):
        cac = NetworkCAC(line)
        cac.would_admit(request_over(line, "vc0", "t0.0", "t3.0"))
        assert cac.established == {}
        assert cac.switch("s0").legs == {}

    def test_unknown_switch_rejected(self, line):
        cac = NetworkCAC(line)
        with pytest.raises(AdmissionError):
            cac.switch("ghost")


class TestTeardown:
    def test_teardown_releases_everywhere(self, line):
        cac = NetworkCAC(line)
        cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        cac.teardown("vc0")
        assert cac.established == {}
        for name in ("s0", "s1", "s2", "s3"):
            assert cac.switch(name).legs == {}

    def test_teardown_unknown_rejected(self, line):
        cac = NetworkCAC(line)
        with pytest.raises(AdmissionError, match="no established"):
            cac.teardown("ghost")

    def test_setup_all_unwinds_on_failure(self, line):
        cac = NetworkCAC(line)
        requests = [
            request_over(line, "a", "t0.0", "t3.0"),
            request_over(line, "b", "t0.0", "t3.0"),
            request_over(line, "c", "t0.0", "t3.0", traffic=cbr(F(99, 100))),
        ]
        with pytest.raises(AdmissionError):
            cac.setup_all(requests)
        assert cac.established == {}

    def test_teardown_all(self, line):
        cac = NetworkCAC(line)
        for index in range(3):
            cac.setup(request_over(line, f"vc{index}", "t0.0", "t3.0"))
        cac.teardown_all()
        assert cac.established == {}


class TestSignalling:
    def test_successful_walk_trace(self, line):
        cac = NetworkCAC(line)
        trace = SignalingTrace()
        cac.setup(request_over(line, "vc0", "t0.0", "t3.0"), trace=trace)
        setups = trace.of_type(SetupMessage)
        assert [m.at_node for m in setups] == ["s0", "s1", "s2", "s3"]
        assert [m.cdv_in for m in setups] == [0, 32, 64, 96]
        connected = trace.of_type(ConnectedMessage)
        assert len(connected) == 1
        assert connected[0].at_node == "t3.0"

    def test_rejection_trace(self):
        net = line_network(2, bounds={0: 500}, terminals_per_switch=2)
        cac = NetworkCAC(net)
        cac.setup(ConnectionRequest(
            "hog", cbr(F(9, 10)), shortest_path(net, "t0.0", "t1.0")))
        trace = SignalingTrace()
        with pytest.raises(SwitchRejection):
            cac.setup(ConnectionRequest(
                "late", cbr(F(1, 2)),
                shortest_path(net, "t0.1", "t1.1")), trace=trace)
        rejects = trace.of_type(RejectMessage)
        assert len(rejects) == 1

    def test_release_trace(self, line):
        cac = NetworkCAC(line)
        cac.setup(request_over(line, "vc0", "t0.0", "t3.0"))
        trace = SignalingTrace()
        cac.teardown("vc0", trace=trace)
        assert len(trace.of_type(ReleaseMessage)) == 4

    def test_qos_reject_trace(self, line):
        cac = NetworkCAC(line)
        trace = SignalingTrace()
        with pytest.raises(QosUnsatisfiable):
            cac.setup(request_over(line, "vc0", "t0.0", "t3.0",
                                   delay_bound=1), trace=trace)
        assert len(trace.of_type(RejectMessage)) == 1


class TestMidWalkRollback:
    """A REJECT at hop k must release hops 1..k-1 and leave every
    switch's incremental caches consistent -- not just the happy path."""

    def saturated_net(self):
        # Fill the s1->s2 link almost completely via a shorter route so
        # a longer walk is rejected exactly at hop index 1 (switch s1).
        net = line_network(3, bounds={0: 500}, terminals_per_switch=2)
        cac = NetworkCAC(net)
        cac.setup(ConnectionRequest(
            "blocker", cbr(F(9, 10)), shortest_path(net, "t1.0", "t2.0")))
        return net, cac

    def test_rejection_at_hop_k_releases_upstream_and_stays_consistent(self):
        net, cac = self.saturated_net()
        trace = SignalingTrace()
        victim = ConnectionRequest(
            "victim", cbr(F(1, 4)), shortest_path(net, "t0.0", "t2.1"))
        with pytest.raises(SwitchRejection) as excinfo:
            cac.setup(victim, trace=trace)
        assert excinfo.value.switch == "s1"
        # Upstream hop s0 was reserved and must be rolled back; nothing
        # may linger anywhere, reserved or committed.
        for name in ("s0", "s1", "s2"):
            switch = cac.switch(name)
            assert "victim" not in switch.legs
            assert "victim" not in switch.pending
            assert switch.verify_consistency(), name
        # The unwind was signalled: an ABORT reached the reserved hops.
        aborted = [m.at_node for m in trace.of_type(AbortMessage)]
        assert "s0" in aborted
        rejects = trace.of_type(RejectMessage)
        assert len(rejects) == 1 and rejects[0].at_node == "s1"
        # No COMMIT was ever sent for the rejected walk.
        assert all(m.connection != "victim"
                   for m in trace.of_type(CommitMessage))
        # The blocker is untouched and the network still admits within
        # the remaining capacity.
        assert set(cac.established) == {"blocker"}

    def test_rollback_restores_admittable_capacity(self):
        net, cac = self.saturated_net()
        victim = ConnectionRequest(
            "victim", cbr(F(1, 4)), shortest_path(net, "t0.0", "t2.1"))
        with pytest.raises(SwitchRejection):
            cac.setup(victim)
        # A small connection over the same upstream hop still fits: the
        # failed walk leaked nothing into s0's aggregates.
        small = ConnectionRequest(
            "small", cbr(F(1, 100)), shortest_path(net, "t0.0", "t1.1"))
        assert cac.would_admit(small)
        cac.setup(small)
        for name in ("s0", "s1", "s2"):
            assert cac.switch(name).verify_consistency()


class TestTwoPhaseTrace:
    def test_commit_wave_travels_back_upstream(self, line):
        cac = NetworkCAC(line)
        trace = SignalingTrace()
        cac.setup(request_over(line, "vc0", "t0.0", "t3.0"), trace=trace)
        setups = [m.at_node for m in trace.of_type(SetupMessage)]
        commits = [m.at_node for m in trace.of_type(CommitMessage)]
        assert setups == ["s0", "s1", "s2", "s3"]
        assert commits == ["s3", "s2", "s1", "s0"]
        # Reservations all precede the first commit.
        kinds = [type(m).__name__ for m in trace
                 if isinstance(m, (SetupMessage, CommitMessage))]
        assert kinds == ["SetupMessage"] * 4 + ["CommitMessage"] * 4


class TestRingBroadcast:
    """The RTnet-style pattern: terminals broadcasting around a ring."""

    def test_symmetric_broadcasts_admitted(self):
        net = ring_network(4, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        for index in range(4):
            route = ring_walk(net, f"s{index}", hops=3,
                              access_from=f"t{index}.0")
            cac.setup(ConnectionRequest(
                f"bcast{index}", cbr(F(1, 10)), route))
        assert len(cac.established) == 4

    def test_computed_e2e_bound_grows_with_load(self):
        net = ring_network(4, bounds={0: 64}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        route = ring_walk(net, "s0", hops=3, access_from="t0.0")
        history = []
        for index in range(4):
            cac.setup(ConnectionRequest(
                f"bcast{index}", cbr(F(1, 10)),
                ring_walk(net, f"s{index}", hops=3,
                          access_from=f"t{index}.0")))
            history.append(cac.computed_e2e_bound(route, 0))
        assert history == sorted(history)
        assert history[-1] <= 3 * 64
