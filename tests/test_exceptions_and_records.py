"""Exception attributes and connection-record arithmetic."""

from fractions import Fraction as F

import pytest

from repro.core.traffic import cbr
from repro.exceptions import (
    AdmissionError,
    BitStreamError,
    QosUnsatisfiable,
    ReproError,
    RoutingError,
    SimulationError,
    SwitchRejection,
    TopologyError,
    TrafficModelError,
    UnstableSystemError,
)
from repro.network.connection import (
    ConnectionRequest,
    EstablishedConnection,
    HopCommitment,
)
from repro.network.routing import shortest_path
from repro.network.topology import line_network


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (TrafficModelError, BitStreamError, UnstableSystemError,
                    AdmissionError, SwitchRejection, QosUnsatisfiable,
                    RoutingError, TopologyError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_value_errors_also_catchable_as_valueerror(self):
        for exc in (TrafficModelError, BitStreamError, RoutingError,
                    TopologyError):
            assert issubclass(exc, ValueError)

    def test_switch_rejection_attributes(self):
        err = SwitchRejection("sw1", "out", 2, 99.5, 32)
        assert err.switch == "sw1"
        assert err.out_link == "out"
        assert err.priority == 2
        assert err.computed_bound == 99.5
        assert err.advertised_bound == 32
        assert "sw1" in str(err) and "99.5" in str(err)

    def test_qos_unsatisfiable_attributes(self):
        err = QosUnsatisfiable(100, 150)
        assert err.requested == 100
        assert err.achievable == 150
        assert "100" in str(err)


@pytest.fixture
def route():
    net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
    return shortest_path(net, "t0.0", "t2.0")


class TestConnectionRequest:
    def test_validation(self, route):
        with pytest.raises(TrafficModelError):
            ConnectionRequest("x", cbr(F(1, 4)), route, delay_bound=0)
        with pytest.raises(TrafficModelError):
            ConnectionRequest("x", cbr(F(1, 4)), route, priority=-1)

    def test_defaults(self, route):
        request = ConnectionRequest("x", cbr(F(1, 4)), route)
        assert request.priority == 0
        assert request.delay_bound is None


class TestEstablishedConnection:
    def _established(self, route):
        request = ConnectionRequest("x", cbr(F(1, 4)), route)
        hops = tuple(
            HopCommitment(
                switch=f"s{index}", in_link="a", out_link="b",
                cdv_in=index * 32, advertised_bound=32,
                computed_bound=5 + index,
            )
            for index in range(3)
        )
        return EstablishedConnection(request, hops)

    def test_e2e_bound_sums_advertised(self, route):
        assert self._established(route).e2e_bound == 96

    def test_e2e_computed_sums_computed(self, route):
        assert self._established(route).e2e_computed_bound == 5 + 6 + 7

    def test_name_and_repr(self, route):
        established = self._established(route)
        assert established.name == "x"
        assert "hops=3" in repr(established)
