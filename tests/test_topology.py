"""Topology substrate: nodes, links, builders."""

import pytest

from repro.exceptions import TopologyError
from repro.network.topology import (
    Link,
    Network,
    Node,
    line_network,
    ring_network,
    star_network,
)


class TestNode:
    def test_kinds(self):
        assert Node("a", "switch").is_switch
        assert Node("b", "terminal").is_terminal

    def test_invalid_kind(self):
        with pytest.raises(TopologyError):
            Node("a", "router")


class TestLink:
    def test_default_capacity(self):
        assert Link("l", "a", "b").capacity == 1.0

    def test_invalid_capacity(self):
        with pytest.raises(TopologyError):
            Link("l", "a", "b", capacity=0)


class TestNetworkConstruction:
    def test_add_and_lookup(self):
        net = Network()
        net.add_switch("s0")
        net.add_terminal("t0")
        link = net.add_link("t0", "s0")
        assert link.name == "t0->s0"
        assert net.node("s0").is_switch
        assert net.link("t0->s0").dst == "s0"
        assert "s0" in net and "t0->s0" in net

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_switch("s0")
        with pytest.raises(TopologyError, match="duplicate node"):
            net.add_terminal("s0")

    def test_duplicate_link_rejected(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        net.add_link("a", "b")
        with pytest.raises(TopologyError, match="duplicate link"):
            net.add_link("a", "b")

    def test_unknown_endpoint_rejected(self):
        net = Network()
        net.add_switch("a")
        with pytest.raises(TopologyError, match="unknown node"):
            net.add_link("a", "ghost")

    def test_self_loop_rejected(self):
        net = Network()
        net.add_switch("a")
        with pytest.raises(TopologyError, match="self-loop"):
            net.add_link("a", "a")

    def test_duplex_creates_both_directions(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        forward, backward = net.add_duplex("a", "b")
        assert (forward.src, forward.dst) == ("a", "b")
        assert (backward.src, backward.dst) == ("b", "a")

    def test_unknown_lookups_raise(self):
        net = Network()
        with pytest.raises(TopologyError):
            net.node("x")
        with pytest.raises(TopologyError):
            net.link("x")
        with pytest.raises(TopologyError):
            net.find_link("x", "y")

    def test_in_out_links(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        net.add_switch("c")
        net.add_link("a", "b")
        net.add_link("c", "b")
        net.add_link("b", "a")
        assert {l.name for l in net.in_links("b")} == {"a->b", "c->b"}
        assert {l.name for l in net.out_links("b")} == {"b->a"}

    def test_repr_counts(self):
        net = star_network(3, bounds={0: 32})
        assert "switches=1" in repr(net)
        assert "terminals=3" in repr(net)


class TestBuilders:
    def test_line(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=2)
        assert sum(1 for _ in net.switches()) == 3
        assert sum(1 for _ in net.terminals()) == 6
        # Chain connectivity in both directions.
        net.find_link("s0", "s1")
        net.find_link("s1", "s0")

    def test_line_needs_a_switch(self):
        with pytest.raises(TopologyError):
            line_network(0, bounds={0: 32})

    def test_ring(self):
        net = ring_network(4, bounds={0: 32})
        for index in range(4):
            net.find_link(f"s{index}", f"s{(index + 1) % 4}")

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_network(1, bounds={0: 32})

    def test_ring_terminal_attachment(self):
        net = ring_network(3, bounds={0: 32}, terminals_per_switch=2)
        assert net.node("t2.1").is_terminal
        net.find_link("t2.1", "s2")
        net.find_link("s2", "t2.1")

    def test_star(self):
        net = star_network(4, bounds={0: 16})
        for index in range(4):
            assert net.find_link("hub", f"t{index}").bounds == {0: 16}
            # Access links carry no advertised bounds (no queueing).
            assert net.find_link(f"t{index}", "hub").bounds == {}

    def test_star_needs_terminals(self):
        with pytest.raises(TopologyError):
            star_network(0, bounds={0: 16})

    def test_bounds_propagate(self):
        net = ring_network(3, bounds={0: 32, 1: 64})
        assert net.find_link("s0", "s1").bounds == {0: 32, 1: 64}
