"""End-to-end simulation runs validated against the analytic bounds.

The central claim of the paper's analysis is *safety*: no cell of an
admitted connection ever waits longer than the computed worst-case
bound.  These tests run GCRA-conforming traffic through simulated
networks and compare observed queueing delays with Algorithm 4.1.
"""

from fractions import Fraction as F

import pytest

from repro.core import NetworkCAC, cbr
from repro.core.traffic import VBRParameters
from repro.exceptions import SimulationError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network, star_network
from repro.sim import (
    CbrSource,
    ClumpingJitter,
    GreedyVbrSource,
    RandomVbrSource,
    SimNetwork,
)


class TestWiring:
    def test_duplicate_attach_rejected(self):
        net = star_network(2, bounds={0: 32})
        sim = SimNetwork(net)
        route = shortest_path(net, "t0", "t1")
        sim.attach_route("vc", route)
        with pytest.raises(SimulationError, match="already attached"):
            sim.attach_route("vc", route)

    def test_unattached_ingress_rejected(self):
        sim = SimNetwork(star_network(2, bounds={0: 32}))
        with pytest.raises(SimulationError, match="not attached"):
            sim.ingress("ghost")

    def test_unknown_switch_rejected(self):
        sim = SimNetwork(star_network(2, bounds={0: 32}))
        with pytest.raises(SimulationError):
            sim.switch("ghost")

    def test_queue_capacities_from_bounds(self):
        net = star_network(2, bounds={0: 3})
        sim = SimNetwork(net)
        route = shortest_path(net, "t0", "t1")
        sim.attach_route("vc", route)
        # Flood the hub: 10 cells at once; queue capacity 3 drops rest.
        for _ in range(10):
            sim.ingress("vc")(
                __import__("repro.sim.cell", fromlist=["Cell"]).Cell(
                    "vc", 0, 0.0))
        sim.run(until=50)
        assert sim.total_drops() > 0

    def test_unbounded_queue_override(self):
        net = star_network(2, bounds={0: 3})
        sim = SimNetwork(net, unbounded_queues=True)
        route = shortest_path(net, "t0", "t1")
        sim.attach_route("vc", route)
        for _ in range(10):
            sim.ingress("vc")(
                __import__("repro.sim.cell", fromlist=["Cell"]).Cell(
                    "vc", 0, 0.0))
        sim.run(until=50)
        assert sim.total_drops() == 0


class TestSingleSwitchValidation:
    def test_phase_aligned_cbr_hits_bound_exactly(self):
        """Three colliding CBRs: worst sim wait == analytic bound."""
        net = star_network(4, bounds={0: 32})
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        for index in range(3):
            route = shortest_path(net, f"t{index}", "t3")
            cac.setup(ConnectionRequest(f"vc{index}", cbr(F(1, 4)), route))
            sim.attach_route(f"vc{index}", route)
            CbrSource(sim.engine, f"vc{index}", 0.25,
                      sim.ingress(f"vc{index}"), until=2000)
        sim.run(until=2500)
        bound = cac.switch("hub").computed_bound("hub->t3", 0)
        worst = sim.metrics.worst_e2e_delay()
        assert worst <= bound
        assert worst == pytest.approx(float(bound))   # tight

    def test_phase_shifted_cbr_below_bound(self):
        net = star_network(4, bounds={0: 32})
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        for index in range(3):
            route = shortest_path(net, f"t{index}", "t3")
            cac.setup(ConnectionRequest(f"vc{index}", cbr(F(1, 4)), route))
            sim.attach_route(f"vc{index}", route)
            CbrSource(sim.engine, f"vc{index}", 0.25,
                      sim.ingress(f"vc{index}"),
                      phase=index * 1.4, until=2000)
        sim.run(until=2500)
        bound = cac.switch("hub").computed_bound("hub->t3", 0)
        assert sim.metrics.worst_e2e_delay() <= float(bound)

    def test_greedy_vbr_within_bound(self):
        net = star_network(3, bounds={0: 64})
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=6)
        for index in range(2):
            route = shortest_path(net, f"t{index}", "t2")
            cac.setup(ConnectionRequest(f"vbr{index}", params, route))
            sim.attach_route(f"vbr{index}", route)
            GreedyVbrSource(sim.engine, f"vbr{index}", params, 80,
                            sim.ingress(f"vbr{index}"))
        sim.run(until=2000)
        bound = cac.switch("hub").computed_bound("hub->t2", 0)
        assert sim.metrics.worst_e2e_delay() <= float(bound)
        assert sim.metrics.total_delivered() == 160

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_vbr_within_bound(self, seed):
        net = star_network(4, bounds={0: 128})
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 12), mbs=5)
        for index in range(3):
            route = shortest_path(net, f"t{index}", "t3")
            cac.setup(ConnectionRequest(f"vbr{index}", params, route))
            sim.attach_route(f"vbr{index}", route)
            RandomVbrSource(sim.engine, f"vbr{index}", params,
                            sim.ingress(f"vbr{index}"),
                            until=4000, seed=seed * 17 + index)
        sim.run(until=5000)
        bound = cac.switch("hub").computed_bound("hub->t3", 0)
        assert sim.metrics.worst_e2e_delay() <= float(bound)


class TestMultiHopValidation:
    def test_line_network_e2e_within_computed_bounds(self):
        net = line_network(3, bounds={0: 64}, terminals_per_switch=2)
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        flows = [
            ("a", "t0.0", "t2.0", F(1, 5)),
            ("b", "t0.1", "t2.1", F(1, 5)),
            ("c", "t1.0", "t2.0", F(1, 5)),
        ]
        for name, src, dst, rate in flows:
            route = shortest_path(net, src, dst)
            cac.setup(ConnectionRequest(name, cbr(rate), route))
            sim.attach_route(name, route)
            CbrSource(sim.engine, name, float(rate),
                      sim.ingress(name), until=3000)
        sim.run(until=3500)
        for name, src, dst, _rate in flows:
            route = shortest_path(net, src, dst)
            bound = cac.computed_e2e_bound(route, 0)
            assert sim.metrics.stats(name).max_e2e_delay <= float(bound)

    def test_no_cells_lost_when_admitted(self):
        """Admitted traffic with contract-true sources is never dropped."""
        net = line_network(3, bounds={0: 32}, terminals_per_switch=2)
        cac = NetworkCAC(net)
        sim = SimNetwork(net)
        for index, (src, dst) in enumerate(
                [("t0.0", "t2.0"), ("t0.1", "t2.1"), ("t1.0", "t2.0")]):
            route = shortest_path(net, src, dst)
            cac.setup(ConnectionRequest(f"vc{index}", cbr(F(1, 8)), route))
            sim.attach_route(f"vc{index}", route)
            CbrSource(sim.engine, f"vc{index}", 0.125,
                      sim.ingress(f"vc{index}"), until=2000)
        sim.run(until=2600)
        assert sim.total_drops() == 0


class TestPrioritySimulation:
    def test_low_priority_waits_longer(self):
        net = star_network(4, bounds={0: 64, 1: 128})
        sim = SimNetwork(net)
        hi_route = shortest_path(net, "t0", "t3")
        lo_route = shortest_path(net, "t1", "t3")
        sim.attach_route("hi", hi_route, priority=0)
        sim.attach_route("lo", lo_route, priority=1)
        CbrSource(sim.engine, "hi", 0.5, sim.ingress("hi"), until=1500)
        CbrSource(sim.engine, "lo", 0.5, sim.ingress("lo"), until=1500)
        sim.run(until=2000)
        hi = sim.metrics.stats("hi")
        lo = sim.metrics.stats("lo")
        assert hi.max_e2e_delay <= lo.max_e2e_delay
        assert lo.max_e2e_delay > 0


class TestJitterMotivation:
    @staticmethod
    def _converging_topology():
        """Two jittered upstream switches converging on one output port."""
        from repro.network.topology import Network
        net = Network()
        for name in ("s0", "s1", "s2"):
            net.add_switch(name)
        net.add_terminal("sink")
        net.add_link("s0", "s2", bounds={0: 32})
        net.add_link("s1", "s2", bounds={0: 32})
        net.add_link("s2", "sink", bounds={0: 32})
        for side in range(2):
            for slot in range(4):
                term = f"t{side}.{slot}"
                net.add_terminal(term)
                net.add_link(term, f"s{side}")
                net.add_link(f"s{side}", term, bounds={0: 32})
        return net

    def test_clumping_overflows_peak_allocated_queue(self):
        """Section 1: peak allocation + jitter = loss; CAC refuses the set.

        Eight CBR connections of rate 1/8 exactly fill the converging
        link -- peak bandwidth allocation admits them.  Jitter stages
        emulating 128 cell times of upstream CDV clump each window into
        full-rate bursts on *both* incoming links simultaneously; the
        32-cell output queue overflows and drops hard real-time cells.
        The bit-stream CAC, fed the same post-jitter streams, computes a
        delay bound beyond the 32-cell guarantee and would refuse.
        """
        net = self._converging_topology()
        sim = SimNetwork(net)
        for side in range(2):
            for slot in range(4):
                name = f"vc{side}.{slot}"
                route = shortest_path(net, f"t{side}.{slot}", "sink")
                sim.attach_route(name, route)
                CbrSource(sim.engine, name, 0.125, sim.ingress(name),
                          phase=slot * 1.0, until=4000)
        for side in range(2):
            sim.add_jitter(
                f"s{side}->s2",
                lambda engine, downstream: ClumpingJitter(
                    engine, 128.0, downstream))
        sim.run(until=4500)
        assert sim.total_drops() > 0

        # The analysis sees it coming: each in-link's clumped aggregate,
        # filtered by its link, still collides with the other in-link's
        # burst and the bound exceeds the 32-cell queue guarantee.
        from repro.core import aggregate, delay_bound
        per_side = aggregate([
            cbr(F(1, 8)).worst_case_stream().delayed(128) for _ in range(4)
        ]).filtered()
        assert delay_bound(per_side + per_side) > 32
