"""The acceptance-criteria property: faults never corrupt CAC state.

For every seeded random schedule (drops, delays, duplicates, switch
crashes, link failures) the post-fault network state must equal a
fault-free replay of only the committed connections, every switch's
incremental caches must verify against a from-scratch rebuild, and a
crashed switch restored via ``recover()`` must be identical to its
pre-crash committed state.

The schedule count scales with the ``FAULT_SCHEDULES`` environment
variable (the CI stress job sets 500); the local default keeps the
suite quick.
"""

import os
from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import ring_walk, shortest_path
from repro.network.topology import line_network, ring_network
from repro.robustness.harness import (
    committed_states_equal,
    random_fault_plan,
    run_schedule,
)

SCHEDULES = int(os.environ.get("FAULT_SCHEDULES", "60"))
#: The ring corpus is smaller: same property, different topology shape.
RING_SCHEDULES = max(10, SCHEDULES // 4)


def line_factory():
    return line_network(4, bounds={0: 64}, terminals_per_switch=2)


def line_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14), F(1, 11)]
    spans = [("t0.0", "t3.0"), ("t0.1", "t2.0"), ("t1.0", "t3.1"),
             ("t0.0", "t1.1"), ("t2.1", "t3.0")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


def ring_factory():
    return ring_network(4, bounds={0: 64}, terminals_per_switch=1)


def ring_requests(network):
    return [
        ConnectionRequest(
            f"bcast{index}", cbr(F(1, 12)),
            ring_walk(network, f"s{index}", hops=3,
                      access_from=f"t{index}.0"))
        for index in range(4)
    ]


@pytest.mark.parametrize("seed", range(SCHEDULES))
def test_line_schedule_reaches_replay_equivalent_state(seed):
    report = run_schedule(seed, line_factory, line_requests)
    assert report.consistent, (
        f"seed {seed}: inconsistent caches after {report.plan.faults}"
    )
    assert report.equivalent, (
        f"seed {seed}: state diverged from clean replay of "
        f"{report.established} under {report.plan.faults}; "
        f"errors={report.errors}"
    )


@pytest.mark.parametrize("seed", range(10_000, 10_000 + RING_SCHEDULES))
def test_ring_schedule_reaches_replay_equivalent_state(seed):
    report = run_schedule(seed, ring_factory, ring_requests)
    assert report.consistent
    assert report.equivalent, (
        f"seed {seed}: {report.plan.faults} errors={report.errors}"
    )


def test_corpus_is_not_vacuous():
    """The schedule corpus actually injects faults and refuses setups."""
    reports = [run_schedule(seed, line_factory, line_requests)
               for seed in range(min(SCHEDULES, 30))]
    assert any(len(report.plan) > 0 for report in reports)
    assert any(report.errors for report in reports)
    assert any(report.recovered for report in reports)
    assert any(report.established for report in reports)
    # And some walks survive faults: established despite injections.
    assert any(report.established and len(report.plan) > 0
               for report in reports)


def test_random_plans_are_seed_deterministic():
    import random

    first = random_fault_plan(random.Random(42), 4, ["a", "b"])
    second = random_fault_plan(random.Random(42), 4, ["a", "b"])
    assert first.faults == second.faults


def test_committed_states_equal_detects_divergence():
    network = line_factory()
    cac = NetworkCAC(network)
    requests = line_requests(network)
    cac.setup(requests[0])
    clean = NetworkCAC(line_factory())
    assert not committed_states_equal(cac, clean)
    clean.setup(requests[0])
    assert committed_states_equal(cac, clean)
