"""Property test: the two evaluation paths agree on random workloads.

The figure sweeps trust the closed-form :class:`RingAnalysis`; the
ground truth is the incremental :class:`NetworkCAC` walk.  Deterministic
spot checks live in ``test_rtnet_evaluation.py``; here hypothesis draws
arbitrary small ring workloads (mixed CBR/VBR, arbitrary placement) and
the per-link bounds must match exactly.
"""

from fractions import Fraction as F

from hypothesis import given, settings, strategies as st

from repro.core.traffic import VBRParameters
from repro.exceptions import AdmissionError
from repro.rtnet import RingAnalysis, establish_workload, ring_node


@st.composite
def ring_workloads(draw):
    ring_nodes = draw(st.integers(min_value=3, max_value=5))
    terminals = draw(st.integers(min_value=1, max_value=2))
    count = draw(st.integers(min_value=1,
                             max_value=ring_nodes * terminals))
    placements = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=ring_nodes - 1),
                  st.integers(min_value=0, max_value=terminals - 1)),
        min_size=count, max_size=count, unique=True))
    workload = {}
    for node, slot in placements:
        pcr = F(1, draw(st.integers(min_value=4, max_value=8)))
        scr = pcr / draw(st.integers(min_value=4, max_value=10))
        mbs = draw(st.integers(min_value=1, max_value=4))
        workload[(node, slot)] = (
            VBRParameters(pcr=pcr, scr=scr, mbs=mbs), 0)
    return workload, ring_nodes, terminals


@given(ring_workloads())
@settings(max_examples=15, deadline=None)
def test_direct_equals_procedural(case):
    workload, ring_nodes, terminals = case
    analysis = RingAnalysis(workload, ring_nodes, node_bound=10_000)
    try:
        cac, _established = establish_workload(
            workload, ring_nodes, terminals, node_bound=10_000)
    except AdmissionError:
        # Only possible if some bound is infinite; the direct path must
        # agree that the workload is infeasible at *some* link.
        assert any(
            analysis.link_bound(link, 0) == float("inf")
            for link in range(ring_nodes)
        ) or sum(float(p.scr) for p, _q in workload.values()) >= 1
        return
    for link in range(ring_nodes):
        name = f"ring{link}->ring{(link + 1) % ring_nodes}"
        direct = float(analysis.link_bound(link, 0))
        procedural = float(
            cac.switch(ring_node(link)).computed_bound(name, 0))
        assert abs(direct - procedural) < 1e-9
