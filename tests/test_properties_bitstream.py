"""Property-based tests (hypothesis) for the bit-stream algebra.

All strategies generate exact :class:`fractions.Fraction` streams so the
algebraic laws can be asserted with ``==`` -- no tolerance games.
"""

import math
from fractions import Fraction as F

from hypothesis import given, settings, strategies as st

from repro.core.bitstream import BitStream, aggregate
from repro.core.delay_bound import delay_bound
from repro.core.traffic import VBRParameters


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

fractions_01 = st.fractions(min_value=F(1, 20), max_value=1,
                            max_denominator=20)
positive_gaps = st.fractions(min_value=F(1, 4), max_value=20,
                             max_denominator=8)


@st.composite
def monotone_streams(draw, max_segments=4, max_head_rate=1):
    """A canonical non-increasing stream with Fraction arithmetic."""
    count = draw(st.integers(min_value=1, max_value=max_segments))
    raw = sorted(
        draw(st.lists(fractions_01, min_size=count, max_size=count)),
        reverse=True,
    )
    rates = [rate * max_head_rate for rate in raw]
    gaps = draw(st.lists(positive_gaps, min_size=count - 1,
                         max_size=count - 1))
    times = [F(0)]
    for gap in gaps:
        times.append(times[-1] + gap)
    return BitStream(rates, times)


@st.composite
def sub_unit_streams(draw):
    """A stream whose peak rate stays at or below the link rate."""
    return draw(monotone_streams(max_head_rate=1))


@st.composite
def vbr_parameters(draw):
    pcr = draw(st.fractions(min_value=F(1, 16), max_value=1,
                            max_denominator=16))
    scr_scale = draw(st.fractions(min_value=F(1, 8), max_value=1,
                                  max_denominator=8))
    mbs = draw(st.integers(min_value=1, max_value=12))
    return VBRParameters(pcr=pcr, scr=pcr * scr_scale, mbs=mbs)


# ----------------------------------------------------------------------
# Canonical-form invariants
# ----------------------------------------------------------------------

@given(monotone_streams())
def test_canonical_form(s):
    assert s.times[0] == 0
    assert all(a < b for a, b in zip(s.times, s.times[1:]))
    assert all(a > b for a, b in zip(s.rates, s.rates[1:]))
    assert all(rate >= 0 for rate in s.rates)


@given(monotone_streams())
def test_bits_is_monotone_and_concave(s):
    probes = [F(i, 2) for i in range(0, 30)]
    values = [s.bits(t) for t in probes]
    assert all(b >= a for a, b in zip(values, values[1:]))
    increments = [b - a for a, b in zip(values, values[1:])]
    assert all(later <= earlier + 0 for earlier, later
               in zip(increments, increments[1:]))


@given(monotone_streams(), st.fractions(min_value=0, max_value=50,
                                        max_denominator=8))
def test_time_of_bits_round_trip(s, t):
    amount = s.bits(t)
    earliest = s.time_of_bits(amount)
    assert earliest <= t
    assert s.bits(earliest) == amount


# ----------------------------------------------------------------------
# Multiplex / demultiplex laws (Algorithms 3.2 / 3.3)
# ----------------------------------------------------------------------

@given(monotone_streams(), monotone_streams())
def test_multiplex_commutative(a, b):
    assert a + b == b + a


@given(monotone_streams(), monotone_streams(), monotone_streams())
def test_multiplex_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(monotone_streams(), monotone_streams())
def test_demultiplex_inverts_multiplex(a, b):
    assert (a + b) - b == a


@given(st.lists(monotone_streams(), max_size=5))
def test_aggregate_matches_fold(streams):
    folded = BitStream.zero()
    for s in streams:
        folded = folded + s
    assert aggregate(streams) == folded


@given(monotone_streams(), monotone_streams(),
       st.fractions(min_value=0, max_value=40, max_denominator=4))
def test_multiplex_adds_bits_pointwise(a, b, t):
    assert (a + b).bits(t) == a.bits(t) + b.bits(t)


@given(monotone_streams(), st.integers(min_value=0, max_value=6))
def test_scaled_matches_repeated_sum(s, n):
    folded = BitStream.zero()
    for _ in range(n):
        folded = folded + s
    assert s.scaled(n) == folded


# ----------------------------------------------------------------------
# Filtering laws (Algorithm 3.4)
# ----------------------------------------------------------------------

@given(monotone_streams(max_head_rate=4))
def test_filter_caps_rate_and_conserves_order(s):
    filtered = s.filtered()
    assert filtered.peak_rate <= 1
    probes = [F(i, 2) for i in range(0, 40)]
    for t in probes:
        assert filtered.bits(t) <= s.bits(t)
        assert filtered.bits(t) <= t
        # The exact envelope: output = min(t, A(t)).
        assert filtered.bits(t) == min(t, s.bits(t))


@given(monotone_streams(max_head_rate=4))
def test_filter_idempotent(s):
    once = s.filtered()
    assert once.filtered() == once


@given(monotone_streams(max_head_rate=4))
def test_filter_conserves_bits_eventually(s):
    filtered = s.filtered()
    if s.long_run_rate >= 1:
        assert filtered == BitStream.constant(1)
        return
    drain = s.busy_period()
    for t in (drain, drain + 5, drain + 50):
        assert filtered.bits(t) == s.bits(t)


# ----------------------------------------------------------------------
# Delay laws (Algorithm 3.1)
# ----------------------------------------------------------------------

@given(sub_unit_streams(),
       st.fractions(min_value=0, max_value=30, max_denominator=4))
def test_delay_is_exact_envelope(s, cdv):
    delayed = s.delayed(cdv)
    probes = [F(i, 2) for i in range(0, 60)]
    for t in probes:
        assert delayed.bits(t) == min(t, s.bits(t + cdv))


@given(sub_unit_streams(),
       st.fractions(min_value=0, max_value=20, max_denominator=4))
def test_delay_dominates_original(s, cdv):
    assert s.delayed(cdv).dominates(s)


@given(sub_unit_streams(),
       st.fractions(min_value=0, max_value=10, max_denominator=4),
       st.fractions(min_value=0, max_value=10, max_denominator=4))
def test_delay_monotone_in_cdv(s, cdv_a, cdv_b):
    lo, hi = sorted((cdv_a, cdv_b))
    assert s.delayed(hi).dominates(s.delayed(lo))


@given(sub_unit_streams())
def test_delay_zero_is_identity(s):
    assert s.delayed(0) == s


# ----------------------------------------------------------------------
# Delay-bound properties (Algorithm 4.1)
# ----------------------------------------------------------------------

@given(monotone_streams(max_head_rate=3))
def test_delay_bound_no_interference_is_backlog(s):
    assert delay_bound(s) == s.backlog_bound()


@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_delay_bound_monotone_in_traffic(base, extra):
    # Adding traffic can never shrink the worst-case delay.
    small = delay_bound(base)
    big = delay_bound(base + extra)
    assert big >= small


@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_delay_bound_monotone_in_interference(arrivals, interference):
    alone = delay_bound(arrivals)
    with_higher = delay_bound(arrivals, interference.filtered())
    assert with_higher == math.inf or with_higher >= alone


@given(monotone_streams(max_head_rate=2))
def test_delay_bound_non_negative(s):
    assert delay_bound(s) >= 0


@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_filtering_interferer_never_hurts(arrivals, interference):
    """The link-filtering effect: a smoothed interferer delays no more.

    This is the paper's justification for tracking filtered streams --
    bounds computed from filtered interference are tighter (or equal),
    never optimistic, because filtering only *delays* interfering bits.
    """
    rough = interference.filtered()            # minimally filtered
    smooth = rough.filtered(F(1, 2)).filtered()  # strictly smoother
    bound_rough = delay_bound(arrivals, rough)
    bound_smooth = delay_bound(arrivals, smooth)
    if bound_rough == math.inf:
        return
    assert bound_smooth <= bound_rough or bound_smooth == math.inf


# ----------------------------------------------------------------------
# Algorithm 2.1 envelope properties
# ----------------------------------------------------------------------

@given(vbr_parameters())
def test_envelope_structure(params):
    s = params.worst_case_stream()
    assert s.peak_rate == 1
    assert s.long_run_rate == params.scr
    assert s.bits(1 + params.burst_duration) == params.mbs


@given(vbr_parameters(),
       st.fractions(min_value=0, max_value=20, max_denominator=4))
def test_envelope_delay_roundtrip_conserves_tail(params, cdv):
    s = params.worst_case_stream()
    delayed = s.delayed(cdv)
    assert delayed.long_run_rate == params.scr
