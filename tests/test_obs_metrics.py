"""The metrics registry: instruments, labels, null objects, handles."""

import pytest

from repro.obs import metrics as om
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    METRIC_HELP,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_same_name_and_labels_share_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", cache="sif", switch="s0")
        b = registry.counter("hits", switch="s0", cache="sif")
        assert a is b                      # label order is canonicalised
        a.inc()
        assert registry.value("hits", cache="sif", switch="s0") == 1

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", switch="s0").inc()
        registry.counter("hits", switch="s1").inc(2)
        assert registry.value("hits", switch="s0") == 1
        assert registry.value("hits", switch="s1") == 2
        assert registry.total("hits") == 3


class TestGauge:
    def test_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        assert gauge.value == 5.0
        gauge.set(2.0)
        assert gauge.value == 2.0
        gauge.set_max(1.0)
        assert gauge.value == 2.0          # smaller values are ignored
        gauge.set_max(9.0)
        assert gauge.value == 9.0


class TestHistogram:
    def test_bucketing_is_inclusive_upper_edge(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(107.0)
        assert hist.cumulative() == [
            (1.0, 2),                       # 0.5 and the exact edge 1.0
            (2.0, 3), (4.0, 4), (float("inf"), 5),
        ]

    def test_default_buckets_are_latency(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.bounds == LATENCY_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increase"):
            MetricsRegistry().histogram("lat", buckets=(2.0, 1.0))


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("thing")

    def test_families_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("b", x="2")
        registry.counter("b", x="1")
        registry.gauge("a")
        families = registry.families()
        assert [name for name, _, _ in families] == ["a", "b"]
        _, _, instruments = families[1]
        assert [i.labels for i in instruments] == [
            (("x", "1"),), (("x", "2"),)]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"k=v": 2}
        assert snap["h"] == {"": {"count": 1, "sum": 0.5}}

    def test_value_of_untouched_series_is_zero(self):
        assert MetricsRegistry().value("nope", x="y") == 0


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        instrument = null.counter("anything", label="x")
        instrument.inc()
        instrument.set(3)
        instrument.set_max(9)
        instrument.observe(1.0)
        assert null.samples() == []
        assert null.snapshot() == {}
        assert len(null) == 0
        assert null.total("anything") == 0.0

    def test_all_instruments_are_the_same_object(self):
        null = NullRegistry()
        assert null.counter("a") is null.gauge("b")
        assert null.gauge("b") is null.histogram("c")


class TestGlobalRegistry:
    def test_set_registry_bumps_generation_and_returns_previous(self):
        before = om._generation
        registry = MetricsRegistry()
        previous = om.set_registry(registry)
        try:
            assert om._generation == before + 1
            assert om.get_registry() is registry
        finally:
            assert om.set_registry(previous) is registry
        assert om._generation == before + 2

    def test_default_is_the_null_registry(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)


class TestCatalogue:
    def test_every_help_entry_names_a_valid_metric(self):
        for name in METRIC_HELP:
            assert name.replace("_", "").isalnum()

    def test_core_metric_families_are_catalogued(self):
        for name in ("cac_checks_total", "cac_cache_hits_total",
                     "kernel_path_total", "network_setups_total",
                     "signaling_hop_rtt", "journal_ops_total",
                     "sim_cells_delivered_total"):
            assert name in METRIC_HELP
