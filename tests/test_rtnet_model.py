"""RTnet constants, Table 1 classes, topology and workload generators."""

import pytest

from repro.exceptions import TopologyError, TrafficModelError
from repro.rtnet import (
    CYCLIC_QUEUE_CELLS,
    HIGH_SPEED,
    HIGH_SPEED_DELAY_CELLS,
    LOW_SPEED,
    MEDIUM_SPEED,
    NODE_DELAY_MICROSECONDS,
    TABLE_1,
    asymmetric_workload,
    broadcast_route,
    build_rtnet,
    required_bandwidth_mbps,
    ring_node,
    symmetric_workload,
    terminal_name,
)


class TestConstants:
    def test_node_delay_is_about_87_microseconds(self):
        # Paper: "a 32-cell FIFO queue represents a maximum of
        # 32 x 2.7 = 87 microseconds of queueing delay at each node".
        assert NODE_DELAY_MICROSECONDS == pytest.approx(87, abs=1)

    def test_high_speed_deadline_is_about_370_cells(self):
        assert HIGH_SPEED_DELAY_CELLS == pytest.approx(370, abs=5)

    def test_queue_size(self):
        assert CYCLIC_QUEUE_CELLS == 32


class TestTable1:
    """The cyclic transmission classes and their bandwidth arithmetic."""

    @pytest.mark.parametrize("cls, expected", [
        (HIGH_SPEED, 32.0),
        (MEDIUM_SPEED, 17.5),
        (LOW_SPEED, 6.8),
    ])
    def test_bandwidth_column(self, cls, expected):
        assert required_bandwidth_mbps(cls) == pytest.approx(
            expected, rel=0.15)

    def test_periods_equal_delays(self):
        # In Table 1 every class's deadline equals its period.
        for cls in TABLE_1.values():
            assert cls.period_ms == cls.delay_ms

    def test_normalized_rates_fit_one_link(self):
        total = sum(cls.normalized_rate() for cls in TABLE_1.values())
        assert 0 < total < 1

    def test_delay_cell_times(self):
        assert HIGH_SPEED.delay_cell_times() == pytest.approx(367, abs=2)
        assert MEDIUM_SPEED.delay_cell_times() == pytest.approx(
            30 * 367, rel=0.01)

    def test_table_keys(self):
        assert set(TABLE_1) == {"high speed", "medium speed", "low speed"}


class TestTopology:
    def test_reference_configuration(self):
        net = build_rtnet(16, 16)
        assert sum(1 for _ in net.switches()) == 16
        assert sum(1 for _ in net.terminals()) == 256

    def test_ring_links_have_cyclic_bounds(self):
        net = build_rtnet(4, 1)
        link = net.find_link(ring_node(0), ring_node(1))
        assert link.bounds == {0: 32}

    def test_access_links_have_no_bounds(self):
        net = build_rtnet(4, 1)
        assert net.find_link(terminal_name(2, 0), ring_node(2)).bounds == {}

    def test_custom_bounds(self):
        net = build_rtnet(4, 1, bounds={0: 16, 1: 64})
        link = net.find_link(ring_node(1), ring_node(2))
        assert link.bounds == {0: 16, 1: 64}

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            build_rtnet(1, 1)
        with pytest.raises(TopologyError):
            build_rtnet(4, 0)

    def test_broadcast_route_circles_the_ring(self):
        net = build_rtnet(6, 2)
        route = broadcast_route(net, 2, 1)
        assert route.source == terminal_name(2, 1)
        assert len(route) == 6            # access link + 5 ring links
        assert len(route.hops()) == 5
        assert route.destination == ring_node(1)   # one short of origin


class TestSymmetricWorkload:
    def test_equal_shares(self):
        w = symmetric_workload(0.8, 4, 2)
        assert len(w) == 8
        rates = {params.pcr for params, _p in w.values()}
        assert rates == {0.1}

    def test_total_load_preserved(self):
        w = symmetric_workload(0.64, 4, 4)
        total = sum(params.scr for params, _p in w.values())
        assert total == pytest.approx(0.64)

    def test_priority_assignment(self):
        w = symmetric_workload(0.5, 2, 1, priority=3)
        assert all(p == 3 for _t, p in w.values())

    def test_load_validation(self):
        with pytest.raises(TrafficModelError):
            symmetric_workload(0.0, 4, 2)
        with pytest.raises(TrafficModelError):
            symmetric_workload(1.5, 4, 2)


class TestAsymmetricWorkload:
    def test_hot_terminal_share(self):
        w = asymmetric_workload(0.5, 0.4, 4, 2)
        hot, _p = w[(0, 0)]
        assert hot.pcr == pytest.approx(0.2)
        others = [params.pcr for key, (params, _q) in w.items()
                  if key != (0, 0)]
        assert len(others) == 7
        assert all(rate == pytest.approx(0.3 / 7) for rate in others)

    def test_total_load_preserved(self):
        w = asymmetric_workload(0.6, 0.25, 4, 2)
        total = sum(params.scr for params, _p in w.values())
        assert total == pytest.approx(0.6)

    def test_extreme_fractions(self):
        all_hot = asymmetric_workload(0.5, 1.0, 4, 2)
        assert list(all_hot) == [(0, 0)]
        no_hot = asymmetric_workload(0.5, 0.0, 4, 2)
        assert (0, 0) not in no_hot
        assert len(no_hot) == 7

    def test_hot_placement(self):
        w = asymmetric_workload(0.5, 0.5, 4, 2, hot_node=3, hot_slot=1)
        hot, _p = w[(3, 1)]
        assert hot.pcr == pytest.approx(0.25)

    def test_per_priority_assignment(self):
        w = asymmetric_workload(0.5, 0.5, 4, 2,
                                hot_priority=1, other_priority=0)
        assert w[(0, 0)][1] == 1
        assert w[(1, 0)][1] == 0

    def test_infeasible_hot_rate_rejected(self):
        # p=1 with load 1 is fine (rate 1); but fraction validation holds.
        with pytest.raises(TrafficModelError):
            asymmetric_workload(0.5, 1.5, 4, 2)
        with pytest.raises(TrafficModelError):
            asymmetric_workload(0.0, 0.5, 4, 2)
