"""ASCII topology / route rendering."""

from fractions import Fraction as F

from repro.core import NetworkCAC, cbr
from repro.network import ConnectionRequest, shortest_path
from repro.network.topology import line_network, star_network
from repro.network.visualize import describe_network, describe_route


class TestDescribeNetwork:
    def test_lists_switches_and_links(self):
        out = describe_network(star_network(2, bounds={0: 32}))
        assert "1 switches, 2 terminals" in out
        assert "switch hub" in out
        assert "hub->t0" in out
        assert "p0<=32" in out

    def test_access_links_unannotated(self):
        out = describe_network(star_network(1, bounds={0: 32}))
        # The terminal's uplink has no bounds, so no bracket after it.
        line = next(l for l in out.splitlines() if "-> t0 " in l)
        assert "[" in line         # the delivery link carries bounds
        assert "terminals: t0" in out

    def test_with_cac_shows_load(self):
        net = star_network(3, bounds={0: 32})
        cac = NetworkCAC(net)
        cac.setup(ConnectionRequest(
            "vc", cbr(F(1, 4)), shortest_path(net, "t0", "t2")))
        out = describe_network(net, cac)
        assert "load=25%" in out
        assert "now: p0=" in out


class TestDescribeRoute:
    def test_bare_route(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        route = shortest_path(net, "t0.0", "t2.0")
        out = describe_route(route)
        assert "t0.0 -> t2.0" in out
        assert "hop 0: s0" in out
        assert "hop 2: s2" in out

    def test_with_cac_shows_bounds(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        route = shortest_path(net, "t0.0", "t2.0")
        cac.setup(ConnectionRequest("vc", cbr(F(1, 8)), route))
        out = describe_route(route, cac)
        assert "guaranteed 96 cell times" in out
        assert "bound 0.0/32" in out
