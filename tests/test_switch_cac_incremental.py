"""The incremental SwitchCAC caches agree with a from-scratch rebuild.

The admission acceptance criterion for the cache layer: after any
admit/release/admit sequence, every ``CheckResult`` produced by the
incrementally-maintained switch must be *identical* (exact ``==`` on
Fraction arithmetic) to the one produced by a fresh switch that
re-admits the same legs from nothing.  These tests drive both switches
through mixed-priority, multi-input scenarios and compare after every
transition, and also assert :meth:`SwitchCAC.verify_consistency`, which
cross-checks each populated derived cache (``Sif``, higher-priority
aggregates, ``Soa`` sums) against the per-leg ground truth.
"""

import random
from fractions import Fraction as F

import pytest

from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import VBRParameters, cbr

BOUNDS = {0: 10_000, 1: 10_000, 2: 10_000}

STREAMS = [
    cbr(F(1, 16)).worst_case_stream(),
    VBRParameters(pcr=F(1, 4), scr=F(1, 50), mbs=3).worst_case_stream(),
    VBRParameters(pcr=F(1, 2), scr=F(1, 40), mbs=5).worst_case_stream(),
    VBRParameters(pcr=F(1, 8), scr=F(1, 100), mbs=2)
    .worst_case_stream().delayed(F(7, 2)),
]


def make_switch():
    switch = SwitchCAC("sw-incremental")
    switch.configure_link("out", BOUNDS)
    switch.configure_link("other", {0: 10_000})
    return switch


def rebuilt_copy(switch):
    """A fresh switch holding the same legs, built from nothing."""
    fresh = SwitchCAC(switch.name, filter_per_input=switch.filter_per_input)
    for out_link in switch.out_links():
        fresh.configure_link(out_link, {
            priority: switch.advertised_bound(out_link, priority)
            for priority in switch.priorities(out_link)
        })
    for leg in switch.legs.values():
        fresh.admit(leg.connection_id, leg.in_link, leg.out_link,
                    leg.priority, leg.stream)
    return fresh


def assert_matches_rebuild(switch, probes):
    """Incremental and rebuilt switches must give identical answers."""
    fresh = rebuilt_copy(switch)
    assert switch.verify_consistency()
    for in_link, out_link, priority, stream in probes:
        incremental = switch.check(in_link, out_link, priority, stream)
        scratch = fresh.check(in_link, out_link, priority, stream)
        assert incremental.computed_bounds == scratch.computed_bounds
        assert incremental.violations == scratch.violations
    for out_link in switch.out_links():
        for priority in switch.priorities(out_link):
            assert (switch.soa(out_link, priority)
                    == fresh.soa(out_link, priority))
            assert (switch.sof_higher(out_link, priority)
                    == fresh.sof_higher(out_link, priority))
            assert (switch.computed_bound(out_link, priority)
                    == fresh.computed_bound(out_link, priority))
            assert (switch.buffer_requirement(out_link, priority)
                    == fresh.buffer_requirement(out_link, priority))


PROBES = [
    ("in0", "out", 0, STREAMS[1]),
    ("in0", "out", 2, STREAMS[0]),
    ("in1", "out", 1, STREAMS[2]),
    ("in2", "out", 1, STREAMS[3]),
    ("in1", "other", 0, STREAMS[0]),
]


def test_admit_release_admit_matches_rebuild():
    """The acceptance-criterion sequence, checked at every step."""
    switch = make_switch()
    switch.admit("vc0", "in0", "out", 0, STREAMS[0])
    assert_matches_rebuild(switch, PROBES)
    switch.admit("vc1", "in1", "out", 1, STREAMS[1])
    assert_matches_rebuild(switch, PROBES)
    switch.release("vc0")
    assert_matches_rebuild(switch, PROBES)
    switch.admit("vc2", "in0", "out", 2, STREAMS[2])
    assert_matches_rebuild(switch, PROBES)


def test_mixed_priority_multi_input_sequence():
    switch = make_switch()
    plan = [
        ("vc0", "in0", "out", 1, STREAMS[0]),
        ("vc1", "in0", "out", 0, STREAMS[1]),   # higher prio, same input
        ("vc2", "in1", "out", 2, STREAMS[2]),   # lower prio, other input
        ("vc3", "in1", "other", 0, STREAMS[3]),  # unrelated port
        ("vc4", "in2", "out", 1, STREAMS[1]),
    ]
    for connection_id, in_link, out_link, priority, stream in plan:
        switch.admit(connection_id, in_link, out_link, priority, stream)
        assert_matches_rebuild(switch, PROBES)
    for connection_id in ("vc1", "vc3", "vc0"):
        switch.release(connection_id)
        assert_matches_rebuild(switch, PROBES)


def test_randomized_interleaving_matches_rebuild():
    rng = random.Random(1997)
    switch = make_switch()
    admitted = []
    for step in range(40):
        if admitted and rng.random() < 0.4:
            switch.release(admitted.pop(rng.randrange(len(admitted))))
        else:
            connection_id = f"vc{step}"
            switch.admit(
                connection_id,
                rng.choice(["in0", "in1", "in2"]),
                "out",
                rng.choice([0, 1, 2]),
                rng.choice(STREAMS),
            )
            admitted.append(connection_id)
        assert switch.verify_consistency()
    assert_matches_rebuild(switch, PROBES)


def test_rejection_leaves_caches_intact():
    switch = SwitchCAC("sw-tight")
    switch.configure_link("out", {0: 1, 1: 1})
    switch.admit("vc0", "in0", "out", 0, cbr(F(1, 4)).worst_case_stream())
    before = switch.computed_bound("out", 0)
    heavy = VBRParameters(pcr=1, scr=F(1, 2), mbs=64).worst_case_stream()
    from repro.exceptions import SwitchRejection
    with pytest.raises(SwitchRejection):
        switch.admit("vc1", "in1", "out", 0, heavy)
    assert switch.verify_consistency()
    assert switch.computed_bound("out", 0) == before
    assert_matches_rebuild(
        switch, [("in0", "out", 1, cbr(F(1, 8)).worst_case_stream())],
    )


def test_release_to_empty_clears_state():
    switch = make_switch()
    switch.admit("vc0", "in0", "out", 1, STREAMS[1])
    switch.admit("vc1", "in1", "out", 0, STREAMS[0])
    switch.release("vc0")
    switch.release("vc1")
    assert switch.verify_consistency()
    for priority in switch.priorities("out"):
        assert switch.soa("out", priority).is_zero
        assert switch.computed_bound("out", priority) == 0
    assert_matches_rebuild(switch, PROBES)


def test_float_streams_stay_consistent_within_tolerance():
    """The same invariants hold on the NumPy fast path (approximately)."""
    switch = make_switch()
    floats = [stream.as_floats() for stream in STREAMS]
    for index, stream in enumerate(floats):
        switch.admit(f"vc{index}", f"in{index % 2}", "out", index % 3,
                     stream)
        assert switch.verify_consistency()
    fresh = rebuilt_copy(switch)
    for priority in switch.priorities("out"):
        incremental = switch.computed_bound("out", priority)
        scratch = fresh.computed_bound("out", priority)
        assert abs(incremental - scratch) <= 1e-9 * (1 + abs(scratch))
    switch.release("vc1")
    assert switch.verify_consistency()
