"""The unified Clock protocol: one timeline for every time consumer."""

import pytest

from repro.exceptions import SimulationError
from repro.obs.clock import (
    Clock,
    EngineClock,
    ManualClock,
    SystemClock,
    get_clock,
    set_clock,
)
from repro.sim.engine import Engine


class TestProtocol:
    def test_every_implementation_satisfies_clock(self):
        for clock in (SystemClock(), ManualClock(), EngineClock(Engine())):
            assert isinstance(clock, Clock)

    def test_retry_reexport_is_the_same_class(self):
        # The historical import path must keep resolving to one type:
        # isinstance checks across modules depend on it.
        from repro.robustness.retry import ManualClock as RetryManualClock
        assert RetryManualClock is ManualClock


class TestManualClock:
    def test_advances_monotonically(self):
        clock = ManualClock(start=2.0)
        assert clock.now() == 2.0
        assert clock.advance(3.5) == 5.5
        assert clock.now() == 5.5

    def test_negative_advance_refused(self):
        with pytest.raises(ValueError, match="advance"):
            ManualClock().advance(-0.1)


class TestSystemClock:
    def test_reads_monotonic_time(self):
        clock = SystemClock()
        first = clock.now()
        assert clock.now() >= first


class TestEngineClock:
    def test_reads_engine_time(self):
        engine = Engine()
        clock = EngineClock(engine)
        assert clock.now() == 0.0
        seen = []
        engine.schedule(4.0, lambda: seen.append(clock.now()))
        engine.run()
        assert seen == [4.0]
        assert clock.engine is engine

    def test_zero_advance_is_a_noop(self):
        clock = EngineClock(Engine())
        assert clock.advance(0.0) == 0.0

    def test_nonzero_advance_is_a_programming_error(self):
        # Engine time moves only through scheduled events; a synchronous
        # driver trying to push it forward must fail loudly.
        with pytest.raises(SimulationError, match="engine process"):
            EngineClock(Engine()).advance(1.0)


class TestGlobalClock:
    def test_set_clock_swaps_and_restores(self):
        injected = ManualClock(start=9.0)
        previous = set_clock(injected)
        try:
            assert get_clock() is injected
        finally:
            assert set_clock(previous) is injected
        assert get_clock() is previous


class TestCacRebinding:
    def test_bind_clock_reaches_health_and_breakers(self):
        # AdmissionPlane construction rebinds an existing CAC -- every
        # component holding a clock reference must move with it,
        # including breakers created before the rebind.
        import random
        from repro.core import AdmissionPlane, NetworkCAC
        from repro.network.topology import star_network

        cac = NetworkCAC(star_network(3, bounds={0: 32}),
                         rng=random.Random(0))
        breaker = cac.breakers.breaker("hub", "t0->hub")  # pre-rebind
        engine = Engine()
        plane = AdmissionPlane(cac, engine)
        assert cac.clock is plane.clock
        assert cac.health._clock is plane.clock
        assert cac.breakers.clock is plane.clock
        assert breaker.clock is plane.clock
