"""Deterministic unit tests for the retry/backoff schedule."""

import random

import pytest

from repro.exceptions import RetryExhausted
from repro.robustness.retry import ManualClock, RetryPolicy, retry_call


class Flaky:
    """Fails the first ``failures`` calls, then returns its call count."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, attempt):
        self.calls += 1
        if self.calls <= self.failures:
            raise TimeoutError(f"transient #{self.calls}")
        return self.calls


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock.now() == 0.0
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_negative_advance_refused(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)


class TestRetryPolicy:
    def test_backoff_cap_doubles_until_max(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, max_delay=5.0)
        assert [policy.backoff_cap(i) for i in range(5)] == [1, 2, 4, 5, 5]

    def test_full_jitter_stays_in_window(self):
        policy = RetryPolicy(base_delay=2.0, max_delay=16.0)
        rng = random.Random(7)
        for retry_index in range(6):
            for _ in range(50):
                delay = policy.backoff_delay(retry_index, rng)
                assert 0.0 <= delay <= policy.backoff_cap(retry_index)

    def test_schedule_is_deterministic_under_a_seed(self):
        policy = RetryPolicy()
        first = [policy.backoff_delay(i, random.Random(3)) for i in range(4)]
        second = [policy.backoff_delay(i, random.Random(3)) for i in range(4)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_cap(-1)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        clock = ManualClock()
        flaky = Flaky(failures=2)
        result = retry_call(
            flaky, policy=RetryPolicy(max_attempts=4), clock=clock,
            rng=random.Random(0), retry_on=(TimeoutError,),
        )
        assert result == 3
        assert clock.now() > 0   # the backoffs advanced simulated time

    def test_clock_advances_by_exactly_the_drawn_backoffs(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, max_delay=30.0)
        draws = random.Random(11)
        expected = [policy.backoff_delay(i, draws) for i in range(2)]
        retry_call(
            Flaky(failures=2), policy=policy, clock=clock,
            rng=random.Random(11), retry_on=(TimeoutError,),
        )
        assert clock.now() == pytest.approx(sum(expected))

    def test_exhaustion_raises_with_cause_chained(self):
        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(
                Flaky(failures=99), policy=RetryPolicy(max_attempts=3),
                clock=ManualClock(), rng=random.Random(0),
                retry_on=(TimeoutError,),
            )
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TimeoutError)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def fatal(attempt):
            calls.append(attempt)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(fatal, retry_on=(TimeoutError,), clock=ManualClock())
        assert calls == [0]

    def test_deadline_stops_early(self):
        # A zero deadline forbids any backoff: exactly one attempt runs.
        flaky = Flaky(failures=99)
        with pytest.raises(RetryExhausted) as excinfo:
            retry_call(
                flaky,
                policy=RetryPolicy(max_attempts=10, base_delay=1.0,
                                   deadline=0.0),
                clock=ManualClock(), rng=random.Random(1),
                retry_on=(TimeoutError,),
            )
        assert flaky.calls == 1
        assert excinfo.value.attempts == 1

    def test_on_retry_observes_every_resend(self):
        seen = []
        retry_call(
            Flaky(failures=2), policy=RetryPolicy(max_attempts=4),
            clock=ManualClock(), rng=random.Random(5),
            retry_on=(TimeoutError,),
            on_retry=lambda attempt, backoff, exc: seen.append(
                (attempt, backoff, type(exc).__name__)),
        )
        assert [entry[0] for entry in seen] == [1, 2]
        assert all(entry[2] == "TimeoutError" for entry in seen)
        assert all(entry[1] >= 0 for entry in seen)
