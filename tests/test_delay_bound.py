"""Worst-case queueing analysis (Algorithm 4.1) unit tests."""

import math
from fractions import Fraction as F

import pytest

from repro.core.bitstream import BitStream
from repro.core.delay_bound import (
    ServiceCurve,
    backlog_bound_with_higher,
    delay_at,
    delay_bound,
    departure_time,
    is_stable,
)
from repro.core.traffic import VBRParameters, cbr
from repro.exceptions import BitStreamError


def stream(*pairs):
    return BitStream([r for r, _ in pairs], [t for _, t in pairs])


VBR = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)


class TestServiceCurve:
    def test_no_interference_is_identity(self):
        curve = ServiceCurve(None)
        assert curve.value(5) == 5
        assert curve.inverse(3) == 3
        assert curve.tail_rate == 1

    def test_unfiltered_interferer_rejected(self):
        with pytest.raises(BitStreamError, match="filtered"):
            ServiceCurve(stream((2, 0)))

    def test_value_accumulates_leftover(self):
        # Higher priority takes the full link for 4 time units.
        curve = ServiceCurve(stream((1, 0), (F(1, 2), 4)))
        assert curve.value(2) == 0
        assert curve.value(4) == 0
        assert curve.value(8) == 2

    def test_inverse_of_value(self):
        curve = ServiceCurve(stream((1, 0), (F(1, 2), 4)))
        for amount in (F(1, 2), 1, 3):
            assert curve.value(curve.inverse(amount)) == amount

    def test_inverse_is_sup_inverse_over_plateau(self):
        # Service is withheld until t=4; the right plateau edge is what
        # bounds the wait of a bit arriving just after t=0.
        curve = ServiceCurve(stream((1, 0), (F(1, 2), 4)))
        assert curve.inverse(0) == 4
        # Without any plateau the inverse starts at zero.
        assert ServiceCurve(None).inverse(0) == 0

    def test_inverse_unreachable_is_inf(self):
        curve = ServiceCurve(stream((1, 0)))     # link held forever
        assert curve.inverse(F(1, 2)) == math.inf

    def test_negative_inputs_rejected(self):
        curve = ServiceCurve(None)
        with pytest.raises(ValueError):
            curve.value(-1)
        with pytest.raises(ValueError):
            curve.inverse(-1)


class TestStability:
    def test_stable_below_capacity(self):
        assert is_stable(stream((F(1, 2), 0)))

    def test_stable_at_exact_capacity(self):
        assert is_stable(stream((1, 0)))

    def test_unstable_above_capacity(self):
        assert not is_stable(stream((2, 0)))

    def test_interference_counts(self):
        arrivals = stream((F(1, 2), 0))
        assert is_stable(arrivals, stream((F(1, 2), 0)))
        assert not is_stable(arrivals, stream((F(3, 4), 0)))


class TestHighestPriorityBound:
    """With no higher priority the bound equals the backlog drain time."""

    def test_zero_stream(self):
        assert delay_bound(BitStream.zero()) == 0

    def test_no_overload_no_delay(self):
        assert delay_bound(stream((1, 0), (F(1, 2), 1))) == 0

    def test_equals_backlog(self):
        aggregate = VBR.worst_case_stream().scaled(3)
        assert delay_bound(aggregate) == aggregate.backlog_bound()

    def test_unstable_is_inf(self):
        assert delay_bound(stream((2, 0))) == math.inf

    def test_hand_computed_aggregate(self):
        # Two in-links each deliver rate 1 for 2 time units, then silence:
        # 4 bits arrive while only 2 can leave; the last bit waits 2.
        aggregate = stream((2, 0), (F(1, 100), 2))
        assert delay_bound(aggregate) == 2


class TestPriorityBound:
    def test_hand_computed_with_interference(self):
        # Higher priority (filtered) occupies the link fully until 33/4,
        # then leaves 4/5 of it.  Hand-computed worst delay is 17/2 at
        # the t=1 breakpoint (see the smoke derivation in DESIGN review).
        arrivals = VBR.worst_case_stream()
        higher = VBR.worst_case_stream().scaled(2).filtered()
        assert delay_bound(arrivals, higher) == F(17, 2)

    def test_interference_only_delays(self):
        arrivals = VBR.worst_case_stream()
        alone = delay_bound(arrivals)
        with_higher = delay_bound(
            arrivals, cbr(F(1, 4)).worst_case_stream().filtered())
        assert with_higher >= alone

    def test_more_interference_more_delay(self):
        arrivals = VBR.worst_case_stream()
        small = delay_bound(arrivals, cbr(F(1, 8)).worst_case_stream())
        large = delay_bound(
            arrivals, cbr(F(1, 4)).worst_case_stream().scaled(2).filtered())
        assert large >= small

    def test_unstable_combination_is_inf(self):
        arrivals = stream((F(1, 2), 0))
        higher = stream((F(3, 4), 0))
        assert delay_bound(arrivals, higher) == math.inf

    def test_saturating_interferer_with_idle_arrivals(self):
        # Arrivals stop (rate 0 tail) but the interferer holds the link
        # forever before the backlog clears: infinite delay.
        arrivals = stream((1, 0), (0, 2))          # 2 bits then silence
        higher = stream((1, 0))                     # full link forever
        assert delay_bound(arrivals, higher) == math.inf

    def test_interferer_plateau_then_service(self):
        # Interferer full-rate until t=4; 1 bit arriving at 0 leaves at 5.
        arrivals = stream((F(1, 100), 0))
        higher = stream((1, 0), (0, 4))
        d = delay_bound(arrivals, higher)
        # A bit arriving just after t=0 waits out the whole plateau.
        assert d == 4

    def test_exact_capacity_equality_finite(self):
        # Long-run arrival + interference exactly 1: delay plateaus.
        arrivals = stream((F(1, 2), 0))
        higher = stream((F(1, 2), 0))
        assert delay_bound(arrivals, higher) == 0
        # Burst of 2 extra bits served at leftover rate 1/2: the bit at
        # t=2 has A=2 arrivals, served by C(t)=t/2 at t=4 -> delay 2,
        # and the tail slope is zero, so the bound plateaus at 2.
        bursty = stream((1, 0), (F(1, 2), 2))
        assert delay_bound(bursty, higher) == 2


class TestDelayDiagnostics:
    def test_delay_at_matches_bound(self):
        arrivals = VBR.worst_case_stream()
        higher = VBR.worst_case_stream().scaled(2).filtered()
        bound = delay_bound(arrivals, higher)
        assert delay_at(arrivals, higher, 1) == bound

    def test_departure_never_before_arrival(self):
        curve = ServiceCurve(None)
        arrivals = stream((F(1, 10), 0))
        for t in (0, 1, 5, 50):
            assert departure_time(arrivals, curve, t) >= t

    def test_delay_at_far_future_decays(self):
        arrivals = VBR.worst_case_stream()
        higher = VBR.worst_case_stream().scaled(2).filtered()
        assert delay_at(arrivals, higher, 1000) < delay_bound(arrivals, higher)


class TestBacklogWithHigher:
    def test_zero_stream(self):
        assert backlog_bound_with_higher(BitStream.zero()) == 0

    def test_matches_simple_backlog_without_interference(self):
        aggregate = VBR.worst_case_stream().scaled(3)
        assert backlog_bound_with_higher(aggregate) == aggregate.backlog_bound()

    def test_interference_grows_backlog(self):
        arrivals = VBR.worst_case_stream().scaled(2)
        higher = cbr(F(1, 4)).worst_case_stream().filtered()
        assert backlog_bound_with_higher(arrivals, higher) >= \
            backlog_bound_with_higher(arrivals)

    def test_unstable_is_inf(self):
        assert backlog_bound_with_higher(
            stream((F(3, 4), 0)), stream((F(1, 2), 0))) == math.inf

    def test_hand_computed(self):
        # Arrivals 1/2, interferer 1/2 until t=4 then 0: net backlog 0;
        # with interferer at full rate until 4: backlog = 2.
        arrivals = stream((F(1, 2), 0), (0, 4))
        assert backlog_bound_with_higher(arrivals, stream((1, 0), (0, 4))) == 2


class TestBoundIsAchievable:
    """The bound must be tight for the canonical single-queue case.

    For the highest priority with aggregate S, the paper's bound is the
    maximum backlog; fluid traffic following the envelope exactly makes
    the last bit of the busy period wait exactly that long.
    """

    def test_fluid_tightness(self):
        aggregate = VBR.worst_case_stream().scaled(3)
        bound = delay_bound(aggregate)
        # The bit arriving at the peak-backlog instant waits bound.
        peak_time = 1 + VBR.burst_duration
        backlog = aggregate.bits(peak_time) - peak_time
        assert backlog == bound
