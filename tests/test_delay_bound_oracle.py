"""Cross-check Algorithm 4.1 against a brute-force fluid oracle.

The oracle knows nothing of the closed form: it discretizes time, sums
the arrival and leftover-service curves numerically, and finds each
fluid bit's departure by linear search over the cumulative service.
The analytic bound must match the oracle's maximum delay to within the
grid resolution on every generated configuration.
"""

import math
from fractions import Fraction as F

import pytest

# The oracle grid is numpy-based; the library itself must keep working
# (and the rest of the suite passing) without numpy installed.
np = pytest.importorskip("numpy", exc_type=ImportError)
from hypothesis import given, settings, strategies as st

from repro.core.bitstream import BitStream, aggregate
from repro.core.delay_bound import delay_bound
from repro.core.traffic import VBRParameters


def oracle_delay_bound(stream: BitStream, higher: BitStream,
                       horizon: float, step: float = 0.01) -> float:
    """Brute-force worst-case delay by fluid simulation on a grid."""
    grid = np.arange(0.0, horizon, step)
    arrival_rate = np.array([float(stream.rate_at(t)) for t in grid])
    service_rate = np.clip(
        1.0 - np.array([float(higher.rate_at(t)) for t in grid]),
        0.0, None)
    arrivals = np.concatenate([[0.0], np.cumsum(arrival_rate) * step])
    service = np.concatenate([[0.0], np.cumsum(service_rate) * step])
    # For each arrival instant, find the departure instant.
    indices = np.searchsorted(service, arrivals, side="left")
    finite = indices < len(grid)
    delays = np.where(
        finite,
        np.minimum(indices, len(grid) - 1) * step
        - np.arange(len(arrivals)) * step,
        np.inf,
    )
    worst = float(np.max(delays[: len(grid)]))
    return max(worst, 0.0)


def horizon_for(stream: BitStream, higher: BitStream) -> float:
    """A horizon safely past every breakpoint and busy period."""
    last = max(stream.times[-1], higher.times[-1])
    return float(last) + 80.0


@st.composite
def stable_scenarios(draw):
    """A (stream, filtered interferer) pair with a finite bound."""
    def make_params(max_scr_inverse):
        pcr = F(1, draw(st.integers(min_value=2, max_value=4)))
        scr = pcr / draw(st.integers(min_value=4, max_value=max_scr_inverse))
        mbs = draw(st.integers(min_value=1, max_value=5))
        return VBRParameters(pcr=pcr, scr=scr, mbs=mbs)

    copies = draw(st.integers(min_value=1, max_value=3))
    cdvs = draw(st.lists(
        st.integers(min_value=0, max_value=20),
        min_size=copies, max_size=copies))
    parts = [
        make_params(12).worst_case_stream().delayed(cdv)
        for cdv in cdvs
    ]
    stream = aggregate(parts)
    if draw(st.booleans()):
        higher = make_params(12).worst_case_stream().delayed(
            draw(st.integers(min_value=0, max_value=16))).filtered()
    else:
        higher = BitStream.zero()
    return stream, higher


@given(stable_scenarios())
@settings(max_examples=25, deadline=None)
def test_algorithm_41_matches_fluid_oracle(scenario):
    stream, higher = scenario
    bound = delay_bound(stream, higher)
    if bound == math.inf:
        assert stream.long_run_rate + higher.long_run_rate >= 1
        return
    step = 0.01
    numeric = oracle_delay_bound(
        stream, higher, horizon_for(stream, higher), step)
    # Grid resolution costs up to a few steps on each curve.
    assert numeric <= float(bound) + 5 * step
    assert numeric >= float(bound) - 5 * step


class TestOracleKnownCases:
    def test_simple_backlog(self):
        # 2 bits arrive instantly-ish; served at rate 1: delay 2.
        stream = BitStream([2, F(1, 100)], [0, 2])
        bound = float(delay_bound(stream))
        numeric = oracle_delay_bound(
            stream, BitStream.zero(), horizon=60.0)
        assert numeric == pytest.approx(bound, abs=0.05)

    def test_with_plateau_interferer(self):
        stream = BitStream([F(1, 10)], [0])
        higher = BitStream([1, 0], [0, 4])
        bound = float(delay_bound(stream, higher))
        numeric = oracle_delay_bound(stream, higher, horizon=40.0)
        assert numeric == pytest.approx(bound, abs=0.05)

    def test_worked_example_from_paper_model(self):
        vbr = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        stream = vbr.worst_case_stream()
        higher = vbr.worst_case_stream().scaled(2).filtered()
        bound = float(delay_bound(stream, higher))   # known: 17/2
        numeric = oracle_delay_bound(stream, higher, horizon=80.0)
        assert numeric == pytest.approx(bound, abs=0.05)
        assert bound == pytest.approx(8.5)
