"""The repro-eval command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig10"])
        assert args.ring_nodes == 16
        assert 0.75 in args.loads


class TestCommands:
    def test_table1(self, capsys):
        out = run(capsys, "table1")
        assert "high speed" in out
        assert "32.8" in out

    def test_table1_csv(self, capsys):
        out = run(capsys, "--csv", "table1")
        assert out.splitlines()[0].startswith("class,")
        assert "high speed,1,1,4" in out

    def test_fig10_small(self, capsys):
        out = run(capsys, "fig10", "--loads", "0.25", "0.75",
                  "--terminals", "1")
        assert "N=1" in out
        assert "Figure 10" in out

    def test_fig10_shows_rejection(self, capsys):
        out = run(capsys, "fig10", "--loads", "0.99", "--terminals", "16")
        assert "rejected" in out

    def test_fig11_small(self, capsys):
        out = run(capsys, "fig11", "--fractions", "0", "0.5",
                  "--terminals", "4", "--ring-nodes", "8",
                  "--tolerance", "0.05")
        assert "Figure 11" in out

    def test_fig12_small(self, capsys):
        out = run(capsys, "fig12", "--fractions", "0.5",
                  "--terminals", "4", "--ring-nodes", "8",
                  "--tolerance", "0.05")
        assert "2 priorities" in out

    def test_fig13_small(self, capsys):
        out = run(capsys, "fig13", "--fractions", "0.5",
                  "--terminals", "4", "--ring-nodes", "8",
                  "--tolerance", "0.05")
        assert "soft CAC" in out

    def test_vbr(self, capsys):
        out = run(capsys, "vbr", "--mbs", "1", "16")
        assert "VBR feasibility" in out

    def test_failover(self, capsys):
        out = run(capsys, "failover", "--terminals", "1",
                  "--ring-nodes", "8")
        assert "after_wrap" in out

    def test_csv_mode_has_no_table_art(self, capsys):
        out = run(capsys, "--csv", "vbr", "--mbs", "1")
        assert "|" not in out
        assert out.startswith("mbs_per_node,max_load")


class TestJobsFlag:
    def test_help_documents_jobs(self):
        helptext = build_parser().format_help()
        assert "--jobs" in helptext
        assert "0 = os.cpu_count()" in helptext

    def test_default_is_serial(self):
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 1

    def test_zero_means_all_cores(self):
        args = build_parser().parse_args(["--jobs", "0", "table1"])
        assert args.jobs == 0

    def test_negative_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--jobs", "-2", "table1"])

    def test_non_integer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--jobs", "many", "table1"])

    def test_parallel_output_matches_serial(self, capsys):
        argv = ["fig10", "--loads", "0.25", "0.5",
                "--terminals", "1", "4", "--ring-nodes", "8"]
        serial = run(capsys, *argv)
        fanned = run(capsys, "--jobs", "2", *argv)
        assert fanned == serial

    def test_parallel_csv_matches_serial(self, capsys):
        argv = ["--csv", "vbr", "--mbs", "1", "4", "--ring-nodes", "8"]
        serial = run(capsys, *argv)
        fanned = run(capsys, "--jobs", "2", *argv)
        assert fanned == serial


class TestChaosCommand:
    def test_default_run_reports_the_migration(self, capsys):
        out = run(capsys, "chaos")
        assert "ring0->ring1" in out
        assert "migrated" in out
        assert "breaker reclosed" in out
        assert "booking safe" in out

    def test_named_link_and_keep_policy(self, capsys):
        out = run(capsys, "chaos", "--ring-nodes", "4",
                  "--link", "ring2->ring3", "--policy", "migrate-or-keep")
        assert "ring2->ring3" in out
        assert "migrate-or-keep" in out

    def test_obs_flag_dumps_survivability_counters(self, capsys):
        out = run(capsys, "chaos", "--ring-nodes", "4", "--obs")
        assert "cac_migrations_total" in out
        assert "cac_failure_detections_total" in out

    def test_csv_output(self, capsys):
        out = run(capsys, "--csv", "chaos", "--ring-nodes", "4")
        assert "metric,value" in out
        assert "detection latency" in out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--policy", "pray"])

    def test_observability_is_restored_after_the_run(self, capsys):
        from repro import obs
        run(capsys, "chaos", "--ring-nodes", "4", "--obs")
        assert not obs.enabled()


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro-eval {__version__}"

    def test_help_documents_version(self):
        assert "--version" in build_parser().format_help()


class TestChurnCommand:
    ARGS = ["churn", "--loads", "1", "3", "--events", "300",
            "--nodes", "6", "--seed", "5"]

    def test_table_output(self, capsys):
        out = run(capsys, *self.ARGS)
        assert "blocking vs offered load" in out
        assert "seed 5" in out
        assert "carried_erlangs" in out

    def test_csv_output(self, capsys):
        out = run(capsys, "--csv", *self.ARGS)
        assert out.startswith("offered_load,arrivals,blocked,blocking")

    def test_json_output_carries_digests(self, capsys):
        import json
        payload = json.loads(run(capsys, *self.ARGS, "--json"))
        assert payload["seed"] == 5
        assert len(payload["points"]) == 2
        for point in payload["points"]:
            assert len(point["digests"]) == 1
            assert len(point["digests"][0]) == 64

    def test_seeded_runs_reproduce(self, capsys):
        import json
        first = json.loads(run(capsys, *self.ARGS, "--json"))
        second = json.loads(run(capsys, *self.ARGS, "--json"))
        assert first == second

    def test_jobs_fanout_matches_serial(self, capsys):
        serial = run(capsys, *self.ARGS, "--json")
        fanned = run(capsys, "--jobs", "2", *self.ARGS, "--json")
        assert fanned == serial

    def test_policy_choices_are_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--policy", "random-walk"])

    def test_seed_defaults_to_zero(self):
        assert build_parser().parse_args(["churn"]).seed == 0
        assert build_parser().parse_args(["chaos"]).seed == 0

    def test_setup_latency_flags_reach_the_report(self, capsys):
        import json
        payload = json.loads(run(
            capsys, "churn", "--loads", "1", "--events", "300",
            "--nodes", "6", "--seed", "5",
            "--setup-latency", "2", "--reservation-ttl", "40", "--json"))
        assert payload["setup_latency"] == 2.0
        assert payload["reservation_ttl"] == 40.0

    def test_setup_latency_changes_the_trajectory(self, capsys):
        import json
        instant = json.loads(run(capsys, *self.ARGS, "--json"))
        latent = json.loads(run(
            capsys, *self.ARGS, "--setup-latency", "2",
            "--reservation-ttl", "40", "--json"))
        assert instant["setup_latency"] == 0.0
        assert instant["reservation_ttl"] is None
        assert [p["digests"] for p in latent["points"]] != \
               [p["digests"] for p in instant["points"]]


class TestObsCommand:
    def test_table_output(self, capsys):
        out = run(capsys, "obs")
        assert "12 connections established" in out
        assert "cac_checks_total" in out

    def test_prom_output_is_exposition_format(self, capsys):
        out = run(capsys, "obs", "--prom")
        assert "# TYPE cac_checks_total counter" in out
        assert 'cac_checks_total{switch="ring0"} 9' in out
        assert "signaling_hop_rtt_bucket" in out

    def test_json_output_is_jsonl(self, capsys):
        import json
        out = run(capsys, "obs", "--json")
        records = [json.loads(line) for line in out.strip().splitlines()]
        assert any(r["name"] == "network_setups_total" for r in records)

    def test_spans_output(self, capsys):
        out = run(capsys, "obs", "--spans")
        assert "admission.setup" in out
        assert "admission.hop" in out

    def test_json_and_prom_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--json", "--prom"])

    def test_observability_is_restored_after_the_run(self, capsys):
        from repro import obs
        run(capsys, "obs")
        assert not obs.enabled()


class TestProfileCommand:
    ARGS = ("profile", "--events", "60", "--nodes", "4", "--top", "8")

    def test_table_output(self, capsys):
        out = run(capsys, *self.ARGS)
        assert "Profile: 60 churn events" in out
        assert "events/s" in out
        assert "cumtime_s" in out

    def test_json_output(self, capsys):
        import json
        doc = json.loads(run(capsys, *self.ARGS, "--json"))
        assert doc["events"] == 60
        assert doc["fast_path"] == "auto"
        assert doc["events_per_sec"] > 0
        assert 0 < len(doc["top"]) <= 8
        assert {"function", "file", "line", "ncalls", "tottime_s",
                "cumtime_s"} <= set(doc["top"][0])

    def test_fast_path_off_still_profiles(self, capsys):
        import json
        doc = json.loads(run(capsys, *self.ARGS, "--fast-path", "off",
                             "--json"))
        assert doc["fast_path"] == "off"

    def test_exact_bound_is_off_the_top_of_the_profile(self, capsys):
        """The headline claim: Algorithm 4.1 no longer dominates."""
        import json
        doc = json.loads(run(
            capsys, "profile", "--events", "200", "--json"))
        leaders = [entry["function"] for entry in doc["top"][:8]]
        assert "delay_bound" not in leaders
