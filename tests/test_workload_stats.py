"""Blocking/load analytics: batch means, digests, summaries, timelines."""

import pytest

from repro.core.traffic import cbr
from repro.workload import TrafficClass
from repro.workload.churn import ChurnRecord
from repro.workload.stats import (
    batch_means,
    export_report,
    ledger_digest,
    summarize,
    utilization_timeline,
)


def record(index, time, kind, name, outcome, route=(), cls="cbr",
           attempts=1):
    return ChurnRecord(index=index, time=time, kind=kind, name=name,
                       cls=cls, outcome=outcome, attempts=attempts,
                       route=tuple(route))


CLASSES = {"cbr": TrafficClass("cbr", cbr(0.25), 0.01, 50.0)}


def tiny_ledger():
    """Two admissions (one departs), one block, over horizon 100."""
    return [
        record(0, 10.0, "arrival", "c0", "admitted", route=("a->b", "b->c")),
        record(1, 20.0, "arrival", "c1", "blocked"),
        record(2, 40.0, "arrival", "c2", "admitted", route=("a->b",)),
        record(3, 60.0, "departure", "c0", "departed"),
    ]


class TestBatchMeans:
    def test_empty_and_singleton_degenerate(self):
        assert batch_means([]) == (0.0, 0.0)
        assert batch_means([0.4]) == (0.4, 0.0)

    def test_constant_batches_have_zero_width(self):
        mean, half = batch_means([0.2] * 8)
        assert mean == pytest.approx(0.2)
        assert half == pytest.approx(0.0, abs=1e-12)

    def test_known_two_sample_interval(self):
        # s = sqrt(0.02), t_1 = 12.706, half = t * s / sqrt(2)
        mean, half = batch_means([0.1, 0.3])
        assert mean == pytest.approx(0.2)
        assert half == pytest.approx(12.706 * (0.02 ** 0.5) / (2 ** 0.5))

    def test_large_n_uses_normal_quantile(self):
        values = [0.0, 1.0] * 50
        _mean, half = batch_means(values)
        assert half == pytest.approx(1.96 * 0.5025189 / 10, rel=1e-3)


class TestLedgerDigest:
    def test_sensitive_to_every_field(self):
        base = tiny_ledger()
        baseline = ledger_digest(base)
        assert ledger_digest(base) == baseline    # deterministic
        mutated = list(base)
        mutated[1] = record(1, 20.0, "arrival", "c1", "admitted")
        assert ledger_digest(mutated) != baseline
        shifted = list(base)
        shifted[3] = record(3, 60.0000001, "departure", "c0", "departed")
        assert ledger_digest(shifted) != baseline

    def test_empty_ledger_digest_is_stable(self):
        assert ledger_digest([]) == ledger_digest([])


class TestSummarize:
    def summary(self, warmup=0.0):
        return summarize(tiny_ledger(), CLASSES, horizon=100.0,
                         warmup=warmup, seed=1, policy="first-path",
                         journal_digest="j", batches=4)

    def test_counts_and_blocking(self):
        report = self.summary()
        assert (report.arrivals, report.admitted, report.blocked) == (3, 2, 1)
        assert report.blocking == pytest.approx(1 / 3)
        assert report.active_at_end == 1          # c2 still holding

    def test_carried_erlangs_is_time_averaged(self):
        # c0 holds 10..60, c2 holds 40..100 -> (50 + 60) / 100.
        report = self.summary()
        assert report.carried_erlangs == pytest.approx(1.1)

    def test_link_utilization_mean_and_peak(self):
        report = self.summary()
        util = {link: (mean, peak)
                for link, mean, peak in report.link_utilization}
        # a->b carries both intervals at scr 0.25: overlap 50+60 cell
        # times -> mean 0.275; both live during 40..60 -> peak 0.5.
        assert util["a->b"][0] == pytest.approx(0.275)
        assert util["a->b"][1] == pytest.approx(0.5)
        assert util["b->c"][0] == pytest.approx(0.125)
        assert util["b->c"][1] == pytest.approx(0.25)

    def test_warmup_trims_rows_and_holding_time(self):
        report = self.summary(warmup=30.0)
        # Only c2's arrival is in the window.
        assert (report.arrivals, report.blocked) == (1, 0)
        assert report.blocking == 0.0
        # c0 contributes only 30..60, c2 contributes 40..100, over 70.
        assert report.carried_erlangs == pytest.approx((30 + 60) / 70)

    def test_empty_window_degenerates_to_zero(self):
        report = summarize(tiny_ledger(), CLASSES, horizon=100.0,
                           warmup=100.0, seed=1, policy="p",
                           journal_digest="j")
        assert report.carried_erlangs == 0.0
        assert report.link_utilization == ()

    def test_as_dict_round_trips_to_json(self):
        import json
        payload = json.dumps(self.summary().as_dict())
        decoded = json.loads(payload)
        assert decoded["per_class"][0]["class"] == "cbr"
        assert decoded["journal_digest"] == "j"


class TestUtilizationTimeline:
    def test_piecewise_series(self):
        series = utilization_timeline(tiny_ledger(), CLASSES, horizon=100.0)
        assert series["a->b"] == [
            (0.0, 0.0), (10.0, 0.25), (40.0, 0.5), (60.0, 0.25)]
        assert series["b->c"] == [(0.0, 0.0), (10.0, 0.25), (60.0, 0.0)]

    def test_link_filter(self):
        series = utilization_timeline(tiny_ledger(), CLASSES, horizon=100.0,
                                      links=["b->c"])
        assert set(series) == {"b->c"}


class TestExportReport:
    def test_gauges_and_event(self, obs_enabled, obs_bus):
        registry, _tracer = obs_enabled
        seen = []
        obs_bus.subscribe(seen.append)
        report = summarize(tiny_ledger(), CLASSES, horizon=100.0,
                           warmup=0.0, seed=1, policy="first-path",
                           journal_digest="j")
        export_report(report)
        assert registry.value("churn_blocking_probability",
                              cls="cbr") == pytest.approx(1 / 3)
        assert registry.value("churn_carried_erlangs") == pytest.approx(1.1)
        assert [event.name for event in seen] == ["report"]
        assert seen[0].category == "churn"


class TestJournalDigest:
    def test_identical_runs_share_digest(self):
        import random

        from repro.core.admission import NetworkCAC
        from repro.network.topology import star_network
        from repro.workload import (ChurnEngine, TrafficClass, star_pairs,
                                    journal_digest_of)

        def run():
            cac = NetworkCAC(star_network(3, bounds={0: 32}),
                             rng=random.Random(1))
            engine = ChurnEngine(
                cac, [TrafficClass("cbr", cbr(0.1), 0.01, 100.0)],
                pairs=star_pairs(cac.network), seed=1)
            engine.run(max_events=40)
            return journal_digest_of(cac)

        assert run() == run()
