"""Fault injection through the two-phase setup walk.

Each test injects one declarative fault (or a small combination) and
asserts both the protocol-level outcome (established / refused, what
the trace shows) and the state-level invariant: after any fault the
network equals its pre-setup state or holds exactly the committed
connection, and every switch's caches verify.
"""

from fractions import Fraction as F

import pytest

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.exceptions import SignalingTimeout, SwitchUnavailable
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.signaling import (
    AbortMessage,
    CommitMessage,
    FaultEvent,
    RetryEvent,
    SetupMessage,
    SignalingTrace,
)
from repro.network.topology import line_network
from repro.robustness.faults import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    LINK_FAIL,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.robustness.retry import RetryPolicy


def make_network():
    return line_network(4, bounds={0: 32}, terminals_per_switch=1)


def make_cac(*faults, max_attempts=3):
    network = make_network()
    cac = NetworkCAC(
        network,
        fault_injector=FaultInjector(FaultPlan(faults)),
        retry_policy=RetryPolicy(max_attempts=max_attempts, base_delay=0.5,
                                 max_delay=4.0),
    )
    return network, cac


def request_for(network, name="vc0"):
    return ConnectionRequest(
        name, cbr(F(1, 8)), shortest_path(network, "t0.0", "t3.0"))


def assert_pristine(cac):
    """The network is in exactly its pre-setup state."""
    assert cac.established == {}
    for cac_switch in cac.switches().values():
        if not cac_switch.crashed:
            assert cac_switch.legs == {}
            assert cac_switch.pending == {}
            assert cac_switch.verify_consistency()


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode")

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            FaultSpec(DROP, phase="warmup")

    def test_delay_needs_a_delay(self):
        with pytest.raises(ValueError, match="positive delay"):
            FaultSpec(DELAY)

    def test_injector_consumes_counted_specs(self):
        injector = FaultInjector(FaultPlan([FaultSpec(DROP, hop=1, count=2)]))
        assert injector.intercept("reserve", 1, "vc0")
        assert injector.intercept("reserve", 1, "vc0")
        assert injector.intercept("reserve", 1, "vc0") == []
        assert injector.exhausted()

    def test_injector_matches_phase_hop_connection(self):
        spec = FaultSpec(DROP, phase="commit", hop=2, connection="vc1")
        injector = FaultInjector(FaultPlan([spec]))
        assert injector.intercept("reserve", 2, "vc1") == []
        assert injector.intercept("commit", 1, "vc1") == []
        assert injector.intercept("commit", 2, "vc0") == []
        assert injector.intercept("commit", 2, "vc1") == [spec]


class TestDrop:
    def test_single_drop_is_retried_and_succeeds(self):
        network, cac = make_cac(FaultSpec(DROP, phase="reserve", hop=1))
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert "vc0" in cac.established
        faults = trace.of_type(FaultEvent)
        retries = trace.of_type(RetryEvent)
        assert [event.kind for event in faults] == [DROP]
        assert len(retries) == 1
        assert retries[0].at_node == "s1"
        assert all(sw.verify_consistency() for sw in cac.switches().values())

    def test_drop_burst_exhausts_retries_and_unwinds(self):
        network, cac = make_cac(
            FaultSpec(DROP, phase="reserve", hop=2, count=3), max_attempts=3)
        trace = SignalingTrace()
        with pytest.raises(SignalingTimeout) as excinfo:
            cac.setup(request_for(network), trace=trace)
        assert excinfo.value.at_node == "s2"
        assert excinfo.value.attempts == 3
        assert_pristine(cac)
        # Hops 0..1 reserved before the failure must have seen an abort.
        aborted = {message.at_node for message in trace.of_type(AbortMessage)}
        assert {"s0", "s1"} <= aborted

    def test_commit_phase_drop_is_survived(self):
        network, cac = make_cac(FaultSpec(DROP, phase="commit", hop=3))
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert "vc0" in cac.established
        assert len(trace.of_type(RetryEvent)) == 1
        assert all(sw.verify_consistency() for sw in cac.switches().values())

    def test_simulated_time_advances_on_retries(self):
        network, cac = make_cac(FaultSpec(DROP, phase="reserve", hop=0))
        before = cac.clock.now()
        cac.setup(request_for(network))
        # At least one hop timeout plus one backoff was waited out.
        assert cac.clock.now() >= before + cac.hop_timeout


class TestDuplicateAndDelay:
    def test_duplicate_setup_is_idempotent(self):
        network, cac = make_cac(FaultSpec(DUPLICATE, phase="reserve", hop=1))
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert "vc0" in cac.established
        # The duplicate was processed (two SETUPs recorded at s1) without
        # double-booking the port.
        setups_at_s1 = [m for m in trace.of_type(SetupMessage)
                        if m.at_node == "s1"]
        assert len(setups_at_s1) == 2
        assert len(cac.switch("s1").legs) == 1
        assert all(sw.verify_consistency() for sw in cac.switches().values())

    def test_duplicate_commit_is_idempotent(self):
        network, cac = make_cac(FaultSpec(DUPLICATE, phase="commit", hop=2))
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert "vc0" in cac.established
        commits_at_s2 = [m for m in trace.of_type(CommitMessage)
                         if m.at_node == "s2"]
        assert len(commits_at_s2) == 2
        assert all(sw.verify_consistency() for sw in cac.switches().values())

    def test_short_delay_just_slows_the_walk(self):
        network, cac = make_cac(FaultSpec(DELAY, phase="reserve", hop=1,
                                          delay=3.0))
        cac.setup(request_for(network))
        assert "vc0" in cac.established
        assert cac.clock.now() >= 3.0

    def test_late_response_is_retransmitted_and_still_consistent(self):
        # Delay beyond the hop timeout: the reservation is applied late,
        # the sender retransmits, and the switch must shrug off the
        # duplicate instead of double-booking.
        network, cac = make_cac(
            FaultSpec(DELAY, phase="reserve", hop=1, delay=50.0))
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert "vc0" in cac.established
        assert len(cac.switch("s1").legs) == 1
        assert len(trace.of_type(RetryEvent)) == 1
        assert all(sw.verify_consistency() for sw in cac.switches().values())


class TestCrash:
    def test_crash_mid_walk_unwinds_and_recovers_empty(self):
        network, cac = make_cac(FaultSpec(CRASH, phase="reserve", hop=2))
        trace = SignalingTrace()
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network), trace=trace)
        assert cac.switch("s2").crashed
        assert any(event.kind == CRASH for event in trace.of_type(FaultEvent))
        assert_pristine(cac)
        cac.recover_switch("s2")
        assert not cac.switch("s2").crashed
        assert cac.switch("s2").legs == {}
        assert cac.switch("s2").verify_consistency()

    def test_crashed_switch_refuses_cac_work(self):
        network, cac = make_cac(FaultSpec(CRASH, phase="reserve", hop=1))
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network))
        with pytest.raises(SwitchUnavailable):
            cac.switch("s1").check("l0", "l1", 0,
                                   cbr(F(1, 8)).worst_case_stream())

    def test_commit_phase_crash_unwinds_committed_hops(self):
        # The COMMIT wave runs destination-first (hop 3, 2, 1, 0); a
        # crash at hop 1 happens after hops 3 and 2 already committed,
        # so the unwind must release commitments, not just reservations.
        network, cac = make_cac(FaultSpec(CRASH, phase="commit", hop=1))
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network))
        assert_pristine(cac)
        recovered = cac.recover_switch("s1")
        # Reconciliation: whatever the dead switch had journaled for the
        # unwound connection is dropped on recovery.
        assert recovered.legs == {}
        assert recovered.pending == {}
        assert recovered.verify_consistency()

    def test_next_connection_succeeds_after_recovery(self):
        network, cac = make_cac(FaultSpec(CRASH, phase="reserve", hop=2))
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network, "doomed"))
        cac.recover_switch("s2")
        established = cac.setup(request_for(network, "second"))
        assert established.e2e_bound == 4 * 32
        assert set(cac.established) == {"second"}


class TestLinkFailure:
    def test_link_failure_mid_walk_unwinds(self):
        network, cac = make_cac(FaultSpec(LINK_FAIL, phase="reserve", hop=2))
        trace = SignalingTrace()
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network), trace=trace)
        kinds = [event.kind for event in trace.of_type(FaultEvent)]
        assert LINK_FAIL in kinds
        assert "link-down" in kinds   # the retries found the link dead
        assert_pristine(cac)

    def test_failed_link_blocks_later_walks_on_it(self):
        network, cac = make_cac(FaultSpec(LINK_FAIL, phase="reserve", hop=2))
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network, "first"))
        with pytest.raises(SignalingTimeout):
            cac.setup(request_for(network, "second"))
        assert_pristine(cac)


class TestLosslessDegeneration:
    def test_no_injector_means_no_fault_traffic(self):
        network = make_network()
        cac = NetworkCAC(network)
        trace = SignalingTrace()
        cac.setup(request_for(network), trace=trace)
        assert trace.of_type(FaultEvent) == []
        assert trace.of_type(RetryEvent) == []
        assert [m.at_node for m in trace.of_type(SetupMessage)] == [
            "s0", "s1", "s2", "s3"]
        # COMMIT wave runs destination-first.
        assert [m.at_node for m in trace.of_type(CommitMessage)] == [
            "s3", "s2", "s1", "s0"]
