"""The central CAC server: decisions, plans, audit trail, persistence."""

import json
from fractions import Fraction as F

import pytest

from repro.core.server import CacServer
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError, ReproError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network, star_network


@pytest.fixture
def net():
    return star_network(4, bounds={0: 32})


def request_for(net, name, rate=F(1, 8), src="t0", dst="t3"):
    return ConnectionRequest(name, cbr(rate), shortest_path(net, src, dst))


class TestDecisions:
    def test_admission_decision(self, net):
        server = CacServer(net)
        decision = server.request_setup(request_for(net, "vc0"))
        assert decision.admitted
        assert decision.e2e_bound == 32
        assert "vc0" in server.established

    def test_refusal_is_a_decision_not_an_exception(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "big", rate=F(3, 4)))
        decision = server.request_setup(
            request_for(net, "toobig", rate=F(1, 2), src="t1"))
        assert not decision.admitted
        assert "rejected" in decision.reason
        assert "toobig" not in server.established

    def test_duplicate_name_refused(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "vc0"))
        decision = server.request_setup(request_for(net, "vc0", src="t1"))
        assert not decision.admitted
        assert "already" in decision.reason

    def test_teardown(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "vc0"))
        server.request_teardown("vc0")
        assert server.established == {}

    def test_teardown_unknown_raises(self, net):
        with pytest.raises(AdmissionError):
            CacServer(net).request_teardown("ghost")


class TestAudit:
    def test_log_records_lifecycle(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "vc0"))
        server.request_setup(request_for(net, "huge", rate=F(99, 100),
                                         src="t1"))
        server.request_teardown("vc0")
        actions = [(entry.action, entry.connection)
                   for entry in server.audit_log]
        assert actions == [
            ("setup", "vc0"), ("reject", "huge"), ("teardown", "vc0")]

    def test_sequence_monotone(self, net):
        server = CacServer(net)
        for index in range(3):
            server.request_setup(request_for(net, f"vc{index}",
                                             src=f"t{index}"))
        sequences = [entry.sequence for entry in server.audit_log]
        assert sequences == sorted(sequences)


class TestPlans:
    def test_feasible_plan_reports_bounds(self, net):
        server = CacServer(net)
        report = server.plan([
            request_for(net, "a"),
            request_for(net, "b", src="t1"),
        ])
        assert report.feasible
        assert all(d.admitted for d in report.decisions)
        assert server.established == {}    # dry run

    def test_infeasible_plan_pinpoints_failure(self, net):
        server = CacServer(net)
        report = server.plan([
            request_for(net, "a", rate=F(3, 4)),
            request_for(net, "b", rate=F(1, 2), src="t1"),
        ])
        assert not report.feasible
        assert report.decisions[0].admitted
        assert not report.decisions[1].admitted
        assert server.established == {}

    def test_plan_sees_committed_state(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "existing", rate=F(3, 4)))
        report = server.plan([request_for(net, "new", rate=F(1, 2),
                                          src="t1")])
        assert not report.feasible

    def test_commit_plan_all_or_nothing(self, net):
        server = CacServer(net)
        decisions = server.commit_plan([
            request_for(net, "a", rate=F(3, 4)),
            request_for(net, "b", rate=F(1, 2), src="t1"),
        ])
        assert server.established == {}
        assert not decisions[-1].admitted

    def test_commit_plan_success(self, net):
        server = CacServer(net)
        decisions = server.commit_plan([
            request_for(net, "a"),
            request_for(net, "b", src="t1"),
        ])
        assert all(d.admitted for d in decisions)
        assert set(server.established) == {"a", "b"}


class TestPersistence:
    def test_snapshot_restore_round_trip(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "a"))
        server.request_setup(request_for(net, "b", src="t1"))
        payload = server.snapshot_json()
        json.loads(payload)   # valid JSON

        fresh = CacServer(net)
        fresh.restore_json(payload)
        assert set(fresh.established) == {"a", "b"}
        # The restored state reproduces the same computed bounds.
        assert fresh.port_report() == server.port_report()

    def test_restore_requires_empty_server(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "a"))
        payload = server.snapshot()
        with pytest.raises(ReproError, match="empty"):
            server.restore(payload)

    def test_restore_unwinds_on_failure(self, net):
        # Snapshot from a permissive network cannot be restored onto a
        # loaded one; nothing may leak.
        donor = CacServer(net)
        donor.request_setup(request_for(net, "a", rate=F(3, 4)))
        payload = donor.snapshot()

        crowded_net = star_network(4, bounds={0: 32})
        crowded = CacServer(crowded_net)
        crowded.request_setup(ConnectionRequest(
            "hog", cbr(F(1, 2)), shortest_path(crowded_net, "t1", "t3")))
        snapshot_with_both = {
            "connections": payload["connections"] * 1
        }
        # Make it infeasible by doubling the big connection.
        snapshot_with_both["connections"] = [
            dict(payload["connections"][0]),
            dict(payload["connections"][0], name="a2"),
        ]
        crowded.request_teardown("hog")
        with pytest.raises(AdmissionError):
            crowded.restore(snapshot_with_both)
        assert crowded.established == {}

    def test_snapshot_preserves_exact_contracts(self, net):
        server = CacServer(net)
        server.request_setup(request_for(net, "a", rate=F(1, 3)))
        fresh = CacServer(net)
        fresh.restore(server.snapshot())
        established = fresh.established["a"]
        assert established.request.traffic.pcr == F(1, 3)

    def test_multihop_snapshot(self):
        line = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        server = CacServer(line)
        server.request_setup(ConnectionRequest(
            "far", cbr(F(1, 8)), shortest_path(line, "t0.0", "t2.0")))
        fresh = CacServer(line)
        fresh.restore(server.snapshot())
        assert fresh.established["far"].e2e_bound == \
            server.established["far"].e2e_bound
