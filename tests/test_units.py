"""Unit-conversion arithmetic (cell times, link rates, cyclic bandwidth)."""

import math

import pytest

from repro.units import (
    CELL_BITS,
    CELL_BYTES,
    CELL_PAYLOAD_BYTES,
    OC3_LINE_RATE_BPS,
    RTNET_LINK,
    LinkRate,
    bandwidth_for_cyclic,
    cells_for_bytes,
)


class TestCellConstants:
    def test_cell_is_53_bytes(self):
        assert CELL_BYTES == 53
        assert CELL_BITS == 424

    def test_payload_is_48_bytes(self):
        assert CELL_PAYLOAD_BYTES == 48


class TestLinkRate:
    def test_rtnet_cell_time_is_about_2_7_microseconds(self):
        # The paper: "At a 155 Mbps transmission speed, one cell time is
        # about 2.7 microseconds."
        assert RTNET_LINK.cell_time_seconds == pytest.approx(2.726e-6, rel=1e-3)

    def test_seconds_round_trip(self):
        cells = RTNET_LINK.seconds_to_cell_times(1e-3)
        assert RTNET_LINK.cell_times_to_seconds(cells) == pytest.approx(1e-3)

    def test_one_ms_is_about_366_cell_times(self):
        # 1 ms / 2.726 us = 366.8 -- the paper rounds to "370 cell times".
        assert RTNET_LINK.ms_to_cell_times(1.0) == pytest.approx(366.8, abs=1)

    def test_ms_round_trip(self):
        assert RTNET_LINK.cell_times_to_ms(
            RTNET_LINK.ms_to_cell_times(30.0)) == pytest.approx(30.0)

    def test_normalized_rate(self):
        assert RTNET_LINK.normalized_rate(OC3_LINE_RATE_BPS) == pytest.approx(1.0)
        assert RTNET_LINK.mbps_to_normalized(155.52) == pytest.approx(1.0)

    def test_normalized_round_trip(self):
        assert RTNET_LINK.normalized_to_mbps(
            RTNET_LINK.mbps_to_normalized(32.0)) == pytest.approx(32.0)

    def test_cells_per_second(self):
        assert RTNET_LINK.cells_per_second == pytest.approx(
            OC3_LINE_RATE_BPS / CELL_BITS)


class TestCellsForBytes:
    def test_exact_payload(self):
        assert cells_for_bytes(48) == 1
        assert cells_for_bytes(96) == 2

    def test_rounds_up(self):
        assert cells_for_bytes(1) == 1
        assert cells_for_bytes(49) == 2

    def test_zero(self):
        assert cells_for_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cells_for_bytes(-1)


class TestCyclicBandwidth:
    """The arithmetic behind Table 1's bandwidth column."""

    def test_high_speed_class(self):
        # 4 KB every 1 ms -> about 32 Mbps (Table 1: 32).
        mbps = bandwidth_for_cyclic(4 * 1024, 1e-3) / 1e6
        assert mbps == pytest.approx(32, rel=0.15)

    def test_medium_speed_class(self):
        # 64 KB every 30 ms -> about 17.5 Mbps (Table 1: 17.5).
        mbps = bandwidth_for_cyclic(64 * 1024, 30e-3) / 1e6
        assert mbps == pytest.approx(17.5, rel=0.15)

    def test_low_speed_class(self):
        # 128 KB every 150 ms -> about 6.8 Mbps (Table 1: 6.8).
        mbps = bandwidth_for_cyclic(128 * 1024, 150e-3) / 1e6
        assert mbps == pytest.approx(6.8, rel=0.15)

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_for_cyclic(1024, 0)

    def test_scales_linearly_with_memory(self):
        one = bandwidth_for_cyclic(48 * 100, 1.0)
        two = bandwidth_for_cyclic(48 * 200, 1.0)
        assert two == pytest.approx(2 * one)
