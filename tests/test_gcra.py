"""Dual leaky-bucket shaping/policing tests."""

import pytest

from repro.core.traffic import VBRParameters, cbr, worst_case_cell_times
from repro.sim.gcra import DualLeakyBucket, bucket_depth


VBR = VBRParameters(pcr=0.5, scr=0.1, mbs=4)


class TestBucketDepth:
    def test_cbr_depth_is_one(self):
        assert bucket_depth(cbr(0.25)) == 1.0

    def test_vbr_depth_formula(self):
        # 1 + (4-1) * (1 - 0.2) = 3.4
        assert bucket_depth(VBR) == pytest.approx(3.4)

    def test_mbs_one_depth_is_one(self):
        assert bucket_depth(VBRParameters(pcr=0.5, scr=0.1, mbs=1)) == 1.0


class TestGreedyBehaviour:
    def test_greedy_matches_figure_1(self):
        """Greedy emission through the bucket = MBS at PCR, then SCR."""
        bucket = DualLeakyBucket(VBR)
        emissions = [bucket.emit_earliest(0.0) for _ in range(7)]
        expected = worst_case_cell_times(VBR, 7)
        assert emissions == pytest.approx(expected)

    def test_cbr_greedy_is_periodic(self):
        bucket = DualLeakyBucket(cbr(0.25))
        emissions = [bucket.emit_earliest(0.0) for _ in range(4)]
        assert emissions == pytest.approx([0, 4, 8, 12])

    def test_idle_refills_up_to_depth(self):
        bucket = DualLeakyBucket(VBR)
        for _ in range(4):
            bucket.emit_earliest(0.0)
        assert bucket.tokens < 1.0
        # A long idle period restores the full burst allowance.
        start = bucket.earliest_conforming(1000.0)
        assert start == 1000.0
        assert bucket.tokens == pytest.approx(bucket_depth(VBR))


class TestConformance:
    def test_early_second_cell_rejected(self):
        bucket = DualLeakyBucket(VBR)
        bucket.record_emission(0.0)
        assert not bucket.conforms(1.0)       # < 1/PCR = 2 apart
        assert bucket.conforms(2.0)

    def test_burst_beyond_mbs_rejected(self):
        bucket = DualLeakyBucket(VBR)
        for index in range(4):
            bucket.record_emission(index * 2.0)
        # A fifth peak-spaced cell must not conform (tokens exhausted).
        assert not bucket.conforms(8.0)

    def test_nonconforming_emission_raises(self):
        bucket = DualLeakyBucket(VBR)
        bucket.record_emission(0.0)
        with pytest.raises(ValueError, match="violates"):
            bucket.record_emission(0.5)

    def test_time_backwards_rejected_by_policer(self):
        bucket = DualLeakyBucket(VBR)
        bucket.record_emission(10.0)
        with pytest.raises(ValueError, match="backwards"):
            bucket.conforms(5.0)

    def test_earliest_conforming_clamps_stale_now(self):
        # Shaper callers may ask from an earlier wall clock; the answer
        # is still measured from the bucket's own clock.
        bucket = DualLeakyBucket(VBR)
        bucket.record_emission(10.0)
        assert bucket.earliest_conforming(0.0) == pytest.approx(12.0)

    def test_policer_is_stateless_check(self):
        bucket = DualLeakyBucket(VBR)
        before = bucket.tokens
        bucket.conforms(0.0)
        assert bucket.tokens == before


class TestShapedStreamBoundedByEnvelope:
    def test_any_greedy_prefix_within_envelope(self):
        """Cells emitted through the bucket never outrun Algorithm 2.1.

        The discrete cell process (each cell arriving over one cell
        time) must stay below the continuous envelope at all probes.
        """
        envelope = VBR.worst_case_stream()
        bucket = DualLeakyBucket(VBR)
        emissions = [bucket.emit_earliest(0.0) for _ in range(25)]

        def discrete_bits(t):
            return sum(min(1.0, max(0.0, t - start)) for start in emissions)

        probes = [i * 0.37 for i in range(400)]
        for t in probes:
            assert envelope.bits(t) >= discrete_bits(t) - 1e-9
