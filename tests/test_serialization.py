"""JSON-safe round-trips of numbers, contracts, topologies, requests."""

import json
from fractions import Fraction as F

import pytest

from repro.core.traffic import VBRParameters, cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.serialization import (
    SerializationError,
    network_from_dict,
    network_to_dict,
    number_from_json,
    number_to_json,
    request_from_dict,
    request_to_dict,
    traffic_from_dict,
    traffic_to_dict,
)
from repro.network.topology import line_network, ring_network


class TestNumbers:
    @pytest.mark.parametrize("value", [0, 3, 0.25, F(1, 3), F(7, 2)])
    def test_round_trip(self, value):
        encoded = number_to_json(value)
        json.dumps(encoded)   # must be JSON-safe
        assert number_from_json(encoded) == value

    def test_fraction_is_exact(self):
        assert number_from_json(number_to_json(F(1, 3))) == F(1, 3)

    def test_bad_rational_rejected(self):
        with pytest.raises(SerializationError):
            number_from_json("one/third")
        with pytest.raises(SerializationError):
            number_from_json("1/0")


class TestTraffic:
    def test_vbr_round_trip(self):
        params = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        data = traffic_to_dict(params)
        json.dumps(data)
        assert traffic_from_dict(data) == params

    def test_cbr_round_trip(self):
        params = cbr(0.25)
        assert traffic_from_dict(traffic_to_dict(params)) == params

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError, match="missing"):
            traffic_from_dict({"pcr": 0.5})


class TestNetwork:
    def test_round_trip_preserves_structure(self):
        original = ring_network(4, bounds={0: 32, 1: 64},
                                terminals_per_switch=2)
        data = network_to_dict(original)
        json.dumps(data)
        rebuilt = network_from_dict(data)
        assert sorted(n.name for n in rebuilt.nodes()) == \
            sorted(n.name for n in original.nodes())
        assert sorted(l.name for l in rebuilt.links()) == \
            sorted(l.name for l in original.links())
        link = rebuilt.find_link("s0", "s1")
        assert link.bounds == {0: 32, 1: 64}

    def test_round_trip_preserves_kinds(self):
        rebuilt = network_from_dict(network_to_dict(
            line_network(2, bounds={0: 32}, terminals_per_switch=1)))
        assert rebuilt.node("s0").is_switch
        assert rebuilt.node("t0.0").is_terminal

    def test_fraction_bounds_survive(self):
        from repro.network.topology import Network
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        net.add_link("a", "b", bounds={0: F(3, 2)})
        rebuilt = network_from_dict(network_to_dict(net))
        assert rebuilt.find_link("a", "b").bounds == {0: F(3, 2)}

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict({"nodes": [{"name": "x"}]})


class TestRequest:
    def test_round_trip(self):
        net = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        request = ConnectionRequest(
            "vc0", VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=3),
            shortest_path(net, "t0.0", "t2.0"),
            priority=0, delay_bound=F(100))
        data = request_to_dict(request)
        json.dumps(data)
        rebuilt = request_from_dict(data, net)
        assert rebuilt.name == request.name
        assert rebuilt.traffic == request.traffic
        assert rebuilt.route == request.route
        assert rebuilt.delay_bound == F(100)

    def test_no_delay_bound(self):
        net = line_network(2, bounds={0: 32}, terminals_per_switch=1)
        request = ConnectionRequest(
            "vc0", cbr(0.25), shortest_path(net, "t0.0", "t1.0"))
        rebuilt = request_from_dict(request_to_dict(request), net)
        assert rebuilt.delay_bound is None

    def test_route_validated_against_network(self):
        small = line_network(2, bounds={0: 32}, terminals_per_switch=1)
        big = line_network(3, bounds={0: 32}, terminals_per_switch=1)
        request = ConnectionRequest(
            "vc0", cbr(0.25), shortest_path(big, "t0.0", "t2.0"))
        from repro.exceptions import TopologyError
        with pytest.raises(TopologyError):
            request_from_dict(request_to_dict(request), small)
