"""Per-switch admission control (Section 4.3 Steps 1-6)."""

import math
from fractions import Fraction as F

import pytest

from repro.core.bitstream import BitStream, ZERO_STREAM
from repro.core.delay_bound import delay_bound
from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import VBRParameters, cbr
from repro.exceptions import AdmissionError, SwitchRejection

CBR_QUARTER = cbr(F(1, 4)).worst_case_stream()
VBR_STREAM = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4).worst_case_stream()


def make_switch(bound=32, priorities=(0,), name="sw0"):
    switch = SwitchCAC(name)
    switch.configure_link("out", {p: bound for p in priorities})
    return switch


class TestConfiguration:
    def test_advertised_bound(self):
        switch = make_switch(bound=16)
        assert switch.advertised_bound("out", 0) == 16

    def test_unknown_link_rejected(self):
        switch = make_switch()
        with pytest.raises(AdmissionError, match="does not serve|no output"):
            switch.advertised_bound("nope", 0)

    def test_unknown_priority_rejected(self):
        switch = make_switch()
        with pytest.raises(AdmissionError, match="does not serve"):
            switch.advertised_bound("out", 5)

    def test_empty_bounds_rejected(self):
        switch = SwitchCAC("sw")
        with pytest.raises(ValueError):
            switch.configure_link("out", {})

    def test_non_positive_bound_rejected(self):
        switch = SwitchCAC("sw")
        with pytest.raises(ValueError):
            switch.configure_link("out", {0: 0})

    def test_priorities_sorted(self):
        switch = make_switch(priorities=(2, 0, 1))
        assert switch.priorities("out") == [0, 1, 2]


class TestSinglePriorityAdmission:
    def test_first_connection_admitted(self):
        switch = make_switch()
        result = switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        assert result.admitted
        assert result.computed_bounds[0] <= 32
        assert "vc0" in switch.legs

    def test_duplicate_id_rejected(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        with pytest.raises(AdmissionError, match="already admitted"):
            switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)

    def test_check_does_not_mutate(self):
        switch = make_switch()
        switch.check("in0", "out", 0, CBR_QUARTER)
        assert switch.legs == {}
        assert switch.sia("in0", "out", 0) == ZERO_STREAM

    def test_computed_bound_grows_with_load(self):
        switch = make_switch()
        bounds = []
        for index in range(3):
            switch.admit(f"vc{index}", f"in{index}", "out", 0, CBR_QUARTER)
            bounds.append(switch.computed_bound("out", 0))
        assert bounds == sorted(bounds)

    def test_overload_rejected_cleanly(self):
        # Five CBR 1/4 connections exceed the link: the fifth must fail
        # with an infinite computed bound, leaving state untouched.
        switch = make_switch(bound=1000)
        for index in range(4):
            switch.admit(f"vc{index}", f"in{index}", "out", 0, CBR_QUARTER)
        before = dict(switch.legs)
        with pytest.raises(SwitchRejection) as err:
            switch.admit("vc4", "in4", "out", 0, CBR_QUARTER)
        assert err.value.computed_bound == math.inf
        assert switch.legs.keys() == before.keys()

    def test_tight_bound_rejects_clumped_traffic(self):
        # A tiny advertised bound refuses traffic whose worst case
        # exceeds it even though bandwidth is plentiful.
        switch = make_switch(bound=F(1, 2))
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        with pytest.raises(SwitchRejection):
            switch.admit("vc1", "in1", "out", 0, VBR_STREAM.delayed(40))

    def test_single_input_filtering_gives_zero_extra_delay(self):
        """Connections from one already-filtered input queue by <= 1 cell.

        All traffic entering by a single link is serialized by that link;
        the output port can forward it as it arrives.
        """
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        switch.admit("vc1", "in0", "out", 0, CBR_QUARTER)
        assert switch.computed_bound("out", 0) == 0

    def test_in_link_overload_rejected(self):
        """Filtering must not mask a physically impossible input load.

        Two connections entering by the same link with total sustained
        rate above the link rate can never actually arrive that fast;
        the check refuses rather than reporting a bogus zero delay.
        """
        switch = make_switch(bound=1000)
        switch.admit("vc0", "in0", "out", 0,
                     cbr(F(3, 4)).worst_case_stream())
        result = switch.check("in0", "out", 0,
                              cbr(F(1, 2)).worst_case_stream())
        assert not result.admitted
        assert result.computed_bounds[0] == math.inf

    def test_in_link_utilization(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        switch.admit("vc1", "in0", "out", 0, CBR_QUARTER)
        assert switch.in_link_utilization("in0") == F(1, 2)
        assert switch.in_link_utilization("in1") == 0

    def test_two_inputs_can_collide(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        switch.admit("vc1", "in1", "out", 0, CBR_QUARTER)
        assert switch.computed_bound("out", 0) > 0


class TestRelease:
    def test_release_restores_aggregates(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        baseline = switch.sia("in0", "out", 0)
        switch.admit("vc1", "in0", "out", 0, VBR_STREAM)
        switch.release("vc1")
        assert switch.sia("in0", "out", 0) == baseline

    def test_release_unknown_rejected(self):
        switch = make_switch()
        with pytest.raises(AdmissionError, match="not admitted"):
            switch.release("ghost")

    def test_release_all_empties_state(self):
        switch = make_switch()
        for index in range(3):
            switch.admit(f"vc{index}", "in0", "out", 0, CBR_QUARTER)
        for index in range(3):
            switch.release(f"vc{index}")
        assert switch.legs == {}
        assert switch.sia("in0", "out", 0) == ZERO_STREAM
        assert switch.computed_bound("out", 0) == 0

    def test_admit_release_cycle_consistency(self):
        """Long admit/release sequences never drift from ground truth."""
        switch = make_switch()
        light_cbr = cbr(F(1, 16)).worst_case_stream()
        light_vbr = VBRParameters(
            pcr=F(1, 4), scr=F(1, 32), mbs=3).worst_case_stream()
        streams = [light_cbr, light_vbr, light_cbr.delayed(F(7)),
                   light_vbr.delayed(F(3))]
        for round_index in range(3):
            for index, stream in enumerate(streams):
                switch.admit(f"vc{round_index}.{index}",
                             f"in{index % 2}", "out", 0, stream)
            assert switch.verify_consistency()
            switch.release(f"vc{round_index}.1")
            switch.release(f"vc{round_index}.3")
            assert switch.verify_consistency()

    def test_readmit_after_release(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        switch.release("vc0")
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        assert "vc0" in switch.legs


class TestMultiPriority:
    def test_lower_priority_sees_interference(self):
        switch = make_switch(bound=64, priorities=(0, 1))
        switch.admit("hi", "in0", "out", 0, CBR_QUARTER)
        switch.admit("lo", "in1", "out", 1, CBR_QUARTER)
        low_bound = switch.computed_bound("out", 1)
        high_bound = switch.computed_bound("out", 0)
        assert low_bound >= high_bound

    def test_new_high_priority_checks_lower_bounds(self):
        # Fill priority 1 close to its bound, then add priority-0
        # traffic whose interference would push priority 1 over.
        switch = SwitchCAC("sw")
        switch.configure_link("out", {0: 500, 1: F(3)})
        for index in range(3):
            switch.admit(f"lo{index}", f"in{index}", "out", 1, CBR_QUARTER)
        low_before = switch.computed_bound("out", 1)
        assert low_before <= 3
        with pytest.raises(SwitchRejection) as err:
            switch.admit("hi", "in3", "out", 0,
                         VBR_STREAM.delayed(60))
        assert err.value.priority == 1

    def test_higher_priority_unaffected_by_lower(self):
        switch = make_switch(bound=64, priorities=(0, 1))
        switch.admit("hi", "in0", "out", 0, CBR_QUARTER)
        before = switch.computed_bound("out", 0)
        switch.admit("lo", "in1", "out", 1, VBR_STREAM)
        assert switch.computed_bound("out", 0) == before

    def test_check_reports_all_affected_priorities(self):
        switch = make_switch(bound=64, priorities=(0, 1, 2))
        switch.admit("p1", "in0", "out", 1, CBR_QUARTER)
        switch.admit("p2", "in1", "out", 2, CBR_QUARTER)
        result = switch.check("in2", "out", 0, CBR_QUARTER)
        assert set(result.computed_bounds) == {0, 1, 2}

    def test_idle_lower_priorities_skipped(self):
        switch = make_switch(bound=64, priorities=(0, 1, 2))
        result = switch.check("in0", "out", 0, CBR_QUARTER)
        assert set(result.computed_bounds) == {0}


class TestFilteringAblation:
    def test_unfiltered_bounds_are_looser(self):
        """Per-input link filtering tightens the computed bounds."""
        kwargs = dict(bound=10_000)
        filtered = make_switch(**kwargs)
        coarse = SwitchCAC("sw-nofilter", filter_per_input=False)
        coarse.configure_link("out", {0: 10_000})
        heavy = VBR_STREAM.delayed(F(20))
        for index in range(3):
            filtered.admit(f"vc{index}", f"in{index % 2}", "out", 0, heavy)
            coarse.admit(f"vc{index}", f"in{index % 2}", "out", 0, heavy)
        assert coarse.computed_bound("out", 0) >= \
            filtered.computed_bound("out", 0)


class TestDiagnostics:
    def test_utilization_sums_long_run_rates(self):
        switch = make_switch()
        switch.admit("vc0", "in0", "out", 0, CBR_QUARTER)
        switch.admit("vc1", "in1", "out", 0, CBR_QUARTER)
        assert switch.utilization("out") == F(1, 2)

    def test_buffer_requirement_bounded_by_delay(self):
        # With capacity 1, a backlog of B cells drains in B cell times,
        # so buffer occupancy never exceeds the computed delay bound.
        switch = make_switch()
        for index in range(3):
            switch.admit(f"vc{index}", f"in{index}", "out", 0, CBR_QUARTER)
        assert switch.buffer_requirement("out", 0) <= \
            switch.computed_bound("out", 0) + 1e-9

    def test_repr_mentions_name(self):
        assert "sw0" in repr(make_switch())
