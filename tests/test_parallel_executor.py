"""The repro.parallel fan-out engine and the metrics merge it relies on."""

import multiprocessing

import pytest

from repro.obs import metrics as om
from repro.parallel import (
    ParallelExecutor,
    available_parallelism,
    parallel_map,
    resolve_jobs,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="no fork start method on this platform")


# Module-level so the workers can unpickle them by reference.
def double(x):
    return x * 2


def add(a, b):
    return a + b


def boom(x):
    if x == 3:
        raise ValueError("boom at 3")
    return x


def observe_item(x):
    registry = om.get_registry()
    registry.counter("par_items_total").inc()
    registry.gauge("par_max_item").set_max(x)
    registry.histogram("par_item_value", buckets=(1.0, 10.0)).observe(float(x))
    return x


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == available_parallelism()

    def test_positive_passthrough(self):
        assert resolve_jobs(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_available_parallelism_sane(self):
        assert available_parallelism() >= 1


class TestSerialPath:
    def test_jobs_1_never_creates_a_pool(self):
        pool = ParallelExecutor(jobs=1)
        assert pool.map(double, [3, 1, 2]) == [6, 2, 4]
        assert pool._pool is None
        assert pool.last_fallback is None

    def test_single_item_stays_in_process(self):
        pool = ParallelExecutor(jobs=4)
        assert pool.map(double, [7]) == [14]
        assert pool._pool is None

    def test_unpicklable_fn_falls_back(self):
        pool = ParallelExecutor(jobs=2)
        result = pool.map(lambda x: x + 1, [1, 2, 3])
        assert result == [2, 3, 4]
        assert "not picklable" in pool.last_fallback

    def test_unpicklable_item_falls_back(self):
        pool = ParallelExecutor(jobs=2)
        items = [lambda: 1, lambda: 2]
        assert pool.map(callable, items) == [True, True]
        assert "not picklable" in pool.last_fallback

    def test_parallel_map_serial(self):
        assert parallel_map(double, [1, 2], jobs=1) == [2, 4]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=4).map(double, []) == []

    def test_exceptions_propagate_serially(self):
        with pytest.raises(ValueError, match="boom at 3"):
            ParallelExecutor(jobs=1).map(boom, [1, 3, 5])


@needs_fork
class TestParallelPath:
    def test_matches_serial(self):
        with ParallelExecutor(jobs=2) as pool:
            assert pool.map(double, list(range(20))) == [
                double(x) for x in range(20)]
            assert pool.last_fallback is None
            assert pool._pool is not None

    def test_pool_reused_across_maps(self):
        with ParallelExecutor(jobs=2) as pool:
            pool.map(double, list(range(8)))
            first = pool._pool
            pool.map(double, list(range(8)))
            assert pool._pool is first

    def test_starmap(self):
        with ParallelExecutor(jobs=2) as pool:
            assert pool.starmap(add, [(1, 2), (3, 4), (5, 6), (7, 8)]) \
                == [3, 7, 11, 15]

    def test_explicit_chunk_size(self):
        with ParallelExecutor(jobs=2, chunk_size=1) as pool:
            assert pool.map(double, [5, 6, 7]) == [10, 12, 14]

    def test_exceptions_propagate(self):
        with ParallelExecutor(jobs=2, chunk_size=1) as pool:
            with pytest.raises(ValueError, match="boom at 3"):
                pool.map(boom, [1, 2, 3, 4])

    def test_close_is_idempotent(self):
        pool = ParallelExecutor(jobs=2)
        pool.map(double, [1, 2, 3, 4])
        pool.close()
        assert pool._pool is None
        pool.close()

    def test_parallel_map_one_shot(self):
        assert parallel_map(double, list(range(10)), jobs=2) == [
            double(x) for x in range(10)]

    def test_repr_reports_pool_state(self):
        pool = ParallelExecutor(jobs=2)
        assert "idle" in repr(pool)
        pool.map(double, [1, 2, 3, 4])
        assert "live" in repr(pool)
        pool.close()

    def test_worker_metrics_travel_back(self):
        previous = om.set_registry(om.MetricsRegistry())
        try:
            registry = om.get_registry()
            with ParallelExecutor(jobs=2, chunk_size=2) as pool:
                pool.map(observe_item, list(range(1, 9)))
            assert registry.value("par_items_total") == 8
            assert registry.value("par_max_item") == 8
            histogram = registry.histogram("par_item_value",
                                           buckets=(1.0, 10.0))
            assert histogram.count == 8
            assert histogram.sum == float(sum(range(1, 9)))
        finally:
            om.set_registry(previous)

    def test_disabled_registry_captures_nothing(self):
        assert isinstance(om.get_registry(), om.NullRegistry)
        with ParallelExecutor(jobs=2) as pool:
            pool.map(observe_item, list(range(8)))
        assert isinstance(om.get_registry(), om.NullRegistry)


class TestMergeSnapshot:
    def test_counters_add(self):
        ours, theirs = om.MetricsRegistry(), om.MetricsRegistry()
        ours.counter("work_total", kind="a").inc(2)
        theirs.counter("work_total", kind="a").inc(3)
        theirs.counter("work_total", kind="b").inc(1)
        ours.merge_snapshot(theirs.samples())
        assert ours.value("work_total", kind="a") == 5
        assert ours.value("work_total", kind="b") == 1

    def test_gauges_keep_the_max(self):
        ours, theirs = om.MetricsRegistry(), om.MetricsRegistry()
        ours.gauge("worst_delay").set(10)
        theirs.gauge("worst_delay").set(4)
        ours.merge_snapshot(theirs.samples())
        assert ours.value("worst_delay") == 10
        theirs.gauge("worst_delay").set(25)
        ours.merge_snapshot(theirs.samples())
        assert ours.value("worst_delay") == 25

    def test_histograms_merge_bucket_by_bucket(self):
        ours, theirs = om.MetricsRegistry(), om.MetricsRegistry()
        reference = om.MetricsRegistry()
        bounds = (1.0, 5.0, 25.0)
        for value in (0.5, 3.0, 100.0):
            ours.histogram("rtt", buckets=bounds).observe(value)
            reference.histogram("rtt", buckets=bounds).observe(value)
        for value in (2.0, 2.0, 30.0):
            theirs.histogram("rtt", buckets=bounds).observe(value)
            reference.histogram("rtt", buckets=bounds).observe(value)
        ours.merge_snapshot(theirs.samples())
        merged = ours.histogram("rtt", buckets=bounds)
        expected = reference.histogram("rtt", buckets=bounds)
        assert merged.bucket_counts == expected.bucket_counts
        assert merged.count == expected.count
        assert merged.sum == expected.sum
        assert ours.samples() == reference.samples()

    def test_histogram_into_empty_registry(self):
        theirs = om.MetricsRegistry()
        theirs.histogram("rtt", buckets=(1.0, 2.0)).observe(1.5)
        ours = om.MetricsRegistry()
        ours.merge_snapshot(theirs.samples())
        assert ours.samples() == theirs.samples()

    def test_histogram_layout_mismatch_raises(self):
        ours, theirs = om.MetricsRegistry(), om.MetricsRegistry()
        ours.histogram("rtt", buckets=(1.0, 2.0)).observe(0.5)
        theirs.histogram("rtt", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket layout"):
            ours.merge_snapshot(theirs.samples())

    def test_kind_conflict_raises(self):
        ours, theirs = om.MetricsRegistry(), om.MetricsRegistry()
        ours.gauge("thing").set(1)
        theirs.counter("thing").inc()
        with pytest.raises(ValueError, match="already registered"):
            ours.merge_snapshot(theirs.samples())

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            om.MetricsRegistry().merge_snapshot(
                [{"name": "x", "kind": "meter", "labels": {}, "value": 1}])

    def test_null_registry_merge_is_a_noop(self):
        om.NullRegistry().merge_snapshot(
            [{"name": "x", "kind": "counter", "labels": {}, "value": 1}])

    def test_merge_is_associative_with_disjoint_names(self):
        ours = om.MetricsRegistry()
        one, two = om.MetricsRegistry(), om.MetricsRegistry()
        one.counter("a_total").inc(1)
        two.gauge("b_peak").set(7)
        ours.merge_snapshot(one.samples())
        ours.merge_snapshot(two.samples())
        assert ours.value("a_total") == 1
        assert ours.value("b_peak") == 7
