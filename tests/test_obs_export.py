"""Exporter golden tests: JSONL round trip, Prometheus lint, tables."""

import io
import json
import re

import pytest

from repro.obs.events import EventBus
from repro.obs.export import (
    JsonlEventSink,
    format_span_tree,
    metrics_table,
    metrics_to_jsonl,
    samples_from_jsonl,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.robustness.retry import ManualClock


def loaded_registry():
    registry = MetricsRegistry()
    registry.counter("cac_checks_total", switch="s0").inc(4)
    registry.counter("cac_checks_total", switch="s1").inc(1)
    registry.gauge("sim_worst_e2e_delay").set(96.0)
    hist = registry.histogram("signaling_hop_rtt",
                              buckets=(1.0, 8.0), phase="reserve")
    hist.observe(0.5)
    hist.observe(8.0)
    hist.observe(30.0)
    return registry


class TestJsonl:
    def test_round_trip_is_lossless(self):
        registry = loaded_registry()
        samples = samples_from_jsonl(metrics_to_jsonl(registry))
        assert samples == registry.samples()

    def test_golden_shape(self):
        text = metrics_to_jsonl(loaded_registry())
        lines = text.splitlines()
        assert len(lines) == 4              # 2 counters + gauge + histogram
        first = json.loads(lines[0])
        assert first == {"name": "cac_checks_total", "kind": "counter",
                         "labels": {"switch": "s0"}, "value": 4}
        hist = json.loads(lines[2])         # families sort by name
        assert hist["buckets"] == [[1.0, 1], [8.0, 2], ["+Inf", 3]]
        assert hist["count"] == 3 and hist["sum"] == 38.5

    def test_every_line_is_valid_json(self):
        for line in metrics_to_jsonl(loaded_registry()).splitlines():
            json.loads(line)

    def test_empty_registry_exports_empty(self):
        assert metrics_to_jsonl(MetricsRegistry()) == ""
        assert samples_from_jsonl("") == []


#: One Prometheus exposition line: metric sample or comment.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (?:[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf)|NaN)$"
)


def lint_prometheus(text: str):
    """A minimal exposition-format linter; returns sample names seen."""
    assert text.endswith("\n")
    names = set()
    typed = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed[name] = kind
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        names.add(line.split("{")[0].split(" ")[0])
    return names, typed


class TestPrometheus:
    def test_golden_output(self):
        text = to_prometheus(loaded_registry())
        assert text == (
            "# HELP cac_checks_total Admission checks (Steps 2-6) run at "
            "a switch.\n"
            "# TYPE cac_checks_total counter\n"
            'cac_checks_total{switch="s0"} 4\n'
            'cac_checks_total{switch="s1"} 1\n'
            "# HELP signaling_hop_rtt Simulated round-trip time of one "
            "successful delivery (includes backoff of earlier attempts).\n"
            "# TYPE signaling_hop_rtt histogram\n"
            'signaling_hop_rtt_bucket{phase="reserve",le="1"} 1\n'
            'signaling_hop_rtt_bucket{phase="reserve",le="8"} 2\n'
            'signaling_hop_rtt_bucket{phase="reserve",le="+Inf"} 3\n'
            'signaling_hop_rtt_sum{phase="reserve"} 38.5\n'
            'signaling_hop_rtt_count{phase="reserve"} 3\n'
            "# HELP sim_worst_e2e_delay Largest observed end-to-end "
            "queueing delay (cell times).\n"
            "# TYPE sim_worst_e2e_delay gauge\n"
            "sim_worst_e2e_delay 96\n"
        )

    def test_output_passes_the_linter(self):
        names, typed = lint_prometheus(to_prometheus(loaded_registry()))
        assert typed == {"cac_checks_total": "counter",
                         "signaling_hop_rtt": "histogram",
                         "sim_worst_e2e_delay": "gauge"}
        assert "signaling_hop_rtt_bucket" in names

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='we"ird\\thing').inc()
        text = to_prometheus(registry)
        assert r'path="we\"ird\\thing"' in text

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("bad-name").inc()
        with pytest.raises(ValueError, match="invalid Prometheus metric"):
            to_prometheus(registry)

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestTable:
    def test_table_lists_every_instrument(self):
        text = metrics_table(loaded_registry())
        assert "cac_checks_total" in text
        assert "switch=s0" in text
        assert "count=3 sum=38.5" in text

    def test_empty_registry(self):
        assert "no metrics recorded" in metrics_table(MetricsRegistry())


class TestSpanTree:
    def test_format_is_indented_with_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root", conn="vc0"):
            clock.advance(2.0)
            with tracer.span("child"):
                clock.advance(3.0)
        text = format_span_tree(tracer.roots[0])
        assert text == "root [5] conn=vc0\n  child [3]"


class TestJsonlEventSink:
    def test_streams_events_as_json_lines(self):
        bus = EventBus()
        stream = io.StringIO()
        with JsonlEventSink(stream, bus) as sink:
            bus.emit("signaling", "setup", time=1.0, connection="vc0")
            bus.emit("journal", "commit", time=2.0)
        assert sink.written == 2
        lines = [json.loads(line)
                 for line in stream.getvalue().splitlines()]
        assert lines[0] == {"category": "signaling", "name": "setup",
                            "time": 1.0,
                            "fields": {"connection": "vc0"}}

    def test_file_target_is_written_and_closed(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(str(path), bus):
            bus.emit("a", "b", time=0.0)
        assert json.loads(path.read_text())["category"] == "a"
