"""The failure detector: suspicion machine, flap damping, latency."""

import pytest

from repro.robustness.health import DOWN, SUSPECT, UP, HealthMonitor
from repro.robustness.retry import ManualClock


def monitor(**kwargs):
    return HealthMonitor(clock=ManualClock(), **kwargs)


class TestSuspicionStateMachine:
    def test_unseen_target_is_up(self):
        assert monitor().state("anything") == UP
        assert not monitor().is_down("anything")

    def test_single_timeout_is_only_suspect(self):
        health = monitor()
        newly_down = health.record_timeout("s0->s1")
        assert not newly_down
        assert health.state("s0->s1") == SUSPECT
        assert not health.is_down("s0->s1")

    def test_threshold_consecutive_timeouts_declare_down(self):
        health = monitor(suspicion_threshold=3)
        assert not health.record_timeout("s0->s1")
        assert not health.record_timeout("s0->s1")
        assert health.record_timeout("s0->s1")  # newly down
        assert health.state("s0->s1") == DOWN
        # Further timeouts are not *new* declarations.
        assert not health.record_timeout("s0->s1")

    def test_success_resets_suspect_to_up(self):
        health = monitor(suspicion_threshold=3)
        health.record_timeout("s0->s1")
        health.record_timeout("s0->s1")
        health.record_success("s0->s1")
        assert health.state("s0->s1") == UP
        # The consecutive count restarted: two more timeouts only suspect.
        health.record_timeout("s0->s1")
        health.record_timeout("s0->s1")
        assert health.state("s0->s1") == SUSPECT

    def test_success_recovers_down_target_when_not_flapping(self):
        health = monitor(suspicion_threshold=2)
        health.record_timeout("s0->s1")
        health.record_timeout("s0->s1")
        assert health.is_down("s0->s1")
        health.record_success("s0->s1")
        assert health.state("s0->s1") == UP

    def test_targets_are_independent(self):
        health = monitor(suspicion_threshold=2)
        health.record_timeout("a", kind="link")
        health.record_timeout("a", kind="link")
        health.record_timeout("b", kind="switch")
        assert health.is_down("a")
        assert health.state("b") == SUSPECT
        assert health.down_targets() == ["a"]
        assert health.down_targets(kind="switch") == []
        assert health.snapshot() == {
            "a": ("link", DOWN), "b": ("switch", SUSPECT),
        }


class TestFlapDamping:
    def flap(self, health, target, times, clock, gap=1.0):
        """Bounce the target down/up ``times`` times."""
        for _ in range(times):
            while not health.is_down(target):
                health.record_timeout(target)
            clock.advance(gap)
            health.record_success(target)

    def test_flapping_target_disbelieves_success(self):
        clock = ManualClock()
        health = HealthMonitor(clock=clock, suspicion_threshold=2,
                               flap_window=240.0, flap_threshold=3,
                               hold_down=60.0)
        # Two bounces are believed...
        self.flap(health, "link", 2, clock)
        assert health.state("link") == UP
        # ...the third down inside the window engages damping.
        health.record_timeout("link")
        health.record_timeout("link")
        assert health.is_down("link")
        health.record_success("link")
        assert health.is_down("link"), "success believed while flapping"

    def test_hold_down_elapsed_readmits_success(self):
        clock = ManualClock()
        health = HealthMonitor(clock=clock, suspicion_threshold=2,
                               flap_window=240.0, flap_threshold=3,
                               hold_down=60.0)
        self.flap(health, "link", 3, clock)
        assert health.is_down("link")
        clock.advance(60.0)  # quiet for hold_down since last timeout
        health.record_success("link")
        assert health.state("link") == UP

    def test_old_downs_age_out_of_the_window(self):
        clock = ManualClock()
        health = HealthMonitor(clock=clock, suspicion_threshold=1,
                               flap_window=100.0, flap_threshold=2,
                               hold_down=50.0)
        health.record_timeout("link")          # down #1 at t=0
        clock.advance(1.0)
        health.record_success("link")
        clock.advance(200.0)                   # down #1 leaves the window
        health.record_timeout("link")          # down #2 at t=201
        health.record_success("link")          # only 1 recent down: believed
        assert health.state("link") == UP


class TestGroundTruthLatency:
    def test_listener_stamps_failure_instant(self):
        clock = ManualClock()
        health = HealthMonitor(clock=clock, suspicion_threshold=2)
        listener = health.link_listener()
        clock.advance(10.0)
        listener("s0->s1", False)  # injector fails the link at t=10
        clock.advance(5.0)
        health.record_timeout("s0->s1")
        clock.advance(5.0)
        health.record_timeout("s0->s1")
        assert health.is_down("s0->s1")
        assert health.detection_latency("s0->s1") == pytest.approx(10.0)

    def test_latency_unknown_without_ground_truth(self):
        health = monitor(suspicion_threshold=1)
        health.record_timeout("s0->s1")
        assert health.is_down("s0->s1")
        assert health.detection_latency("s0->s1") is None

    def test_listener_does_not_move_the_state_machine(self):
        health = monitor()
        health.link_listener()("s0->s1", False)
        assert health.state("s0->s1") == UP

    def test_repair_clears_the_stamp(self):
        clock = ManualClock()
        health = HealthMonitor(clock=clock, suspicion_threshold=1)
        listener = health.link_listener()
        listener("s0->s1", False)
        listener("s0->s1", True)
        health.record_timeout("s0->s1")
        assert health.detection_latency("s0->s1") is None


class TestHooksAndValidation:
    def test_on_down_fires_once_per_transition(self):
        health = monitor(suspicion_threshold=2)
        fired = []
        health.on_down(lambda target, kind: fired.append((target, kind)))
        health.record_timeout("s0->s1", kind="link")
        health.record_timeout("s0->s1", kind="link")
        health.record_timeout("s0->s1", kind="link")  # already down
        assert fired == [("s0->s1", "link")]
        health.record_success("s0->s1")
        health.record_timeout("s0->s1")
        health.record_timeout("s0->s1")
        assert fired == [("s0->s1", "link")] * 2

    def test_detection_counter(self, obs_enabled):
        registry, _tracer = obs_enabled
        health = monitor(suspicion_threshold=1)
        health.record_timeout("s0->s1", kind="link")
        health.record_timeout("s1", kind="switch")
        assert registry.total("cac_failure_detections_total") == 2

    @pytest.mark.parametrize("kwargs", [
        {"suspicion_threshold": 0},
        {"flap_threshold": 1},
        {"flap_window": 0},
        {"hold_down": -1.0},
    ])
    def test_bad_parameters_refused(self, kwargs):
        with pytest.raises(ValueError):
            monitor(**kwargs)
