"""RingAnalysis correctness and the figure drivers (Section 5)."""

import math

import pytest

from repro.exceptions import AdmissionError
from repro.rtnet import (
    RingAnalysis,
    asymmetric_capacity_curve,
    asymmetric_workload,
    broadcast_route,
    establish_workload,
    priority_capacity_curve,
    ring_node,
    soft_hard_capacity_curve,
    symmetric_delay_curve,
    symmetric_workload,
)


class TestRingAnalysisAgainstFullCac:
    """The direct path must match the procedural CAC machinery exactly."""

    @pytest.mark.parametrize("ring_nodes,terminals,load", [
        (4, 1, 0.5),
        (5, 2, 0.4),
        (3, 3, 0.6),
    ])
    def test_symmetric_link_bounds_match(self, ring_nodes, terminals, load):
        workload = symmetric_workload(load, ring_nodes, terminals)
        analysis = RingAnalysis(workload, ring_nodes)
        cac, _est = establish_workload(workload, ring_nodes, terminals)
        for k in range(ring_nodes):
            link = f"ring{k}->ring{(k + 1) % ring_nodes}"
            direct = float(analysis.link_bound(k, 0))
            procedural = float(
                cac.switch(ring_node(k)).computed_bound(link, 0))
            assert direct == pytest.approx(procedural, abs=1e-9)

    def test_symmetric_e2e_bounds_match(self):
        workload = symmetric_workload(0.45, 5, 2)
        analysis = RingAnalysis(workload, 5)
        cac, _est = establish_workload(workload, 5, 2)
        for node in range(5):
            route = broadcast_route(cac.network, node, 0)
            assert float(analysis.e2e_bound(node, 0)) == pytest.approx(
                float(cac.computed_e2e_bound(route, 0)), abs=1e-9)

    def test_asymmetric_bounds_match(self):
        workload = asymmetric_workload(0.4, 0.5, 4, 2)
        analysis = RingAnalysis(workload, 4)
        cac, _est = establish_workload(workload, 4, 2)
        for k in range(4):
            link = f"ring{k}->ring{(k + 1) % 4}"
            assert float(analysis.link_bound(k, 0)) == pytest.approx(
                float(cac.switch(ring_node(k)).computed_bound(link, 0)),
                abs=1e-9)

    def test_soft_policy_matches(self):
        workload = symmetric_workload(0.4, 4, 2)
        analysis = RingAnalysis(workload, 4, cdv_policy="soft")
        cac, _est = establish_workload(workload, 4, 2, cdv_policy="soft")
        link = "ring0->ring1"
        assert float(analysis.link_bound(0, 0)) == pytest.approx(
            float(cac.switch("ring0").computed_bound(link, 0)), abs=1e-9)


class TestRingAnalysisStructure:
    def test_symmetric_links_identical(self):
        analysis = RingAnalysis(symmetric_workload(0.5, 6, 2), 6)
        bounds = analysis.all_link_bounds(0)
        assert all(b == pytest.approx(bounds[0]) for b in bounds)

    def test_bounds_grow_with_load(self):
        low = RingAnalysis(symmetric_workload(0.2, 6, 2), 6)
        high = RingAnalysis(symmetric_workload(0.6, 6, 2), 6)
        assert high.worst_link_bound(0) > low.worst_link_bound(0)

    def test_bounds_grow_with_burstiness(self):
        """More terminals per node (same load) means burstier nodes."""
        smooth = RingAnalysis(symmetric_workload(0.4, 6, 1), 6)
        bursty = RingAnalysis(symmetric_workload(0.4, 6, 8), 6)
        assert bursty.worst_link_bound(0) > smooth.worst_link_bound(0)

    def test_soft_bounds_below_hard(self):
        workload = symmetric_workload(0.5, 6, 4)
        hard = RingAnalysis(workload, 6, cdv_policy="hard")
        soft = RingAnalysis(workload, 6, cdv_policy="soft")
        assert soft.worst_link_bound(0) <= hard.worst_link_bound(0)

    def test_e2e_is_sum_of_route_links(self):
        analysis = RingAnalysis(asymmetric_workload(0.4, 0.6, 5, 1), 5)
        expected = sum(analysis.link_bound((2 + j) % 5, 0)
                       for j in range(4))
        assert analysis.e2e_bound(2, 0) == expected

    def test_missing_priority_bound_rejected(self):
        workload = symmetric_workload(0.4, 4, 1, priority=2)
        with pytest.raises(ValueError, match="priority 2"):
            RingAnalysis(workload, 4, node_bound={0: 32})

    def test_feasible_checks_queue_and_deadline(self):
        analysis = RingAnalysis(symmetric_workload(0.3, 4, 1), 4)
        assert analysis.feasible()
        assert not analysis.feasible(queue_bounds={0: 1e-6})
        assert not analysis.feasible(e2e_requirements={0: 1e-6})

    def test_interference_empty_for_single_priority(self):
        analysis = RingAnalysis(symmetric_workload(0.3, 4, 1), 4)
        assert analysis.interference_stream(0, 0).is_zero

    def test_two_priority_interference(self):
        workload = asymmetric_workload(
            0.4, 0.5, 4, 2, hot_priority=0, other_priority=1)
        analysis = RingAnalysis(workload, 4, node_bound={0: 32, 1: 128})
        assert not analysis.interference_stream(1, 1).is_zero
        assert analysis.link_bound(1, 1) >= analysis.link_bound(1, 0)


class TestFigure10Driver:
    def test_paper_headline_n1(self):
        """N=1: 75% load supported within the 1 ms (370 cell) bound."""
        points = symmetric_delay_curve([0.75], terminals_per_node=1)
        assert points[0].admissible
        assert points[0].delay_bound <= 370

    def test_paper_headline_n16(self):
        """N=16: about 35% supported with a bound near 370 cells."""
        points = symmetric_delay_curve([0.35], terminals_per_node=16)
        assert points[0].admissible
        assert points[0].delay_bound == pytest.approx(370, rel=0.1)

    def test_monotone_in_load(self):
        loads = [0.1, 0.3, 0.5, 0.7]
        points = symmetric_delay_curve(loads, terminals_per_node=4)
        delays = [p.delay_bound for p in points]
        assert delays == sorted(delays)

    def test_monotone_in_terminals(self):
        at_load = lambda n: symmetric_delay_curve(
            [0.4], terminals_per_node=n)[0].delay_bound
        assert at_load(1) <= at_load(4) <= at_load(16)

    def test_inadmissible_at_extreme_load(self):
        points = symmetric_delay_curve([0.99], terminals_per_node=16)
        assert not points[0].admissible


class TestFigure11Driver:
    def test_capacity_decreases_with_asymmetry(self):
        # At the paper's 16-node scale the end-to-end deadline binds and
        # concentrating load on one terminal costs capacity (shorter
        # rings can invert this: a single hot stream is smoothed by its
        # own access link).
        points = asymmetric_capacity_curve(
            [0.0, 0.4, 0.8], terminals_per_node=4,
            ring_nodes=16, tolerance=1 / 32)
        loads = [p.max_load for p in points]
        assert loads[0] >= loads[1] >= loads[2]

    def test_capacity_decreases_with_terminals(self):
        small = asymmetric_capacity_curve(
            [0.5], terminals_per_node=1, ring_nodes=8,
            tolerance=1 / 32)[0].max_load
        large = asymmetric_capacity_curve(
            [0.5], terminals_per_node=8, ring_nodes=8,
            tolerance=1 / 32)[0].max_load
        assert large <= small


class TestFigure12Driver:
    def test_two_priorities_never_worse(self):
        rows = priority_capacity_curve(
            [0.0, 0.5, 0.9], terminals_per_node=4,
            ring_nodes=8, tolerance=1 / 32)
        for _p, single, dual in rows:
            assert dual >= single

    def test_gap_appears_at_high_asymmetry(self):
        rows = priority_capacity_curve(
            [0.9], terminals_per_node=8, ring_nodes=8, tolerance=1 / 32)
        _p, single, dual = rows[0]
        assert dual > single


class TestFigure13Driver:
    def test_soft_never_worse(self):
        rows = soft_hard_capacity_curve(
            [0.0, 0.5, 0.9], terminals_per_node=4,
            ring_nodes=8, tolerance=1 / 32)
        for _p, hard, soft in rows:
            assert soft >= hard

    def test_soft_strictly_better_somewhere(self):
        rows = soft_hard_capacity_curve(
            [0.0], terminals_per_node=8, ring_nodes=8, tolerance=1 / 64)
        _p, hard, soft = rows[0]
        assert soft > hard


class TestEstablishWorkload:
    def test_infeasible_workload_raises(self):
        workload = symmetric_workload(0.99, 8, 8)
        with pytest.raises(AdmissionError):
            establish_workload(workload, 8, 8)

    def test_all_terminals_established(self):
        workload = symmetric_workload(0.3, 4, 2)
        cac, established = establish_workload(workload, 4, 2)
        assert len(established) == 8
        assert len(cac.established) == 8
