"""The migration acceptance property: live link failures never corrupt
CAC state.

For every seeded schedule the fault harness now also fails (and
sometimes restores) links *mid-workload*, triggering the detection ->
breaker -> make-before-break migration path.  On top of the standing
replay-equivalence and cache-consistency properties this asserts:

* **no double booking** -- after migrations, each switch's committed
  legs are exactly the current-generation legs of the established
  connections crossing it;
* **drop releases everything** -- a ``migrate-or-drop`` victim's
  capacity is fully returned;
* **bit-identical recovery** -- crash + journal replay still restores
  committed state exactly, migrations included.

Scale the corpus with ``FAULT_SCHEDULES`` (the CI chaos job sets 300).
"""

import os
from fractions import Fraction as F

import pytest

from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import Network, line_network
from repro.robustness.harness import (
    LinkFailureEvent,
    random_link_failures,
    run_schedule,
    run_schedules,
)

SCHEDULES = int(os.environ.get("FAULT_SCHEDULES", "40"))


def duplex_ring_factory():
    """A 4-switch duplex ring: every link failure has a detour."""
    net = Network()
    for index in range(4):
        net.add_switch(f"s{index}")
    for index in range(4):
        nxt = (index + 1) % 4
        net.add_link(f"s{index}", f"s{nxt}", bounds={0: 64})
        net.add_link(f"s{nxt}", f"s{index}", bounds={0: 64})
    for index in range(4):
        net.add_terminal(f"t{index}.0")
        net.add_link(f"t{index}.0", f"s{index}")
        net.add_link(f"s{index}", f"t{index}.0", bounds={0: 64})
    return net


def duplex_ring_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14), F(1, 11)]
    spans = [("t0.0", "t2.0"), ("t1.0", "t3.0"), ("t2.0", "t0.0"),
             ("t3.0", "t1.0"), ("t0.0", "t1.0")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


def line_factory():
    return line_network(4, bounds={0: 64}, terminals_per_switch=2)


def line_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14), F(1, 11)]
    spans = [("t0.0", "t3.0"), ("t0.1", "t2.0"), ("t1.0", "t3.1"),
             ("t0.0", "t1.1"), ("t2.1", "t3.0")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


@pytest.mark.parametrize("seed", range(20_000, 20_000 + SCHEDULES))
def test_ring_schedule_with_live_failures_stays_safe(seed):
    """Detours exist: migrations actually move connections."""
    report = run_schedule(seed, duplex_ring_factory, duplex_ring_requests,
                          link_failures=2)
    assert report.consistent, (
        f"seed {seed}: inconsistent caches after {report.plan.faults} "
        f"+ {report.link_events}"
    )
    assert report.equivalent, (
        f"seed {seed}: diverged from clean replay; "
        f"events={report.link_events} migrated={report.migrated} "
        f"errors={report.errors}"
    )
    assert report.booking_safe, (
        f"seed {seed}: double booking after {report.link_events}"
    )
    assert report.ok


@pytest.mark.parametrize("seed", range(30_000, 30_000 + max(10,
                                                            SCHEDULES // 2)))
def test_line_schedule_with_live_failures_stays_safe(seed):
    """No detours on a line: the drop/keep policies carry the load."""
    report = run_schedule(seed, line_factory, line_requests,
                          link_failures=1)
    assert report.ok, (
        f"seed {seed}: consistent={report.consistent} "
        f"equivalent={report.equivalent} "
        f"booking_safe={report.booking_safe} "
        f"events={report.link_events}"
    )


@pytest.mark.parametrize("batched", [False, True])
def test_pipelines_agree_under_link_failures(batched):
    """Sequential and batched admission both survive live failures."""
    for seed in range(20_100, 20_100 + 10):
        report = run_schedule(seed, duplex_ring_factory,
                              duplex_ring_requests, link_failures=2,
                              batched=batched)
        assert report.ok, f"seed {seed} batched={batched}: {report}"


def test_corpus_actually_migrates():
    """The migration path is exercised, not vacuously green."""
    reports = [
        run_schedule(seed, duplex_ring_factory, duplex_ring_requests,
                     link_failures=2)
        for seed in range(20_000, 20_000 + min(SCHEDULES, 30))
    ]
    assert any(report.link_events for report in reports)
    assert any(report.migrated for report in reports)
    outcomes = {event.policy
                for report in reports for event in report.link_events}
    assert outcomes == {"migrate-or-drop", "migrate-or-keep"}
    assert any(event.restore
               for report in reports for event in report.link_events)


def test_dropped_victims_are_fully_released():
    """Find schedules that dropped a victim; its capacity must be gone."""
    seen_drop = False
    for seed in range(30_000, 30_000 + 60):
        report = run_schedule(seed, line_factory, line_requests,
                              link_failures=1)
        assert report.ok, f"seed {seed}: {report}"
        if report.dropped:
            seen_drop = True
            for name in report.dropped:
                assert name not in report.established or \
                    report.booking_safe
    assert seen_drop, "corpus never exercised migrate-or-drop"


def test_zero_link_failures_is_bit_identical_to_the_legacy_harness():
    """``link_failures=0`` must not consume any extra randomness."""
    for seed in range(5):
        legacy = run_schedule(seed, line_factory, line_requests)
        explicit = run_schedule(seed, line_factory, line_requests,
                                link_failures=0)
        assert legacy.plan.faults == explicit.plan.faults
        assert legacy.established == explicit.established
        assert legacy.journals == explicit.journals
        assert explicit.link_events == ()


def test_link_failure_draw_is_seed_deterministic():
    import random

    net = duplex_ring_factory()
    first = random_link_failures(random.Random(7), net, 5, 2)
    second = random_link_failures(random.Random(7), net, 5, 2)
    assert first == second
    assert all(isinstance(event, LinkFailureEvent) for event in first)
    assert all(1 <= event.after <= 5 for event in first)


def test_parallel_fanout_matches_serial():
    seeds = range(20_000, 20_000 + 8)
    serial = run_schedules(seeds, duplex_ring_factory,
                           duplex_ring_requests, link_failures=2)
    fanned = run_schedules(seeds, duplex_ring_factory,
                           duplex_ring_requests, link_failures=2, jobs=2)
    for left, right in zip(serial, fanned):
        assert left.established == right.established
        assert left.migrated == right.migrated
        assert left.dropped == right.dropped
        assert left.journals == right.journals
        assert left.ok and right.ok
