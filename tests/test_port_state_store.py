"""The layered state backends: PortState and the AdmissionStore family.

The layering contract (``docs/architecture.md``): a pure
:class:`PortState` per (out_link, priority) owns the aggregates and
incremental caches; every backend of the pluggable
:class:`AdmissionStore` interface must be observably identical to the
in-memory reference -- same admission decisions, same iteration order,
same snapshots -- because ``SwitchCAC`` routes *all* state through it.
"""

from fractions import Fraction as F

import pytest

from repro.core import (
    InMemoryAdmissionStore,
    NetworkCAC,
    ShardedAdmissionStore,
    SwitchCAC,
)
from repro.core.bitstream import aggregate
from repro.core.port_state import PortState
from repro.core.traffic import cbr
from repro.exceptions import AdmissionError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network


def stream(rate):
    return cbr(rate).worst_case_stream()


def streams_equal(left, right):
    return left.rates == right.rates and left.times == right.times


# ----------------------------------------------------------------------
# PortState: the pure domain object
# ----------------------------------------------------------------------


class TestPortState:
    def make_port(self, priority=1, higher=()):
        return PortState("out", priority, 64,
                         higher_ports=lambda: list(higher))

    def test_apply_same_maintains_sia_ground_truth(self):
        port = self.make_port()
        a, b = stream(F(1, 5)), stream(F(1, 7))
        port.apply_same("in-a", a, add=True)
        port.apply_same("in-a", b, add=True)
        assert streams_equal(port.sia("in-a"), a + b)
        port.apply_same("in-a", b, add=False)
        assert streams_equal(port.sia("in-a"), a)
        assert port.in_links() == ["in-a"]
        assert port.long_run_rate() == F(1, 5)

    def test_soa_patched_matches_rebuild(self):
        port = self.make_port()
        port.apply_same("in-a", stream(F(1, 5)), add=True)
        _ = port.soa()  # populate the cache, then patch it
        port.apply_same("in-b", stream(F(1, 9)), add=True)
        patched = port.soa()
        rebuilt = PortState("out", 1, 64)
        rebuilt.apply_same("in-a", stream(F(1, 5)), add=True)
        rebuilt.apply_same("in-b", stream(F(1, 9)), add=True)
        assert patched.approx_equal(rebuilt.soa(), 0)

    def test_soa_with_generalises_replace(self):
        port = self.make_port()
        port.apply_same("in-a", stream(F(1, 5)), add=True)
        port.apply_same("in-b", stream(F(1, 9)), add=True)
        candidate = port._filter(port.sia("in-a") + stream(F(1, 11)))
        single = port.soa(replace=("in-a", candidate))
        multi = port.soa_with({"in-a": candidate})
        assert single.approx_equal(multi, 0)
        # two substitutions at once == rebuilding from scratch
        cand_b = port._filter(port.sia("in-b") + stream(F(1, 13)))
        both = port.soa_with({"in-a": candidate, "in-b": cand_b})
        assert both.approx_equal(aggregate([candidate, cand_b]), 0)

    def test_sof_higher_with_generalises_extra(self):
        high = PortState("out", 0, 32)
        high.apply_same("in-a", stream(F(1, 6)), add=True)
        low = self.make_port(priority=1, higher=[high])
        low.apply_same("in-a", stream(F(1, 8)), add=True)
        extra = stream(F(1, 10))
        assert low.sof_higher(extra=("in-a", extra)).approx_equal(
            low.sof_higher_with({"in-a": extra}), 0)

    def test_bulk_apply_invalidates_and_lazy_rebuild_agrees(self):
        high = PortState("out", 0, 32)
        low = self.make_port(priority=1, higher=[high])
        low.apply_same("in-a", stream(F(1, 8)), add=True)
        _ = low.soa(), low.sof_higher(), low.service()  # warm every cache
        # a bulk delta at the higher priority drops, not patches
        high.apply_same("in-a", stream(F(1, 6)), add=True,
                        patch_caches=False)
        low.apply_higher("in-a", stream(F(1, 6)), add=True,
                         patch_caches=False)
        assert streams_equal(high.sia("in-a"), stream(F(1, 6)))
        # lazy rebuilds now see the post-delta truth
        reference = PortState("out", 1, 64, higher_ports=lambda: [high])
        reference.apply_same("in-a", stream(F(1, 8)), add=True)
        assert low.sof_higher().approx_equal(reference.sof_higher(), 0)
        assert low.soa().approx_equal(reference.soa(), 0)

    def test_verify_against_accepts_truth_and_rejects_drift(self):
        port = self.make_port()
        port.apply_same("in-a", stream(F(1, 5)), add=True)
        truth = {("in-a", "out", 1): stream(F(1, 5))}
        assert port.verify_against(truth)
        assert not port.verify_against(
            {("in-a", "out", 1): stream(F(1, 4))})
        assert not port.verify_against({})  # port holds a stream truth lacks
        # an extra ground-truth key the port does not hold also fails
        truth[("in-b", "out", 1)] = stream(F(1, 9))
        assert not port.verify_against(truth)


# ----------------------------------------------------------------------
# AdmissionStore backends: parity with the in-memory reference
# ----------------------------------------------------------------------


STORE_FACTORIES = [
    ("in-memory", InMemoryAdmissionStore),
    ("sharded-1", lambda: ShardedAdmissionStore(1)),
    ("sharded-3", lambda: ShardedAdmissionStore(3)),
    ("sharded-8", lambda: ShardedAdmissionStore(8)),
]


def drive(switch):
    """A fixed admit/reserve/commit/rollback workout on one switch."""
    for index, link in enumerate(["out-b", "out-a", "out-c"]):
        switch.configure_link(link, {0: 32, 2: 96})
    switch.admit("vc0", "in-a", "out-a", 0, stream(F(1, 10)))
    switch.admit("vc1", "in-b", "out-b", 2, stream(F(1, 12)))
    switch.reserve("vc2", "in-a", "out-c", 0, stream(F(1, 14)))
    switch.commit("vc2")
    switch.reserve("vc3", "in-b", "out-a", 2, stream(F(1, 16)))
    switch.rollback("vc3")
    switch.release("vc1")
    switch.admit("vc4", "in-c", "out-b", 0, stream(F(1, 18)))
    return switch


@pytest.mark.parametrize("label,factory", STORE_FACTORIES,
                         ids=[label for label, _ in STORE_FACTORIES])
def test_backends_are_observably_identical(label, factory):
    reference = drive(SwitchCAC("sw"))
    candidate = drive(SwitchCAC("sw", store=factory()))
    # same committed set, same insertion order
    assert list(candidate.legs) == list(reference.legs)
    assert candidate.out_links() == reference.out_links()
    for link in reference.out_links():
        assert candidate.priorities(link) == reference.priorities(link)
        for priority in reference.priorities(link):
            assert streams_equal(
                candidate.soa(link, priority), reference.soa(link, priority))
    assert candidate.verify_consistency()
    # identical journals drive identical recoveries
    assert ([(e.op, e.connection_id) for e in candidate.journal]
            == [(e.op, e.connection_id) for e in reference.journal])
    candidate.crash()
    with pytest.raises(AdmissionError):
        candidate.admit("vc9", "in-a", "out-a", 0, stream(F(1, 20)))
    candidate.recover()
    assert list(candidate.legs) == list(reference.legs)
    for key, value in reference.recompute_aggregates().items():
        assert streams_equal(candidate.recompute_aggregates()[key], value)


@pytest.mark.parametrize("label,factory", STORE_FACTORIES,
                         ids=[label for label, _ in STORE_FACTORIES])
def test_snapshot_restore_round_trip(label, factory):
    source = drive(SwitchCAC("sw", store=factory()))
    source.reserve("vc5", "in-a", "out-b", 2, stream(F(1, 20)))
    snapshot = source.snapshot_state()
    assert [leg.connection_id for leg in snapshot["committed"]] == \
        list(source.legs)
    assert [leg.connection_id for leg in snapshot["pending"]] == ["vc5"]

    target = SwitchCAC("sw2", store=factory())
    for link in source.out_links():
        target.configure_link(link, {0: 32, 2: 96})
    target.restore_state(snapshot)
    assert list(target.legs) == list(source.legs)
    assert list(target.pending) == ["vc5"]
    assert target.verify_consistency()
    # the restore journaled everything: crash recovery still works and
    # discards the restored (uncommitted) reservation
    target.crash()
    target.recover()
    assert list(target.legs) == list(source.legs)
    assert not target.pending


def test_restore_state_requires_empty_switch():
    switch = drive(SwitchCAC("sw"))
    with pytest.raises(AdmissionError, match="not empty"):
        switch.restore_state({"committed": [], "pending": []})


def test_out_links_and_priorities_are_sorted():
    switch = SwitchCAC("sw")
    for link in ["out-z", "out-a", "out-m"]:
        switch.configure_link(link, {3: 96, 0: 32, 1: 64})
    assert switch.out_links() == ["out-a", "out-m", "out-z"]
    assert switch.priorities("out-z") == [0, 1, 3]
    assert [(p.out_link, p.priority) for p in switch.store.ports()] == [
        (link, priority)
        for link in ["out-a", "out-m", "out-z"]
        for priority in [0, 1, 3]
    ]


def test_sharding_is_deterministic_and_by_out_link():
    store = ShardedAdmissionStore(4)
    again = ShardedAdmissionStore(4)
    for link in ["out-a", "out-b", "out-c", "out-d", "out-e"]:
        assert store.shard_of_link(link) == again.shard_of_link(link)
        store.configure_link(link, {0: 32})
    assert store.out_links() == ["out-a", "out-b", "out-c", "out-d",
                                 "out-e"]
    # every port of one link lives in exactly one shard
    populated = [shard for shard in store.shards() if shard.out_links()]
    assert sum(len(s.out_links()) for s in populated) == 5


def test_sharded_store_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ShardedAdmissionStore(0)


def test_store_factory_plugs_into_network_cac():
    network = line_network(3, bounds={0: 32}, terminals_per_switch=1)
    cac = NetworkCAC(network,
                     store_factory=lambda name: ShardedAdmissionStore(2))
    request = ConnectionRequest(
        "vc0", cbr(F(1, 8)), shortest_path(network, "t0.0", "t2.0"))
    established = cac.setup(request)
    assert established.e2e_bound == 3 * 32
    for switch in cac.switches().values():
        assert isinstance(switch.store, ShardedAdmissionStore)
        assert switch.verify_consistency()


def test_clear_volatile_keeps_configuration():
    for _, factory in STORE_FACTORIES:
        store = factory()
        store.configure_link("out", {0: 32})
        store.clear_volatile()
        assert store.out_links() == ["out"]
        assert store.priorities("out") == [0]
        assert not store.committed() and not store.pending()


def test_unknown_port_raises_admission_error():
    store = InMemoryAdmissionStore()
    store.configure_link("out", {0: 32})
    with pytest.raises(AdmissionError):
        store.port("out", 7)
    with pytest.raises(AdmissionError):
        store.port("nope", 0)
