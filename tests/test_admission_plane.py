"""The event-driven admission plane: identity, interleaving, TTL.

Acceptance properties of :class:`~repro.core.plane.AdmissionPlane`:

* **concurrency-1 bit-identity** -- driving one walk at a time through
  the engine performs the op-for-op identical switch operations as the
  synchronous :meth:`NetworkCAC.setup` API, across seeded fault
  schedules (same generator, different wait mechanism);
* **no double booking under interleaving** -- K concurrent setups
  contending for one bottleneck never oversubscribe it, and resolve
  deterministically for a fixed seed;
* **reservation TTL** -- a phase-1 reservation outliving its hold timer
  is discarded by the switch, the walk unwinds with outcome
  ``expired``, and completed walks cancel their timers.

Scale the interleaving corpus with ``ADMISSION_INTERLEAVINGS`` (the CI
admission-concurrency job raises it; the local default keeps tier-1
fast).
"""

import os
import random
from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionPlane, NetworkCAC
from repro.exceptions import AdmissionError
from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network, star_network
from repro.obs import metrics as om
from repro.obs.metrics import MetricsRegistry
from repro.robustness.faults import FaultInjector
from repro.robustness.harness import random_fault_plan
from repro.robustness.migration import no_double_booking
from repro.robustness.retry import RetryPolicy
from repro.sim.engine import Engine
from repro.workload.stats import journal_digest_of

INTERLEAVINGS = int(os.environ.get("ADMISSION_INTERLEAVINGS", "25"))


def line_factory():
    return line_network(3, bounds={0: 64}, terminals_per_switch=2)


def line_requests(network):
    rates = [F(1, 10), F(1, 12), F(1, 9), F(1, 14), F(1, 11)]
    spans = [("t0.0", "t2.0"), ("t0.1", "t1.0"), ("t1.1", "t2.1"),
             ("t0.0", "t1.1"), ("t2.0", "t0.1")]
    return [
        ConnectionRequest(f"vc{index}", cbr(rate),
                          shortest_path(network, src, dst))
        for index, (rate, (src, dst)) in enumerate(zip(rates, spans))
    ]


def build_cac(seed, plan=None, hop_latency=0.0):
    """A line-network CAC configured identically for both modes."""
    return NetworkCAC(
        line_factory(),
        fault_injector=FaultInjector(plan) if plan is not None else None,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                 max_delay=4.0),
        rng=random.Random(seed + 1),
        hop_latency=hop_latency,
    )


def run_sync(seed, plan, hop_latency=0.0):
    """The synchronous reference: one blocking setup() per request."""
    cac = build_cac(seed, plan, hop_latency)
    errors = {}
    for request in line_requests(cac.network):
        try:
            cac.setup(request)
        except AdmissionError as refused:
            errors[request.name] = type(refused).__name__
    return cac, errors


def run_concurrency_one(seed, plan, hop_latency=0.0):
    """The same requests as engine processes, one in flight at a time."""
    cac = build_cac(seed, plan, hop_latency)
    engine = Engine()
    plane = AdmissionPlane(cac, engine)
    requests = line_requests(cac.network)
    errors = {}

    def launch(index):
        if index >= len(requests):
            return

        def done(outcome):
            if outcome.error is not None:
                errors[outcome.request.name] = type(outcome.error).__name__
            launch(index + 1)

        plane.submit(requests[index], on_done=done)

    launch(0)
    engine.run()
    assert plane.in_flight == 0
    return cac, errors


class TestConcurrencyOneBitIdentity:
    """Engine-driven concurrency-1 == synchronous, op for op."""

    @pytest.mark.parametrize("seed", range(400, 400 + max(10,
                                                          INTERLEAVINGS)))
    def test_faulted_schedules_journal_identically(self, seed):
        plan = random_fault_plan(
            random.Random(seed), max_hops=3,
            connections=[f"vc{i}" for i in range(5)],
        )
        sync_cac, sync_errors = run_sync(seed, plan)
        plane_cac, plane_errors = run_concurrency_one(seed, plan)
        assert journal_digest_of(plane_cac) == journal_digest_of(sync_cac), (
            f"seed {seed}: engine-driven walk diverged from the "
            f"synchronous API under {plan}"
        )
        assert set(plane_cac.established) == set(sync_cac.established)
        assert plane_errors == sync_errors

    def test_identity_holds_with_hop_latency(self):
        for seed in range(420, 425):
            plan = random_fault_plan(
                random.Random(seed), max_hops=3,
                connections=[f"vc{i}" for i in range(5)],
            )
            sync_cac, _ = run_sync(seed, plan, hop_latency=0.75)
            plane_cac, _ = run_concurrency_one(seed, plan, hop_latency=0.75)
            assert journal_digest_of(plane_cac) == journal_digest_of(sync_cac)

    def test_engine_time_advances_past_the_walks(self):
        cac = build_cac(0, None, hop_latency=0.5)
        engine = Engine()
        plane = AdmissionPlane(cac, engine)
        request = line_requests(cac.network)[0]
        done = []
        plane.submit(request, on_done=done.append)
        engine.run()
        (outcome,) = done
        assert outcome.admitted
        # 3 hops x 2 messages (reserve, commit) x 2 transits x 0.5.
        assert outcome.setup_time == pytest.approx(6.0)
        assert engine.now == pytest.approx(6.0)


def bottleneck_star():
    """Seven callers, one hub, every route sharing the hub->t0 link.

    The bound admits only ~4 of 7 at rate 1/4, so concurrent walks
    genuinely contend for the same port.
    """
    return star_network(8, bounds={0: 8.0})


def bottleneck_requests(network, k):
    return [
        ConnectionRequest(f"vc{index}", cbr(F(1, 4)),
                          shortest_path(network, f"t{index}", "t0"))
        for index in range(1, k + 1)
    ]


def run_contended(seed, k, hop_latency):
    net = bottleneck_star()
    cac = NetworkCAC(net, rng=random.Random(seed),
                     hop_latency=hop_latency)
    engine = Engine()
    plane = AdmissionPlane(cac, engine, reservation_ttl=500.0)
    for request in bottleneck_requests(net, k):
        plane.submit(request)
    engine.run()
    assert plane.in_flight == 0
    return cac, plane


class TestConcurrentInterleavings:
    @settings(max_examples=INTERLEAVINGS, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(4, 7),
           hop_latency=st.sampled_from([0.25, 0.5, 1.0, 2.0]))
    def test_contending_setups_never_double_book(self, seed, k,
                                                 hop_latency):
        cac, plane = run_contended(seed, k, hop_latency)
        assert len(plane.outcomes) == k
        assert no_double_booking(cac)
        for switch in cac.switches().values():
            assert switch.verify_consistency()
            assert not switch.pending, "reservation leaked past its walk"
        admitted = {o.request.name for o in plane.outcomes if o.admitted}
        assert admitted == set(cac.established)
        for outcome in plane.outcomes:
            if not outcome.admitted:
                assert isinstance(outcome.error, AdmissionError)

    @settings(max_examples=max(5, INTERLEAVINGS // 5), deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_interleavings_resolve_deterministically(self, seed):
        first_cac, first = run_contended(seed, 6, hop_latency=0.5)
        second_cac, second = run_contended(seed, 6, hop_latency=0.5)
        assert journal_digest_of(first_cac) == journal_digest_of(second_cac)
        assert [o.request.name for o in first.outcomes] == \
               [o.request.name for o in second.outcomes]
        assert [o.admitted for o in first.outcomes] == \
               [o.admitted for o in second.outcomes]
        assert [o.finished for o in first.outcomes] == \
               [o.finished for o in second.outcomes]

    def test_contention_actually_rejects_someone(self):
        cac, plane = run_contended(1, 7, hop_latency=0.5)
        rejected = [o for o in plane.outcomes if not o.admitted]
        assert rejected, "corpus scenario admits everyone; no contention"
        assert len(cac.established) >= 1


def two_hop_setup(reservation_ttl, hop_latency=1.0):
    net = line_network(2, bounds={0: 64}, terminals_per_switch=1)
    cac = NetworkCAC(net, hop_latency=hop_latency, rng=random.Random(0))
    engine = Engine()
    plane = AdmissionPlane(cac, engine, reservation_ttl=reservation_ttl)
    request = ConnectionRequest("vc0", cbr(F(1, 10)),
                                shortest_path(net, "t0.0", "t1.0"))
    return cac, engine, plane, request


class TestReservationTTL:
    def test_expiry_unwinds_the_walk(self):
        # First hop reserved at t=2, commit arrives at t=5: a 2.5-unit
        # hold expires the reservation first and the walk must abort.
        registry = MetricsRegistry()
        previous = om.set_registry(registry)
        try:
            cac, engine, plane, request = two_hop_setup(reservation_ttl=2.5)
            done = []
            plane.submit(request, on_done=done.append)
            engine.run()
        finally:
            om.set_registry(previous)
        (outcome,) = done
        assert not outcome.admitted
        assert isinstance(outcome.error, AdmissionError)
        assert "no reservation" in str(outcome.error)
        assert cac.established == {}
        for switch in cac.switches().values():
            assert not switch.pending
            assert not switch.legs
            assert switch.verify_consistency()
        assert registry.total("cac_reservation_expiries_total") >= 1

    def test_generous_ttl_commits_normally(self):
        cac, engine, plane, request = two_hop_setup(reservation_ttl=100.0)
        done = []
        plane.submit(request, on_done=done.append)
        engine.run()
        (outcome,) = done
        assert outcome.admitted
        assert "vc0" in cac.established
        assert no_double_booking(cac)

    def test_finished_walks_leave_no_armed_timers(self):
        cac, engine, plane, request = two_hop_setup(reservation_ttl=100.0)
        plane.submit(request)
        engine.run()
        # Every hold timer died with the walk: nothing left to fire, so
        # running long past the TTL cannot expire the committed legs.
        assert engine.peek_next_time() is None
        assert all(switch.legs for switch in cac.switches().values())

    def test_expire_is_pending_only(self):
        net = line_network(2, bounds={0: 64}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        request = ConnectionRequest("vc0", cbr(F(1, 10)),
                                    shortest_path(net, "t0.0", "t1.0"))
        cac.setup(request)
        switch = cac.switch("s0")
        # Committed legs are never touched, unknown ids are a no-op.
        assert switch.expire("vc0") is None
        assert switch.expire("never-reserved") is None
        assert "vc0" in switch.legs
        assert switch.verify_consistency()

    def test_nonpositive_ttl_rejected(self):
        cac = NetworkCAC(line_network(2, bounds={0: 64},
                                      terminals_per_switch=1))
        with pytest.raises(ValueError, match="reservation_ttl"):
            AdmissionPlane(cac, Engine(), reservation_ttl=0.0)


class TestPlaneLifecycle:
    def test_teardown_releases_in_engine_time(self):
        cac, engine, plane, request = two_hop_setup(reservation_ttl=None)
        plane.submit(request)
        engine.run()
        assert "vc0" in cac.established
        plane.submit_teardown("vc0")
        engine.run()
        assert plane.in_flight == 0
        assert cac.established == {}
        assert all(not switch.legs for switch in cac.switches().values())

    def test_in_flight_counts_every_submitted_walk(self):
        cac, engine, plane, request = two_hop_setup(reservation_ttl=None)
        plane.submit(request)
        assert plane.in_flight == 1
        engine.run()
        assert plane.in_flight == 0
        assert len(plane.outcomes) == 1

    def test_repr_is_cheap_and_honest(self):
        cac, engine, plane, request = two_hop_setup(reservation_ttl=7.5)
        assert "ttl=7.5" in repr(plane)
