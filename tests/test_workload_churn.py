"""The churn engine: determinism, budgets, failures, policy comparison.

The heavyweight equivalence cases scale with the ``CHURN_EVENTS``
environment variable (the CI churn-property job sets 2000; the local
default keeps the tier-1 suite fast).
"""

import os
import random

import pytest

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.exceptions import TrafficModelError
from repro.network.topology import star_network
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.migration import no_double_booking
from repro.workload import (
    BlockingPoint,
    ChurnEngine,
    ChurnScenario,
    LinkFailure,
    TrafficClass,
    blocking_curve,
    make_policy,
    opposite_pairs,
    run_scenario,
    star_pairs,
)

CHURN_EVENTS = int(os.environ.get("CHURN_EVENTS", "400"))

RING = dict(topology="dual-ring", nodes=6, bound=48.0, rate=0.15)


def small_engine(seed=7, policy=None, failures=(), injector=None,
                 arrival_rate=0.01):
    net = star_network(4, bounds={0: 32})
    cac = NetworkCAC(net, fault_injector=injector, rng=random.Random(seed))
    engine = ChurnEngine(
        cac, [TrafficClass("cbr", cbr(0.1), arrival_rate, 200.0)],
        pairs=star_pairs(net), seed=seed, policy=policy, failures=failures,
    )
    return engine


class TestChurnEngine:
    def test_budget_is_hard_and_exact(self):
        engine = small_engine()
        assert engine.run(max_events=25) == 25
        assert engine.events_fired == 25
        assert len(engine.ledger) == 25

    def test_run_continues_the_same_trajectory(self):
        whole = small_engine()
        whole.run(max_events=60)
        split = small_engine()
        split.run(max_events=23)
        split.run(max_events=37)
        assert [tuple(vars(r).values()) for r in split.ledger] == \
               [tuple(vars(r).values()) for r in whole.ledger]

    def test_same_seed_is_bit_identical(self):
        a, b = small_engine(seed=3), small_engine(seed=3)
        a.run(max_events=80)
        b.run(max_events=80)
        assert a.report().ledger_digest == b.report().ledger_digest
        assert a.report().journal_digest == b.report().journal_digest

    def test_different_seeds_diverge(self):
        a, b = small_engine(seed=3), small_engine(seed=4)
        a.run(max_events=80)
        b.run(max_events=80)
        assert a.report().ledger_digest != b.report().ledger_digest

    def test_policy_does_not_perturb_arrivals(self):
        # Same seed, different policy: identical arrival instants and
        # connection names -- only outcomes/routes may differ.
        first = small_engine(seed=5, policy=make_policy("first-path"))
        alt = small_engine(seed=5, policy=make_policy("least-loaded", 3))
        first.run(max_events=70)
        alt.run(max_events=70)
        key = [(r.time, r.kind, r.name) for r in first.ledger
               if r.kind == "arrival"]
        assert key == [(r.time, r.kind, r.name) for r in alt.ledger
                       if r.kind == "arrival"]

    def test_departures_tear_down(self):
        engine = small_engine()
        engine.run(max_events=120)
        departed = [r for r in engine.ledger if r.kind == "departure"]
        assert departed and all(r.outcome == "departed" for r in departed)
        assert set(engine.active) == set(engine.cac.established)

    def test_drain_empties_the_network(self):
        engine = small_engine()
        engine.run(max_events=60)
        engine.drain()
        assert engine.active == {}
        assert engine.cac.established == {}

    def test_zero_rate_class_is_inert(self):
        engine = small_engine(arrival_rate=0.0)
        assert engine.run(max_events=50) == 0
        assert engine.ledger == []

    def test_validation(self):
        net = star_network(2, bounds={0: 32})
        cac = NetworkCAC(net)
        cls = TrafficClass("cbr", cbr(0.1), 0.01, 100.0)
        with pytest.raises(TrafficModelError, match="at least one traffic"):
            ChurnEngine(cac, [], pairs=[("t0", "t1")])
        with pytest.raises(TrafficModelError, match="at least one"):
            ChurnEngine(cac, [cls], pairs=[])
        with pytest.raises(TrafficModelError, match="duplicate"):
            ChurnEngine(cac, [cls, cls], pairs=[("t0", "t1")])
        with pytest.raises(TrafficModelError, match="arrival rate"):
            TrafficClass("x", cbr(0.1), -1.0, 100.0)
        with pytest.raises(TrafficModelError, match="holding"):
            TrafficClass("x", cbr(0.1), 0.1, 0.0)
        engine = ChurnEngine(cac, [cls], pairs=[("t0", "t1")])
        with pytest.raises(TrafficModelError, match="max_events"):
            engine.run(max_events=-1)


class TestFailurePlan:
    def plan(self):
        return (LinkFailure(time=1200.0, link="ring0->ring1",
                            policy="migrate-or-drop", restore_after=1200.0),)

    def scenario(self, **kw):
        base = dict(RING, events=CHURN_EVENTS, seed=9, offered_load=3.0,
                    policy="k-alternate", failures=self.plan())
        base.update(kw)
        return ChurnScenario(**base)

    def run_engine(self):
        scen = self.scenario()
        net = scen.build_network()
        cac = NetworkCAC(net, fault_injector=FaultInjector(FaultPlan([])),
                         rng=random.Random(scen.seed))
        engine = ChurnEngine(
            cac, [scen.traffic_class()], pairs=scen.build_pairs(net),
            seed=scen.seed, policy=make_policy(scen.policy, scen.k),
            failures=scen.failures,
        )
        engine.run(max_events=scen.events)
        return engine

    def test_failure_and_restore_are_ledgered(self):
        engine = self.run_engine()
        kinds = {r.kind for r in engine.ledger}
        assert "link-fail" in kinds and "link-restore" in kinds

    def test_no_double_booking_under_armed_failure(self):
        engine = self.run_engine()
        no_double_booking(engine.cac)
        for switch in engine.cac.switches().values():
            switch.verify_consistency()

    def test_failure_run_is_deterministic(self):
        assert (run_scenario(self.scenario()).ledger_digest
                == run_scenario(self.scenario()).ledger_digest)


class TestPolicyComparison:
    def test_k_alternate_blocks_strictly_less_than_first_path(self):
        # The acceptance case: on the dual ring at a load that saturates
        # the primary direction, crankback over the reverse ring must
        # strictly lower blocking while seeing the same arrivals.
        blocking = {}
        for policy in ("first-path", "k-alternate"):
            report = run_scenario(ChurnScenario(
                events=max(300, CHURN_EVENTS), seed=11, offered_load=4.0,
                policy=policy, k=2, **RING))
            blocking[policy] = report.blocking
        assert blocking["k-alternate"] < blocking["first-path"]


class TestScenario:
    def test_star_topology_and_pairs(self):
        scen = ChurnScenario(topology="star", nodes=3)
        net = scen.build_network()
        pairs = scen.build_pairs(net)
        assert len(pairs) == 6      # 3 terminals, ordered pairs
        assert all(src != dst for src, dst in pairs)

    def test_opposite_pairs_cross_the_ring(self):
        pairs = opposite_pairs(6, 1)
        assert ("term0.0", "term3.0") in pairs
        assert len(pairs) == 6

    def test_unknown_topology_rejected(self):
        with pytest.raises(TrafficModelError, match="unknown churn"):
            ChurnScenario(topology="mesh").build_network()

    def test_arrival_rate_hits_offered_load(self):
        scen = ChurnScenario(offered_load=2.0, rate=0.05, mean_holding=400.0)
        assert scen.arrival_rate() * scen.mean_holding * scen.rate == \
               pytest.approx(2.0)

    def test_bad_replications_rejected(self):
        with pytest.raises(TrafficModelError, match="replication"):
            blocking_curve([1.0], ChurnScenario(), replications=0)


class TestSetupLatency:
    """Churn on the admission plane: nonzero signaling time matters."""

    def scenario(self, **kw):
        base = dict(RING, events=300, seed=11, offered_load=4.0,
                    policy="first-path")
        base.update(kw)
        return ChurnScenario(**base)

    def test_latency_measurably_changes_blocking(self):
        # While a walk is in flight its phase-1 reservations hold
        # capacity that instantaneous setups never would, so blocking
        # under the same arrivals must move (upward, here).
        instant = run_scenario(self.scenario())
        latent = run_scenario(self.scenario(setup_latency=2.0,
                                            reservation_ttl=40.0))
        assert latent.ledger_digest != instant.ledger_digest
        assert latent.blocking != instant.blocking
        assert latent.blocking > instant.blocking

    def test_latent_run_is_deterministic(self):
        first = run_scenario(self.scenario(setup_latency=2.0,
                                           reservation_ttl=40.0))
        second = run_scenario(self.scenario(setup_latency=2.0,
                                            reservation_ttl=40.0))
        assert first.ledger_digest == second.ledger_digest
        assert first.journal_digest == second.journal_digest
        assert first.blocking == second.blocking

    def test_ttl_shorter_than_the_walk_blocks_everything(self):
        # At 5 time units per hop transit a dual-ring walk takes far
        # longer than 40 units end to end, so every reservation expires
        # before its commit arrives: the TTL is genuinely binding.
        starved = run_scenario(self.scenario(setup_latency=5.0,
                                             reservation_ttl=40.0))
        assert starved.blocking == 1.0

    def test_plane_mode_keeps_booking_safe(self):
        scen = self.scenario(setup_latency=2.0, reservation_ttl=40.0)
        net = scen.build_network()
        cac = NetworkCAC(net, rng=random.Random(scen.seed),
                         hop_latency=scen.setup_latency)
        engine = ChurnEngine(
            cac, [scen.traffic_class()], pairs=scen.build_pairs(net),
            seed=scen.seed, policy=make_policy(scen.policy, scen.k),
            setup_latency=scen.setup_latency,
            reservation_ttl=scen.reservation_ttl,
        )
        engine.run(max_events=scen.events)
        assert no_double_booking(cac)
        for switch in cac.switches().values():
            assert switch.verify_consistency()
            assert not switch.pending

    def test_negative_latency_rejected(self):
        net = star_network(2, bounds={0: 32})
        cls = TrafficClass("cbr", cbr(0.1), 0.01, 100.0)
        with pytest.raises(TrafficModelError, match="setup_latency"):
            ChurnEngine(NetworkCAC(net), [cls], pairs=[("t0", "t1")],
                        setup_latency=-1.0)


class TestEquivalence:
    def curve(self, jobs):
        scenario = ChurnScenario(
            events=CHURN_EVENTS, seed=5, policy="k-alternate", **RING)
        return blocking_curve([1.0, 3.0], scenario, replications=2,
                              jobs=jobs)

    def test_jobs1_vs_jobs4_bit_identical(self):
        serial = self.curve(jobs=1)
        fanned = self.curve(jobs=4)
        assert serial == fanned
        assert all(isinstance(point, BlockingPoint) for point in fanned)
        assert [point.digests for point in serial] == \
               [point.digests for point in fanned]

    def test_replications_use_distinct_seeds(self):
        (point, _other) = self.curve(jobs=1)
        assert len(set(point.digests)) == len(point.digests)
