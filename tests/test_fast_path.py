"""The screened admission fast path is invisible except to the clock.

``SwitchCAC`` keeps an incrementally patched (sigma, rho) headroom
ledger per port and screens every check against two conservative
bounds before falling back to Algorithm 4.1.  These tests pin the
contract from ``docs/performance.md``: decision-for-decision identity
with the exact path -- same admits, same refusals, same journals, same
committed state -- over random transactional interleavings, seeded
fault schedules, churn workloads, and the exact-Fraction (no-NumPy)
arithmetic path.
"""

import os
from dataclasses import replace
from fractions import Fraction as F

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.switch_cac import SwitchCAC
from repro.core.traffic import VBRParameters, cbr
from repro.exceptions import AdmissionError
from repro.robustness.harness import run_schedule
from repro.workload.churn import ChurnScenario, run_scenario

BOUNDS = {0: 300, 1: 1200}


@st.composite
def traffic_descriptors(draw):
    pcr_den = draw(st.integers(min_value=2, max_value=16))
    scr_scale = draw(st.integers(min_value=2, max_value=16))
    mbs = draw(st.integers(min_value=1, max_value=6))
    pcr = F(1, pcr_den)
    return VBRParameters(pcr=pcr, scr=pcr / scr_scale, mbs=mbs)


@st.composite
def transactional_actions(draw, max_actions=14):
    """Random admit/reserve/commit/rollback/release interleavings."""
    actions = []
    names = []
    count = draw(st.integers(min_value=1, max_value=max_actions))
    for index in range(count):
        kinds = ["admit", "reserve"]
        if names:
            kinds += ["commit", "rollback", "release"]
        kind = draw(st.sampled_from(kinds))
        if kind in ("admit", "reserve"):
            name = f"vc{index}"
            names.append(name)
            in_link = f"in{draw(st.integers(min_value=0, max_value=2))}"
            priority = draw(st.integers(min_value=0, max_value=1))
            params = draw(traffic_descriptors())
            cdv = draw(st.integers(min_value=0, max_value=64))
            actions.append((kind, name, in_link, priority, (params, cdv)))
        else:
            victim = draw(st.sampled_from(names))
            actions.append((kind, victim, None, None, None))
    return actions


def _run_twin(actions, fast_path):
    """Drive one action sequence; return (switch, outcomes, journal)."""
    switch = SwitchCAC("sw", fast_path=fast_path)
    switch.configure_link("out", BOUNDS)
    outcomes = []
    for kind, name, in_link, priority, extra in actions:
        try:
            if kind in ("admit", "reserve"):
                params, cdv = extra
                stream = params.worst_case_stream().delayed(cdv)
                if kind == "admit":
                    switch.admit(name, in_link, "out", priority, stream)
                else:
                    switch.reserve(name, in_link, "out", priority, stream)
                outcomes.append((kind, name, "ok"))
            elif kind == "commit":
                switch.commit(name)
                outcomes.append((kind, name, "ok"))
            elif kind == "rollback":
                leg = switch.rollback(name)
                outcomes.append((kind, name, leg is not None))
            else:
                switch.release(name)
                outcomes.append((kind, name, "ok"))
        except (AdmissionError, KeyError) as exc:
            outcomes.append((kind, name, type(exc).__name__))
    journal = tuple((entry.op, entry.connection_id)
                    for entry in switch.journal.entries)
    return switch, outcomes, journal


@given(transactional_actions())
@settings(max_examples=60, deadline=None)
def test_screened_switch_is_decision_identical(actions):
    fast, fast_outcomes, fast_journal = _run_twin(actions, fast_path=True)
    exact, exact_outcomes, exact_journal = _run_twin(actions,
                                                     fast_path=False)
    assert fast_outcomes == exact_outcomes
    assert fast_journal == exact_journal
    assert set(fast.legs) == set(exact.legs)
    assert fast.verify_consistency()
    assert exact.verify_consistency()
    for priority in BOUNDS:
        assert (fast.computed_bound("out", priority)
                == exact.computed_bound("out", priority))
        for link in ("in0", "in1", "in2"):
            assert (fast.sia(link, "out", priority)
                    == exact.sia(link, "out", priority))


def test_screen_accept_bound_is_conservative():
    """When the screen accepts, its bound dominates the exact bound."""
    fast = SwitchCAC("sw", fast_path=True)
    exact = SwitchCAC("sw", fast_path=False)
    for switch in (fast, exact):
        switch.configure_link("out", {0: 10_000})
        switch.admit("base", "in0", "out", 0, cbr(F(1, 8)).worst_case_stream())
    stream = cbr(F(1, 16)).worst_case_stream().delayed(4)
    screened = fast.check("in1", "out", 0, stream)
    reference = exact.check("in1", "out", 0, stream)
    assert screened.admitted and reference.admitted
    assert screened.computed_bounds[0] >= reference.computed_bounds[0]


def test_env_switch_controls_default(monkeypatch):
    monkeypatch.setenv("CAC_FAST_PATH", "off")
    assert not SwitchCAC("a").fast_path
    assert SwitchCAC("b", fast_path=True).fast_path  # ctor wins
    monkeypatch.setenv("CAC_FAST_PATH", "on")
    assert SwitchCAC("c").fast_path
    monkeypatch.delenv("CAC_FAST_PATH")
    assert SwitchCAC("d").fast_path  # on by default


CHURN_SCENARIOS = {
    "instant": ChurnScenario(topology="dual-ring", nodes=4, bound=48.0,
                             rate=0.15, offered_load=3.0, events=250,
                             seed=5, k=2),
    "plane": ChurnScenario(topology="dual-ring", nodes=4, bound=48.0,
                           rate=0.15, offered_load=3.0, events=250,
                           seed=5, k=2, setup_latency=2.0,
                           reservation_ttl=40.0),
    "star-vbr": ChurnScenario(topology="star", nodes=6, bound=32.0,
                              rate=0.1, mbs=4, offered_load=2.0,
                              events=250, seed=9),
}


@pytest.mark.parametrize("name", sorted(CHURN_SCENARIOS))
def test_churn_runs_are_report_identical(name):
    scenario = CHURN_SCENARIOS[name]
    screened = run_scenario(replace(scenario, fast_path=True))
    exact = run_scenario(replace(scenario, fast_path=False))
    assert screened.ledger_digest == exact.ledger_digest
    assert screened.journal_digest == exact.journal_digest
    assert screened.arrivals == exact.arrivals
    assert screened.admitted == exact.admitted
    assert screened.blocked == exact.blocked
    assert screened.blocking == exact.blocking
    assert screened.link_utilization == exact.link_utilization


def _line_factory():
    from repro.network.topology import line_network
    return line_network(4, bounds={0: 64}, terminals_per_switch=2)


def _line_requests(network):
    from repro.network.connection import ConnectionRequest
    from repro.network.routing import shortest_path
    requests = []
    for index in range(6):
        src = f"t0.{index % 2}"
        dst = f"t3.{(index + 1) % 2}"
        requests.append(ConnectionRequest(
            f"vc{index}", cbr(F(1, 12)), shortest_path(network, src, dst)))
    return requests


_FAST_PATH_SEEDS = int(os.environ.get("FAST_PATH_SEEDS", "6"))


@pytest.mark.parametrize("seed", range(_FAST_PATH_SEEDS))
@pytest.mark.parametrize("batched", [False, True])
def test_fault_schedules_are_report_identical(seed, batched):
    """Crashes, retries and link failures hit both paths identically."""
    reports = {
        fast: run_schedule(seed, _line_factory, _line_requests,
                           batched=batched, link_failures=1,
                           fast_path=fast)
        for fast in (True, False)
    }
    screened, exact = reports[True], reports[False]
    assert screened.plan == exact.plan
    assert screened.established == exact.established
    assert screened.errors == exact.errors
    assert screened.recovered == exact.recovered
    assert screened.journals == exact.journals
    assert screened.migrated == exact.migrated
    assert screened.dropped == exact.dropped
    assert screened.kept == exact.kept
    assert screened.consistent and exact.consistent
    assert screened.equivalent and exact.equivalent
    assert screened.booking_safe and exact.booking_safe


def test_fraction_streams_stay_on_the_exact_arithmetic_path():
    """Fraction traffic has no NumPy kernel; the screen still agrees."""
    stream = VBRParameters(pcr=F(1, 4), scr=F(1, 12),
                           mbs=3).worst_case_stream()
    assert stream.kernel is None
    fast, fast_outcomes, _ = _run_twin(
        [("admit", f"vc{i}", f"in{i % 3}", i % 2,
          (VBRParameters(pcr=F(1, 4), scr=F(1, 12), mbs=3), 8 * i))
         for i in range(8)], fast_path=True)
    exact, exact_outcomes, _ = _run_twin(
        [("admit", f"vc{i}", f"in{i % 3}", i % 2,
          (VBRParameters(pcr=F(1, 4), scr=F(1, 12), mbs=3), 8 * i))
         for i in range(8)], fast_path=False)
    assert fast_outcomes == exact_outcomes
    assert fast.verify_consistency() and exact.verify_consistency()
