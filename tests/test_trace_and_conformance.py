"""Cell tracing and the contract-conformance checker."""

import pytest

from repro.core.traffic import VBRParameters, cbr, check_conformance, worst_case_cell_times
from repro.sim import CellTracer, Engine, ScheduleSource, SimSwitch


class TestCellTracer:
    def _traced_run(self, keep=None):
        engine = Engine()
        tracer = CellTracer(engine, keep=keep)
        delivered = []
        switch = SimSwitch(engine, "sw")
        switch.add_port("out", tracer.observer("sw:out", delivered.append))
        switch.set_forwarding("vc", "out", 0)
        ScheduleSource(engine, "vc", [0.0, 0.5, 4.0],
                       tracer.observer("ingress", switch.receive))
        engine.run()
        return tracer, delivered

    def test_journeys_record_stations_in_order(self):
        tracer, delivered = self._traced_run()
        journey = tracer.journey("vc", 0)
        assert [e.station for e in journey.events] == ["ingress", "sw:out"]
        times = [e.time for e in journey.events]
        assert times == sorted(times)

    def test_total_time_and_timeline(self):
        tracer, _ = self._traced_run()
        journey = tracer.journey("vc", 1)
        assert journey.total_time > 0
        line = journey.timeline()
        assert "vc#1" in line and "ingress" in line

    def test_journeys_filter_by_connection(self):
        tracer, _ = self._traced_run()
        assert len(tracer.journeys("vc")) == 3
        assert tracer.journeys("other") == []

    def test_dump(self):
        tracer, _ = self._traced_run()
        dump = tracer.dump()
        assert dump.count("\n") == 2          # three lines

    def test_keep_evicts_oldest(self):
        tracer, _ = self._traced_run(keep=2)
        assert len(tracer.journeys()) == 2
        with pytest.raises(KeyError):
            tracer.journey("vc", 0)

    def test_untraced_cell_raises(self):
        tracer, _ = self._traced_run()
        with pytest.raises(KeyError):
            tracer.journey("vc", 99)


class TestCheckConformance:
    def test_conforming_cbr(self):
        assert check_conformance([0.0, 4.0, 8.0, 12.0], cbr(0.25)) == []

    def test_peak_violation_flagged(self):
        assert check_conformance([0.0, 1.0, 8.0], cbr(0.25)) == [1]

    def test_worst_case_schedule_conforms(self):
        params = VBRParameters(pcr=0.5, scr=0.1, mbs=4)
        times = worst_case_cell_times(params, 20)
        assert check_conformance(times, params) == []

    def test_burst_overrun_flagged(self):
        params = VBRParameters(pcr=0.5, scr=0.05, mbs=3)
        # Four peak-spaced cells: one more than the burst allows.
        times = [0.0, 2.0, 4.0, 6.0]
        assert check_conformance(times, params) == [3]

    def test_violation_does_not_cascade(self):
        # The tagged cell doesn't consume tokens: later conforming
        # cells stay clean.
        params = VBRParameters(pcr=0.5, scr=0.05, mbs=3)
        times = [0.0, 2.0, 4.0, 6.0, 100.0]
        assert check_conformance(times, params) == [3]

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            check_conformance([4.0, 0.0], cbr(0.25))

    def test_empty_schedule(self):
        assert check_conformance([], cbr(0.5)) == []
