"""Property tests: the NumPy float fast path agrees with the exact path.

Every strategy generates exact :class:`fractions.Fraction` streams, runs
the algorithm on them (which always takes the scalar exact path -- a
kernel is never built for Fraction inputs), then re-runs the algorithm
on the float twins produced by :meth:`BitStream.as_floats` (which take
the :mod:`repro.core.kernels` fast path whenever NumPy is available)
and asserts agreement to within 1e-9.

The generated fractions have small denominators, so exact values near
decision boundaries (stability ``rate <= 1``, zero service slope) are
either *at* the boundary -- where the float conversion is exact -- or
at least ~1e-6 away from it, far beyond float round-off.  Branch
decisions therefore never flip between the two paths and ``inf``
results must match exactly.
"""

import math
from fractions import Fraction as F

import pytest
from hypothesis import given, strategies as st

from repro.core.bitstream import BitStream, ZERO_STREAM, aggregate
from repro.core.delay_bound import backlog_bound_with_higher, delay_bound
from repro.core.kernels import kernels_enabled

TOLERANCE = 1e-9

fractions_01 = st.fractions(min_value=F(1, 20), max_value=1,
                            max_denominator=20)
positive_gaps = st.fractions(min_value=F(1, 4), max_value=20,
                             max_denominator=8)
probe_times = st.fractions(min_value=0, max_value=60, max_denominator=8)


@st.composite
def monotone_streams(draw, max_segments=4, max_head_rate=1):
    """A canonical non-increasing stream with Fraction arithmetic."""
    count = draw(st.integers(min_value=1, max_value=max_segments))
    raw = sorted(
        draw(st.lists(fractions_01, min_size=count, max_size=count)),
        reverse=True,
    )
    rates = [rate * max_head_rate for rate in raw]
    gaps = draw(st.lists(positive_gaps, min_size=count - 1,
                         max_size=count - 1))
    times = [F(0)]
    for gap in gaps:
        times.append(times[-1] + gap)
    return BitStream(rates, times)


def close(a, b, tolerance=TOLERANCE):
    """Scalar agreement, treating the two infinities as equal."""
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= tolerance * (1 + abs(b))


# ----------------------------------------------------------------------
# Fast-path engagement (gating policy)
# ----------------------------------------------------------------------

@given(monotone_streams())
def test_fraction_streams_never_get_a_kernel(s):
    assert s.kernel is None


@given(monotone_streams())
def test_float_streams_get_a_kernel_when_numpy_present(s):
    twin = s.as_floats()
    if kernels_enabled():
        assert twin.kernel is not None
    else:  # pragma: no cover - exercised only without numpy
        assert twin.kernel is None


def test_pure_int_streams_stay_exact():
    # Integer streams (the zero stream, a saturated link) keep the
    # exact path so their results keep integer types.
    assert ZERO_STREAM.kernel is None
    assert BitStream.constant(1).kernel is None


# ----------------------------------------------------------------------
# Point lookups
# ----------------------------------------------------------------------

@given(monotone_streams(max_head_rate=2), probe_times)
def test_bits_matches_exact(s, t):
    assert close(s.as_floats().bits(float(t)), s.bits(t))


@given(monotone_streams(max_head_rate=2), probe_times)
def test_rate_at_matches_exact(s, t):
    assert close(s.as_floats().rate_at(float(t)), s.rate_at(t))


@given(monotone_streams(max_head_rate=2),
       st.fractions(min_value=0, max_value=40, max_denominator=8))
def test_time_of_bits_matches_exact(s, amount):
    assert close(s.as_floats().time_of_bits(float(amount)),
                 s.time_of_bits(amount))


# ----------------------------------------------------------------------
# Stream-valued operations (Algorithms 3.1-3.4)
# ----------------------------------------------------------------------

@given(monotone_streams(), monotone_streams())
def test_multiplex_matches_exact(a, b):
    fast = a.as_floats() + b.as_floats()
    assert fast.approx_equal(a + b, TOLERANCE)


@given(monotone_streams(), monotone_streams())
def test_demultiplex_matches_exact(a, b):
    total = a + b
    fast = total.as_floats() - b.as_floats()
    assert fast.approx_equal(total - b, TOLERANCE)


@given(st.lists(monotone_streams(), min_size=2, max_size=6))
def test_aggregate_matches_exact(streams):
    fast = aggregate([s.as_floats() for s in streams])
    assert fast.approx_equal(aggregate(streams), TOLERANCE)


@given(monotone_streams(max_head_rate=4))
def test_filtered_matches_exact(s):
    assert s.as_floats().filtered().approx_equal(s.filtered(), TOLERANCE)


@given(monotone_streams(),
       st.fractions(min_value=0, max_value=30, max_denominator=4))
def test_delayed_matches_exact(s, cdv):
    fast = s.as_floats().delayed(float(cdv))
    assert fast.approx_equal(s.delayed(cdv), TOLERANCE)


# ----------------------------------------------------------------------
# Worst-case analysis (Algorithm 4.1)
# ----------------------------------------------------------------------

@given(monotone_streams(max_head_rate=3))
def test_delay_bound_no_interference_matches_exact(s):
    assert close(delay_bound(s.as_floats()), delay_bound(s))


@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_delay_bound_matches_exact(arrivals, interference):
    higher = interference.filtered()
    exact = delay_bound(arrivals, higher)
    fast = delay_bound(arrivals.as_floats(), higher.as_floats())
    assert close(fast, exact)


@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_backlog_bound_matches_exact(arrivals, interference):
    higher = interference.filtered()
    exact = backlog_bound_with_higher(arrivals, higher)
    fast = backlog_bound_with_higher(arrivals.as_floats(),
                                     higher.as_floats())
    assert close(fast, exact)


# ----------------------------------------------------------------------
# Kernel vs scalar on identical float inputs
# ----------------------------------------------------------------------

def _scalar_only(stream):
    """The same float stream with its kernel disabled (exact path)."""
    copy = BitStream._from_canonical(stream.rates, stream.times, False)
    assert copy.kernel is None
    return copy


@pytest.mark.skipif(not kernels_enabled(), reason="NumPy not available")
@given(st.lists(monotone_streams(), min_size=2, max_size=6))
def test_kernel_aggregate_matches_scalar_floats(streams):
    twins = [s.as_floats() for s in streams]
    fast = aggregate(twins)
    slow = aggregate([_scalar_only(s) for s in twins])
    assert fast.kernel is not None
    assert fast.approx_equal(slow, TOLERANCE)


@pytest.mark.skipif(not kernels_enabled(), reason="NumPy not available")
@given(monotone_streams(max_head_rate=2), monotone_streams(max_head_rate=2))
def test_kernel_delay_bound_matches_scalar_floats(arrivals, interference):
    higher = interference.filtered().as_floats()
    twin = arrivals.as_floats()
    fast = delay_bound(twin, higher)
    slow = delay_bound(_scalar_only(twin), _scalar_only(higher))
    assert close(fast, slow)
