"""Tracing spans: nesting, determinism under ManualClock, setup trees."""

from fractions import Fraction as F

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network
from repro.obs.spans import NULL_TRACER, Tracer
from repro.robustness.retry import ManualClock


class TestSpanMechanics:
    def test_nesting_builds_a_tree(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", kind="walk") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
            with tracer.span("inner2"):
                clock.advance(3.0)
        assert tracer.roots == [outer]
        assert outer.children == [inner, tracer.roots[0].children[1]]
        assert outer.tags == {"kind": "walk"}
        assert inner.start == 1.0 and inner.end == 3.0

    def test_durations_are_deterministic_under_manual_clock(self):
        def run():
            clock = ManualClock()
            tracer = Tracer(clock=clock)
            with tracer.span("a"):
                clock.advance(5.0)
                with tracer.span("b"):
                    clock.advance(7.0)
            return [(s.name, s.start, s.end)
                    for s in tracer.roots[0].walk()]
        assert run() == run() == [("a", 0.0, 12.0), ("b", 5.0, 12.0)]

    def test_current_tracks_the_open_span(self):
        tracer = Tracer(clock=ManualClock())
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_walk_and_find(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["root", "leaf", "leaf"]
        assert len(root.find("leaf")) == 2

    def test_tag_updates_mid_span(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("s", a=1) as span:
            span.tag(b=2, a=3)
        assert tracer.roots[0].tags == {"a": 3, "b": 2}

    def test_keep_cap_evicts_oldest_roots(self):
        tracer = Tracer(clock=ManualClock(), keep=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.roots] == ["s3", "s4"]

    def test_exception_still_closes_the_span(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        try:
            with tracer.span("failing"):
                clock.advance(1.0)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.roots[0].end == 1.0

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1) as span:
            span.tag(y=2)
        assert NULL_TRACER.roots == []
        assert span.find("anything") == []


class TestSetupSpanTree:
    def request(self, net, name="vc0"):
        return ConnectionRequest(
            name, cbr(F(1, 8)), shortest_path(net, "t0.0", "t3.0"))

    def test_setup_yields_one_child_span_per_hop(self, obs_enabled):
        _registry, tracer = obs_enabled
        net = line_network(4, bounds={0: 32}, terminals_per_switch=1)
        cac = NetworkCAC(net)
        established = cac.setup(self.request(net))
        roots = [s for s in tracer.roots if s.name == "admission.setup"]
        assert len(roots) == 1
        root = roots[0]
        hops = [c for c in root.children if c.name == "admission.hop"]
        assert root.children == hops            # nothing else at depth 1
        assert len(hops) == len(established.hops) == 4
        assert [h.tags["hop"] for h in hops] == [0, 1, 2, 3]
        assert [h.tags["switch"] for h in hops] == [
            hop.switch for hop in established.hops]
        assert root.tags["outcome"] == "accepted"

    def test_each_hop_nests_its_admission_check(self, obs_enabled):
        _registry, tracer = obs_enabled
        net = line_network(4, bounds={0: 32}, terminals_per_switch=1)
        NetworkCAC(net).setup(self.request(net))
        root = tracer.roots[-1]
        for hop in root.children:
            checks = hop.find("admission.check")
            assert len(checks) == 1
            assert checks[0].tags["switch"] == hop.tags["switch"]

    def test_setup_tree_is_deterministic(self, obs_clock):
        def run():
            from repro import obs
            previous_registry = obs.get_registry()
            previous_tracer = obs.get_tracer()
            previous_clock = obs.get_clock()
            _registry, tracer = obs.enable(clock_source=ManualClock())
            try:
                net = line_network(4, bounds={0: 32},
                                   terminals_per_switch=1)
                NetworkCAC(net).setup(self.request(net))
                return [(s.name, s.start, s.end, tuple(sorted(s.tags)))
                        for s in tracer.roots[0].walk()]
            finally:
                obs.set_registry(previous_registry)
                obs.set_tracer(previous_tracer)
                obs.set_clock(previous_clock)
        assert run() == run()
