"""Two-priority simulation runs validated against per-priority bounds."""

from fractions import Fraction as F

import pytest

from repro.core import SwitchCAC, cbr
from repro.core.traffic import VBRParameters
from repro.sim import CbrSource, Engine, GreedyVbrSource, SimSwitch


def build_port(engine, delivered):
    switch = SimSwitch(engine, "sw")
    switch.add_port("out", delivered.append)
    return switch


class TestTwoPriorityPort:
    def test_both_priorities_within_their_bounds(self):
        # Admission state: what the analysis computes for this mix.
        cac = SwitchCAC("sw")
        cac.configure_link("out", {0: 500, 1: 2000})
        hi = cbr(F(1, 4)).worst_case_stream()
        lo = VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=4).worst_case_stream()
        cac.admit("hi0", "in0", "out", 0, hi)
        cac.admit("hi1", "in1", "out", 0, hi)
        cac.admit("lo0", "in2", "out", 1, lo)
        bound_hi = float(cac.computed_bound("out", 0))
        bound_lo = float(cac.computed_bound("out", 1))

        # Simulation: aligned sources colliding at one port.
        engine = Engine()
        delivered = []
        switch = build_port(engine, delivered)
        switch.set_forwarding("hi0", "out", 0)
        switch.set_forwarding("hi1", "out", 0)
        switch.set_forwarding("lo0", "out", 1)
        CbrSource(engine, "hi0", 0.25, switch.receive, until=1000)
        CbrSource(engine, "hi1", 0.25, switch.receive, until=1000)
        GreedyVbrSource(
            engine, "lo0",
            VBRParameters(pcr=F(1, 2), scr=F(1, 8), mbs=4),
            100, switch.receive)
        engine.run()

        worst = {"hi0": 0.0, "hi1": 0.0, "lo0": 0.0}
        for cell in delivered:
            worst[cell.connection] = max(
                worst[cell.connection], cell.hop_waits[0])
        assert worst["hi0"] <= bound_hi + 1e-9
        assert worst["hi1"] <= bound_hi + 1e-9
        assert worst["lo0"] <= bound_lo + 1e-9
        # And priorities actually separate the service.
        assert max(worst["hi0"], worst["hi1"]) <= worst["lo0"]

    def test_high_priority_unaffected_by_low_load(self):
        def run(with_low):
            engine = Engine()
            delivered = []
            switch = build_port(engine, delivered)
            switch.set_forwarding("hi", "out", 0)
            CbrSource(engine, "hi", 0.5, switch.receive, until=500)
            if with_low:
                switch.set_forwarding("lo", "out", 1)
                CbrSource(engine, "lo", 0.4, switch.receive,
                          phase=0.3, until=500)
            engine.run()
            return max(cell.hop_waits[0] for cell in delivered
                       if cell.connection == "hi")
        # Low-priority traffic may add at most the one-cell
        # non-preemption blocking (a cell mid-transmission finishes).
        assert run(True) <= run(False) + 1.0
