"""Property: churn at arrival rate 0 is a perfect no-op.

The issue's equivalence contract: *any* interleaving of churn machinery
at arrival rate 0 -- whatever the seed, event budget, class mix, pair
set or armed policy -- schedules nothing, fires nothing, and leaves
every switch's state bit-identical to the seed snapshot.  A second
property drives real setup/teardown churn and checks the network
returns to empty after a full drain, with consistent caches.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import NetworkCAC
from repro.core.traffic import cbr
from repro.network.topology import star_network
from repro.workload import ChurnEngine, TrafficClass, make_policy, star_pairs

POLICIES = ["first-path", "k-alternate", "least-loaded"]


def fresh_cac(seed):
    return NetworkCAC(star_network(4, bounds={0: 32}),
                      rng=random.Random(seed))


@st.composite
def zero_rate_classes(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return [
        TrafficClass(
            f"cls{index}",
            cbr(draw(st.sampled_from([0.05, 0.1, 0.2]))),
            arrival_rate=0.0,
            mean_holding=draw(st.floats(min_value=1.0, max_value=1e4)),
            priority=draw(st.integers(min_value=0, max_value=1)),
        )
        for index in range(count)
    ]


class TestZeroRateNoOp:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        budget=st.integers(min_value=0, max_value=10_000),
        classes=zero_rate_classes(),
        policy=st.sampled_from(POLICIES),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_state_bit_identical_to_seed_snapshot(
            self, seed, budget, classes, policy, k):
        cac = fresh_cac(seed)
        before = {name: switch.snapshot_state()
                  for name, switch in cac.switches().items()}
        engine = ChurnEngine(
            cac, classes, pairs=star_pairs(cac.network), seed=seed,
            policy=make_policy(policy, k),
        )
        fired = engine.run(max_events=budget)
        assert fired == 0
        assert engine.ledger == []
        assert engine.engine.pending_events == 0
        after = {name: switch.snapshot_state()
                 for name, switch in cac.switches().items()}
        assert after == before
        assert engine.report().ledger_digest == \
               ChurnEngine(
                   fresh_cac(seed), classes,
                   pairs=star_pairs(cac.network), seed=seed,
               ).report().ledger_digest


class TestChurnDrainsClean:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        budget=st.integers(min_value=1, max_value=120),
        policy=st.sampled_from(POLICIES),
    )
    def test_any_interleaving_drains_to_empty(self, seed, budget, policy):
        cac = fresh_cac(seed)
        engine = ChurnEngine(
            cac,
            [TrafficClass("cbr", cbr(0.1), 0.02, 150.0)],
            pairs=star_pairs(cac.network), seed=seed,
            policy=make_policy(policy, 2),
        )
        engine.run(max_events=budget)
        engine.drain()
        assert cac.established == {}
        for switch in cac.switches().values():
            switch.verify_consistency()
            assert switch.snapshot_state()["committed"] in ([], {})
