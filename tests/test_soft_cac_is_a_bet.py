"""The hard/soft trade-off, demonstrated: soft bounds are not worst-case.

Section 4.3 discussion 1 is explicit that summation is the only true
worst case and that square-root accumulation is a probabilistic bet for
*soft* real time.  These tests make the trade-off concrete with the
envelope-replay adversary:

* traffic clumped by the full (hard) upstream CDV stays within the
  HARD bound -- always;
* the same traffic can exceed the SOFT bound, because soft CDV assumed
  less clumping than the adversary delivered.

This is the honest counterpart of Figure 13: the extra capacity soft
CAC admits is paid for with guarantees that an adversarial (if
improbable) jitter pattern can break.
"""

from fractions import Fraction as F

import pytest

from repro.core import aggregate, cbr, delay_bound
from repro.core.accumulation import HARD, SOFT
from repro.sim import Engine, EnvelopeSource, SimSwitch

NODE_BOUND = 32
UPSTREAM_HOPS = 9


def clumped_streams(count, rate, policy):
    """Per-connection envelopes for the CDV the policy assumes."""
    cdv = policy.accumulate([NODE_BOUND] * UPSTREAM_HOPS)
    return [
        cbr(rate).worst_case_stream().delayed(cdv).filtered()
        for _ in range(count)
    ]


def drive_port(streams, cells=60):
    """Worst observed wait when replaying the envelopes into one port."""
    engine = Engine()
    delivered = []
    switch = SimSwitch(engine, "sw")
    switch.add_port("out", delivered.append)
    for index, stream in enumerate(streams):
        switch.set_forwarding(f"vc{index}", "out", 0)
        EnvelopeSource(engine, f"vc{index}", stream, cells, switch.receive)
    engine.run()
    return max(cell.hop_waits[0] for cell in delivered)


COUNT = 4
RATE = F(1, 8)


class TestHardBoundAlwaysHolds:
    def test_worst_clumping_within_hard_bound(self):
        hard_streams = clumped_streams(COUNT, RATE, HARD)
        observed = drive_port(hard_streams)
        hard_bound = float(delay_bound(aggregate(hard_streams)))
        assert observed <= hard_bound + 1e-9


class TestSoftBoundIsABet:
    def test_soft_bound_smaller_than_hard(self):
        soft_bound = float(delay_bound(
            aggregate(clumped_streams(COUNT, RATE, SOFT))))
        hard_bound = float(delay_bound(
            aggregate(clumped_streams(COUNT, RATE, HARD))))
        assert soft_bound < hard_bound

    def test_adversarial_clumping_can_exceed_soft_bound(self):
        """Full worst-case jitter breaks the soft estimate.

        The adversary delays cells by the true upstream maximum (the
        hard CDV); the soft analysis assumed only sqrt-sum clumping, so
        its bound undershoots what this traffic achieves.
        """
        soft_bound = float(delay_bound(
            aggregate(clumped_streams(COUNT, RATE, SOFT))))
        observed = drive_port(clumped_streams(COUNT, RATE, HARD))
        assert observed > soft_bound

    def test_soft_bound_holds_for_soft_clumping(self):
        """If jitter really is sqrt-bounded, the soft bound is good."""
        soft_streams = clumped_streams(COUNT, RATE, SOFT)
        observed = drive_port(soft_streams)
        soft_bound = float(delay_bound(aggregate(soft_streams)))
        assert observed <= soft_bound + 1e-9
