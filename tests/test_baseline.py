"""Baseline CAC schemes: peak and sustained bandwidth allocation."""

from fractions import Fraction as F

import pytest

from repro.core.baseline import PeakBandwidthCAC, SustainedBandwidthCAC
from repro.core.traffic import VBRParameters, cbr
from repro.exceptions import AdmissionError
from repro.network.connection import ConnectionRequest
from repro.network.routing import shortest_path
from repro.network.topology import line_network


@pytest.fixture
def net():
    return line_network(3, bounds={0: 32}, terminals_per_switch=2)


def request(net, name, rate, src="t0.0", dst="t2.0", traffic=None):
    return ConnectionRequest(
        name, traffic or cbr(rate), shortest_path(net, src, dst))


class TestPeakBandwidth:
    def test_admits_until_capacity(self, net):
        cac = PeakBandwidthCAC(net)
        for index in range(4):
            cac.setup(request(net, f"vc{index}", F(1, 4)))
        assert not cac.would_admit(request(net, "extra", F(1, 4)))
        with pytest.raises(AdmissionError, match="exceed capacity"):
            cac.setup(request(net, "extra", F(1, 4)))

    def test_exact_fill_allowed(self, net):
        cac = PeakBandwidthCAC(net)
        cac.setup(request(net, "a", F(1, 2)))
        cac.setup(request(net, "b", F(1, 2)))
        assert cac.allocated("s0->s1") == 1

    def test_teardown_releases(self, net):
        cac = PeakBandwidthCAC(net)
        cac.setup(request(net, "a", F(1, 2)))
        cac.teardown("a")
        assert cac.allocated("s0->s1") == 0
        assert cac.established == {}

    def test_teardown_unknown_rejected(self, net):
        with pytest.raises(AdmissionError):
            PeakBandwidthCAC(net).teardown("ghost")

    def test_duplicate_rejected(self, net):
        cac = PeakBandwidthCAC(net)
        cac.setup(request(net, "a", F(1, 4)))
        with pytest.raises(AdmissionError, match="already"):
            cac.setup(request(net, "a", F(1, 4)))

    def test_failure_leaves_no_partial_reservation(self, net):
        cac = PeakBandwidthCAC(net)
        cac.setup(request(net, "hog", F(3, 4), src="t1.0", dst="t2.0"))
        # t0->t2 shares only the s1->s2 link with the hog.
        with pytest.raises(AdmissionError):
            cac.setup(request(net, "late", F(1, 2)))
        assert cac.allocated("s0->s1") == 0

    def test_setup_all_unwinds(self, net):
        cac = PeakBandwidthCAC(net)
        with pytest.raises(AdmissionError):
            cac.setup_all([
                request(net, "a", F(1, 2)),
                request(net, "b", F(3, 4)),
            ])
        assert cac.established == {}

    def test_uses_pcr_for_vbr(self, net):
        cac = PeakBandwidthCAC(net)
        vbr = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        cac.setup(request(net, "v", None, traffic=vbr))
        assert cac.allocated("s0->s1") == F(1, 2)


class TestSustainedBandwidth:
    def test_uses_scr_for_vbr(self, net):
        cac = SustainedBandwidthCAC(net)
        vbr = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        cac.setup(request(net, "v", None, traffic=vbr))
        assert cac.allocated("s0->s1") == F(1, 10)

    def test_admits_more_than_peak_allocation(self, net):
        vbr = VBRParameters(pcr=F(1, 2), scr=F(1, 10), mbs=4)
        peak = PeakBandwidthCAC(net)
        sustained = SustainedBandwidthCAC(net)
        admitted_peak = admitted_sustained = 0
        for index in range(12):
            name = f"vc{index}"
            req = request(net, name, None, traffic=vbr)
            if peak.would_admit(req):
                peak.setup(req)
                admitted_peak += 1
            if sustained.would_admit(req):
                sustained.setup(req)
                admitted_sustained += 1
        assert admitted_peak == 2       # 2 * 0.5 fills the link
        assert admitted_sustained == 10  # 10 * 0.1 fills the link
