"""Pluggable storage backends for a switch's CAC state.

:class:`~repro.core.switch_cac.SwitchCAC` is the admission *protocol*
(checks, two-phase transitions, journaling, recovery); this module is
where its *state* lives.  An :class:`AdmissionStore` owns

* one :class:`~repro.core.port_state.PortState` per configured
  ``(out_link, priority)`` port, wired with the higher-priority sibling
  provider its interference caches need;
* the committed and pending (reserved-but-uncommitted) leg maps of the
  two-phase walk, plus the replayable per-reservation check results.

Everything the switch does -- admission checks, incremental deltas,
journal replay, :meth:`SwitchCAC.verify_consistency` -- goes through
this interface, so swapping the backend cannot change admission
semantics.  Two backends ship:

* :class:`InMemoryAdmissionStore` -- plain dicts, the default;
* :class:`ShardedAdmissionStore` -- state partitioned by output link
  across N in-memory shards.  Because the paper's aggregates never
  couple *different* output links (only priorities of the same link
  interact), out-link sharding is semantically free; it is the
  stepping stone to concurrent per-shard admission in a follow-on PR.

Iteration everywhere is **deterministic**: ports, links and priorities
come back sorted, so batch grouping, serialization and Prometheus
exposition are reproducible across runs regardless of configuration or
admission order.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..exceptions import AdmissionError
from .bitstream import Number
from .port_state import CacheObserver, PortState

__all__ = [
    "AdmissionStore",
    "InMemoryAdmissionStore",
    "ShardedAdmissionStore",
]


class AdmissionStore(ABC):
    """Storage interface behind one switch's CAC state.

    The contract every backend must honour:

    * :meth:`out_links`, :meth:`priorities` and :meth:`ports` iterate
      in sorted order (determinism is part of the interface);
    * :meth:`apply_delta` patches the lower-priority interference
      caches *before* the port's own same-priority state, preserving
      the incremental arithmetic
      :meth:`~repro.core.switch_cac.SwitchCAC.recover` relies on for
      bit-identical replay;
    * committed/pending legs iterate in insertion order (ground-truth
      rebuilds sum streams in admission order).

    The base class also owns the *in-link rate ledger*: a running sum of
    the admitted long-run rate entering via each incoming link, patched
    by the same deltas as the port aggregates.  It is the single source
    of truth behind ``SwitchCAC.in_link_utilization`` -- shared by the
    exact path and the admission fast path, so the two can never
    disagree on in-link feasibility.
    """

    def __init__(self) -> None:
        #: admitted long-run rate per incoming link (exact + fast path).
        self._in_link_rate: Dict[str, Number] = {}

    # -- port configuration and access ---------------------------------

    @abstractmethod
    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        """Create (or reconfigure) the ports of one output link."""

    @abstractmethod
    def has_link(self, out_link: str) -> bool:
        """Is this output link configured?"""

    @abstractmethod
    def out_links(self) -> List[str]:
        """Configured output links, sorted."""

    @abstractmethod
    def priorities(self, out_link: str) -> List[int]:
        """Priorities served on one link, highest (smallest) first."""

    @abstractmethod
    def port(self, out_link: str, priority: int) -> PortState:
        """The :class:`PortState` of one ``(out_link, priority)`` port."""

    @abstractmethod
    def ports(self) -> List[PortState]:
        """Every port, sorted by ``(out_link, priority)``."""

    def ports_for(self, out_link: str) -> List[PortState]:
        """The ports of one output link, highest priority first."""
        return [self.port(out_link, priority)
                for priority in self.priorities(out_link)]

    def ports_below(self, out_link: str, priority: int) -> List[PortState]:
        """Same-link ports of strictly lower priority (larger number)."""
        return [port for port in self.ports_for(out_link)
                if port.priority > priority]

    # -- attachment (observer / filtering mode) ------------------------

    @abstractmethod
    def attach(self, filter_per_input: bool,
               on_cache: Optional[CacheObserver] = None) -> None:
        """Bind the owning switch's filtering mode and cache observer.

        Called once by :class:`SwitchCAC` at construction; applies to
        already-configured ports and to every port configured later.
        """

    # -- leg bookkeeping -----------------------------------------------

    @abstractmethod
    def committed(self) -> Mapping[str, Any]:
        """Committed legs by connection id, in insertion order."""

    @abstractmethod
    def pending(self) -> Mapping[str, Any]:
        """Reserved-but-uncommitted legs, in insertion order."""

    @abstractmethod
    def get_committed(self, connection_id: str) -> Optional[Any]:
        """One committed leg, or ``None``."""

    @abstractmethod
    def get_pending(self, connection_id: str) -> Optional[Any]:
        """One pending leg, or ``None``."""

    @abstractmethod
    def put_committed(self, connection_id: str, leg: Any) -> None:
        """Record a committed leg."""

    @abstractmethod
    def put_pending(self, connection_id: str, leg: Any,
                    result: Any = None) -> None:
        """Record a reservation (with its replayable check result)."""

    @abstractmethod
    def pop_committed(self, connection_id: str) -> Optional[Any]:
        """Remove and return a committed leg, or ``None``."""

    @abstractmethod
    def pop_pending(self, connection_id: str) -> Optional[Any]:
        """Remove and return a pending leg (and its result), or ``None``."""

    @abstractmethod
    def pending_result(self, connection_id: str) -> Optional[Any]:
        """The stored check result of one reservation, or ``None``."""

    # -- incremental deltas --------------------------------------------

    def apply_delta(self, in_link: str, out_link: str, priority: int,
                    stream: Any, add: bool,
                    patch_caches: bool = True) -> None:
        """Patch every affected port for one admit/release delta.

        Lower-priority interference caches are patched first (their
        forced lazy rebuilds must read pre-change aggregates), then the
        port's own same-priority state.  ``patch_caches=False`` is the
        batched pipeline's bulk mode: the ground-truth ``Sia`` update
        still runs per leg in order, but derived caches are dropped
        rather than patched (see :meth:`PortState.apply_same`).
        """
        rate = stream.long_run_rate
        base = self._in_link_rate.get(in_link, 0)
        self._in_link_rate[in_link] = (base + rate) if add else (base - rate)
        for lower in self.ports_below(out_link, priority):
            lower.apply_higher(in_link, stream, add,
                               patch_caches=patch_caches)
        self.port(out_link, priority).apply_same(in_link, stream, add,
                                                 patch_caches=patch_caches)

    def in_link_rate(self, in_link: str) -> Number:
        """Total admitted long-run rate entering via one incoming link."""
        return self._in_link_rate.get(in_link, 0)

    # -- lifecycle ------------------------------------------------------

    @abstractmethod
    def clear_volatile(self) -> None:
        """Drop legs, reservations and every aggregate cache.

        Port *configuration* (advertised bounds) survives -- it is boot
        configuration, not run-time state.  Models a node crash.
        """

    def snapshot(self) -> Dict[str, List[Any]]:
        """The state-determining legs, as ``{"committed", "pending"}``.

        Legs fully determine every aggregate, so this is the whole
        story; :meth:`restore` rebuilds the rest deterministically.
        The lists preserve insertion (admission) order.
        """
        return {
            "committed": list(self.committed().values()),
            "pending": list(self.pending().values()),
        }

    def restore(self, snapshot: Mapping[str, Iterable[Any]]) -> None:
        """Rebuild the store from a :meth:`snapshot`.

        Clears the volatile state, then re-applies every leg in the
        snapshot's order through the same incremental arithmetic as
        live admission, so the rebuilt aggregates are deterministic.
        """
        self.clear_volatile()
        for kind in ("committed", "pending"):
            for leg in snapshot.get(kind, ()):
                if kind == "committed":
                    self.put_committed(leg.connection_id, leg)
                else:
                    self.put_pending(leg.connection_id, leg)
                self.apply_delta(leg.in_link, leg.out_link, leg.priority,
                                 leg.stream, add=True)


class InMemoryAdmissionStore(AdmissionStore):
    """The default backend: plain in-process dictionaries."""

    def __init__(self) -> None:
        super().__init__()
        self._bounds: Dict[str, Dict[int, Number]] = {}
        self._ports: Dict[Tuple[str, int], PortState] = {}
        self._committed: Dict[str, Any] = {}
        self._pending: Dict[str, Any] = {}
        self._pending_results: Dict[str, Any] = {}
        self._filter_per_input = True
        self._on_cache: Optional[CacheObserver] = None

    # -- ports ----------------------------------------------------------

    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        self._bounds[out_link] = dict(bounds)
        for priority, bound in bounds.items():
            key = (out_link, priority)
            existing = self._ports.get(key)
            if existing is not None:
                existing.advertised_bound = bound
                continue
            self._ports[key] = PortState(
                out_link, priority, bound,
                filter_per_input=self._filter_per_input,
                higher_ports=self._higher_provider(out_link, priority),
                on_cache=self._on_cache,
            )
        # A reconfiguration may drop priorities; their ports go too.
        for key in [k for k in self._ports
                    if k[0] == out_link and k[1] not in bounds]:
            del self._ports[key]

    def _higher_provider(self, out_link: str, priority: int):
        def provider() -> List[PortState]:
            return [port for (j, p), port in sorted(self._ports.items())
                    if j == out_link and p < priority]
        return provider

    def has_link(self, out_link: str) -> bool:
        return out_link in self._bounds

    def out_links(self) -> List[str]:
        return sorted(self._bounds)

    def priorities(self, out_link: str) -> List[int]:
        return sorted(self._bounds[out_link])

    def port(self, out_link: str, priority: int) -> PortState:
        try:
            return self._ports[(out_link, priority)]
        except KeyError:
            raise AdmissionError(
                f"no port for priority {priority} on link {out_link!r}"
            ) from None

    def ports(self) -> List[PortState]:
        return [port for _key, port in sorted(self._ports.items())]

    def attach(self, filter_per_input: bool,
               on_cache: Optional[CacheObserver] = None) -> None:
        self._filter_per_input = filter_per_input
        self._on_cache = on_cache
        for port in self._ports.values():
            port.filter_per_input = filter_per_input
            if on_cache is not None:
                port.on_cache = on_cache

    # -- legs -----------------------------------------------------------

    def committed(self) -> Mapping[str, Any]:
        return dict(self._committed)

    def pending(self) -> Mapping[str, Any]:
        return dict(self._pending)

    def get_committed(self, connection_id: str) -> Optional[Any]:
        return self._committed.get(connection_id)

    def get_pending(self, connection_id: str) -> Optional[Any]:
        return self._pending.get(connection_id)

    def put_committed(self, connection_id: str, leg: Any) -> None:
        self._committed[connection_id] = leg

    def put_pending(self, connection_id: str, leg: Any,
                    result: Any = None) -> None:
        self._pending[connection_id] = leg
        if result is not None:
            self._pending_results[connection_id] = result

    def pop_committed(self, connection_id: str) -> Optional[Any]:
        return self._committed.pop(connection_id, None)

    def pop_pending(self, connection_id: str) -> Optional[Any]:
        self._pending_results.pop(connection_id, None)
        return self._pending.pop(connection_id, None)

    def pending_result(self, connection_id: str) -> Optional[Any]:
        return self._pending_results.get(connection_id)

    # -- lifecycle ------------------------------------------------------

    def clear_volatile(self) -> None:
        self._committed.clear()
        self._pending.clear()
        self._pending_results.clear()
        self._in_link_rate.clear()
        for port in self._ports.values():
            port.clear()

    def __repr__(self) -> str:
        return (
            f"InMemoryAdmissionStore(links={self.out_links()}, "
            f"committed={len(self._committed)}, "
            f"pending={len(self._pending)})"
        )


def _shard_of(out_link: str, shard_count: int) -> int:
    """Deterministic (process-independent) shard of one output link."""
    return zlib.crc32(out_link.encode("utf-8")) % shard_count


class ShardedAdmissionStore(AdmissionStore):
    """State partitioned by output link across N in-memory shards.

    The paper's aggregates couple priorities of the *same* output link
    but never different links, so routing every port -- and every leg,
    by its leg's output link -- to ``crc32(out_link) % shards`` cannot
    change any admission decision.  What it buys: each shard is an
    independent :class:`InMemoryAdmissionStore` that a follow-on PR can
    put behind its own lock or worker.

    Iteration (ports, links, committed/pending legs) is globally
    ordered: links sorted across shards, legs in global insertion
    order (tracked by a shared index), so snapshots, ground-truth
    rebuilds and serialization stay byte-reproducible.
    """

    def __init__(self, shard_count: int = 4):
        super().__init__()
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        self.shard_count = shard_count
        self._shards = [InMemoryAdmissionStore()
                        for _ in range(shard_count)]
        #: connection id -> shard index, in global insertion order.
        self._leg_shard: Dict[str, int] = {}

    # -- routing --------------------------------------------------------

    def shard_of_link(self, out_link: str) -> int:
        """Which shard holds one output link's ports."""
        return _shard_of(out_link, self.shard_count)

    def _link_shard(self, out_link: str) -> InMemoryAdmissionStore:
        return self._shards[self.shard_of_link(out_link)]

    def shards(self) -> List[InMemoryAdmissionStore]:
        """The backing shards (read-mostly; for tests and diagnostics)."""
        return list(self._shards)

    # -- ports ----------------------------------------------------------

    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        self._link_shard(out_link).configure_link(out_link, bounds)

    def has_link(self, out_link: str) -> bool:
        return self._link_shard(out_link).has_link(out_link)

    def out_links(self) -> List[str]:
        links: List[str] = []
        for shard in self._shards:
            links.extend(shard.out_links())
        return sorted(links)

    def priorities(self, out_link: str) -> List[int]:
        return self._link_shard(out_link).priorities(out_link)

    def port(self, out_link: str, priority: int) -> PortState:
        return self._link_shard(out_link).port(out_link, priority)

    def ports(self) -> List[PortState]:
        everything: List[PortState] = []
        for shard in self._shards:
            everything.extend(shard.ports())
        return sorted(everything,
                      key=lambda port: (port.out_link, port.priority))

    def attach(self, filter_per_input: bool,
               on_cache: Optional[CacheObserver] = None) -> None:
        for shard in self._shards:
            shard.attach(filter_per_input, on_cache)

    # -- legs -----------------------------------------------------------

    def committed(self) -> Mapping[str, Any]:
        legs: Dict[str, Any] = {}
        for connection_id, index in self._leg_shard.items():
            leg = self._shards[index].get_committed(connection_id)
            if leg is not None:
                legs[connection_id] = leg
        return legs

    def pending(self) -> Mapping[str, Any]:
        legs: Dict[str, Any] = {}
        for connection_id, index in self._leg_shard.items():
            leg = self._shards[index].get_pending(connection_id)
            if leg is not None:
                legs[connection_id] = leg
        return legs

    def get_committed(self, connection_id: str) -> Optional[Any]:
        index = self._leg_shard.get(connection_id)
        if index is None:
            return None
        return self._shards[index].get_committed(connection_id)

    def get_pending(self, connection_id: str) -> Optional[Any]:
        index = self._leg_shard.get(connection_id)
        if index is None:
            return None
        return self._shards[index].get_pending(connection_id)

    def put_committed(self, connection_id: str, leg: Any) -> None:
        index = self.shard_of_link(leg.out_link)
        # Move-to-end so global iteration order matches the in-memory
        # backend's (a commit re-inserts at the tail of its dict).
        self._leg_shard.pop(connection_id, None)
        self._leg_shard[connection_id] = index
        self._shards[index].put_committed(connection_id, leg)

    def put_pending(self, connection_id: str, leg: Any,
                    result: Any = None) -> None:
        index = self.shard_of_link(leg.out_link)
        self._leg_shard.pop(connection_id, None)
        self._leg_shard[connection_id] = index
        self._shards[index].put_pending(connection_id, leg, result)

    def pop_committed(self, connection_id: str) -> Optional[Any]:
        index = self._leg_shard.get(connection_id)
        if index is None:
            return None
        leg = self._shards[index].pop_committed(connection_id)
        if leg is not None and \
                self._shards[index].get_pending(connection_id) is None:
            self._leg_shard.pop(connection_id, None)
        return leg

    def pop_pending(self, connection_id: str) -> Optional[Any]:
        index = self._leg_shard.get(connection_id)
        if index is None:
            return None
        leg = self._shards[index].pop_pending(connection_id)
        if leg is not None and \
                self._shards[index].get_committed(connection_id) is None:
            self._leg_shard.pop(connection_id, None)
        return leg

    def pending_result(self, connection_id: str) -> Optional[Any]:
        index = self._leg_shard.get(connection_id)
        if index is None:
            return None
        return self._shards[index].pending_result(connection_id)

    # -- lifecycle ------------------------------------------------------

    def clear_volatile(self) -> None:
        for shard in self._shards:
            shard.clear_volatile()
        self._leg_shard.clear()
        self._in_link_rate.clear()

    def __repr__(self) -> str:
        return (
            f"ShardedAdmissionStore(shards={self.shard_count}, "
            f"links={self.out_links()}, legs={len(self._leg_shard)})"
        )
