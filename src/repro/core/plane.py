"""The event-driven admission plane: concurrent in-flight setups.

The synchronous :class:`~repro.core.admission.NetworkCAC` API runs one
walk at a time to completion, advancing its private clock past every
timeout and backoff.  That is faithful to the paper's sequential model
but cannot express the situation a real signaling network is in all the
time: *several* setups in flight at once, their per-hop exchanges
interleaving on the shared timeline, each holding phase-1 reservations
that compete for the same ports.

:class:`AdmissionPlane` closes that gap without forking the protocol
logic.  Every walk already exists as a *step generator*
(:meth:`NetworkCAC.setup_steps` and friends -- see
:func:`~repro.network.signaling.drain_steps`); the plane runs those very
generators as :meth:`Engine.process <repro.sim.engine.Engine.process>`
processes on a shared :class:`~repro.sim.engine.Engine`, after rebinding
the CAC (health monitor and breakers included) onto an
:class:`~repro.obs.clock.EngineClock`.  Because the engine fires events
in deterministic ``(time, sequence)`` order, N concurrent walks resolve
their conflicts deterministically: whoever's RESERVE event fires first
holds the resources, seeded run after seeded run.

**Determinism contract.**  With exactly one walk in flight at a time,
the engine-driven execution performs the op-for-op identical switch
operations (journals, aggregates, traces) as the synchronous API --
both modes drive the *same* generator, only the wait mechanism differs.

**Reservation TTL.**  A phase-1 reservation is a promise held on a
switch for a sender that may since have died.  With
``reservation_ttl`` set, the plane arms one engine timer per successful
reservation; if the COMMIT (or ABORT) has not consumed the reservation
when the timer fires, the switch discards it on its own initiative
(:meth:`SwitchCAC.expire <repro.core.switch_cac.SwitchCAC.expire>` --
pending state only, commitments are never touched).  A commit that
finds its reservation expired unwinds the whole walk with outcome
``expired``.  All timers of a walk are cancelled the moment the walk
finishes, so a stale timer can never hit a later reservation reusing
the same connection id (e.g. a crankback retry over another route).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable, Dict, List, Optional

from ..exceptions import SwitchUnavailable
from ..network.connection import ConnectionRequest, EstablishedConnection
from ..network.signaling import SignalingTrace
from ..obs.clock import EngineClock
from ..sim.engine import Engine, EventHandle, ProcessHandle
from .admission import NetworkCAC

__all__ = ["AdmissionPlane", "SetupOutcome"]


@dataclass(frozen=True, slots=True)
class SetupOutcome:
    """Final result of one submitted setup walk.

    Exactly one of ``established`` / ``error`` is set.  ``started`` and
    ``finished`` are engine times, so ``finished - started`` is the
    walk's signaling latency on the shared timeline.
    """

    request: ConnectionRequest
    established: Optional[EstablishedConnection]
    error: Optional[BaseException]
    started: float
    finished: float

    @property
    def admitted(self) -> bool:
        """True when the walk committed at every hop."""
        return self.established is not None

    @property
    def setup_time(self) -> float:
        """Engine time the walk spent in flight."""
        return self.finished - self.started


class AdmissionPlane:
    """Run admission walks as concurrent processes on a shared engine.

    Parameters
    ----------
    cac:
        The network CAC whose walks this plane drives.  Its clock (and
        its health monitor's and breaker board's) is rebound to the
        engine's timeline at construction -- after that, the
        synchronous CAC API must not be used to *advance* time on this
        instance (instantaneous queries like :meth:`NetworkCAC.would_admit`
        remain fine, and so do whole synchronous walks as long as no
        faults or latency make them wait: an
        :class:`~repro.obs.clock.EngineClock` rejects nonzero advances).
    engine:
        The shared :class:`~repro.sim.engine.Engine`; callers drive it
        (``engine.run(...)``) to make submitted walks progress.
    reservation_ttl:
        Hold time of a phase-1 reservation before the switch discards
        it, in engine time units; ``None`` disables expiry.
    """

    def __init__(self, cac: NetworkCAC, engine: Engine,
                 reservation_ttl: Optional[float] = None):
        if reservation_ttl is not None and reservation_ttl <= 0:
            raise ValueError(
                f"reservation_ttl must be positive, got {reservation_ttl}"
            )
        self.cac = cac
        self.engine = engine
        self.reservation_ttl = reservation_ttl
        self.clock = EngineClock(engine)
        cac.bind_clock(self.clock)
        self._in_flight = 0
        self.outcomes: List[SetupOutcome] = []

    @property
    def in_flight(self) -> int:
        """Walks submitted (setups and failure handlers) not yet done."""
        return self._in_flight

    # ------------------------------------------------------------------

    def _expire(self, switch: str, leg_id: str) -> None:
        """TTL timer fired: ask the switch to discard the reservation.

        A crashed switch already lost its volatile reservations (its
        recovery aborts them from the journal), so it is skipped.
        """
        cac = self.cac.switches().get(switch)
        if cac is None or cac.crashed:
            return
        try:
            cac.expire(leg_id)
        except SwitchUnavailable:  # crashed between check and call
            pass

    def submit(self, request: ConnectionRequest,
               trace: Optional[SignalingTrace] = None,
               on_done: Optional[Callable[[SetupOutcome], None]] = None,
               ) -> ProcessHandle:
        """Launch one setup walk as an engine process.

        Returns immediately with the walk's
        :class:`~repro.sim.engine.ProcessHandle`; the walk makes
        progress as the caller runs the engine.  ``on_done(outcome)``
        fires exactly once, inside the event that finished the walk;
        every outcome is also appended to :attr:`outcomes`.
        """
        timers: Dict[str, EventHandle] = {}
        started = self.engine.now

        def arm(switch: str, leg_id: str) -> None:
            if self.reservation_ttl is None:
                return
            # Idempotent reserve re-deliveries re-arm the hold timer.
            old = timers.pop(switch, None)
            if old is not None:
                old.cancel()
            timers[switch] = self.engine.schedule_in(
                self.reservation_ttl,
                lambda: self._expire(switch, leg_id),
            )

        def steps():
            try:
                return (yield from self.cac.setup_steps(
                    request, trace, on_reserved=arm))
            finally:
                # However the walk ended, its hold timers die with it:
                # a stale timer must never expire a later reservation
                # booked under the same connection id.
                for handle in timers.values():
                    handle.cancel()
                timers.clear()

        def finish(process: ProcessHandle) -> None:
            self._in_flight -= 1
            outcome = SetupOutcome(
                request=request,
                established=None if process.error is not None
                else process.result,
                error=process.error,
                started=started,
                finished=self.engine.now,
            )
            self.outcomes.append(outcome)
            if on_done is not None:
                on_done(outcome)

        self._in_flight += 1
        return self.engine.process(steps(), on_done=finish)

    # ------------------------------------------------------------------
    # The rest of the admission API, as engine processes
    # ------------------------------------------------------------------

    def _submit_steps(self, steps,
                      on_done: Optional[Callable[[ProcessHandle], None]],
                      ) -> ProcessHandle:
        def finish(process: ProcessHandle) -> None:
            self._in_flight -= 1
            if on_done is not None:
                on_done(process)

        self._in_flight += 1
        return self.engine.process(steps, on_done=finish)

    def submit_teardown(self, name: str,
                        trace: Optional[SignalingTrace] = None,
                        on_done: Optional[
                            Callable[[ProcessHandle], None]] = None,
                        ) -> ProcessHandle:
        """Release an established connection, hop by hop, in engine time."""
        return self._submit_steps(
            self.cac.teardown_steps(name, trace), on_done)

    def submit_migrate(self, name: str, avoid: AbstractSet[str],
                       trace: Optional[SignalingTrace] = None,
                       on_done: Optional[
                           Callable[[ProcessHandle], None]] = None,
                       ) -> ProcessHandle:
        """Run one make-before-break migration as an engine process."""
        return self._submit_steps(
            self.cac.migrate_steps(name, avoid, trace), on_done)

    def submit_link_failure(self, link: str,
                            policy: str = "migrate-or-drop",
                            trace: Optional[SignalingTrace] = None,
                            on_done: Optional[
                                Callable[[ProcessHandle], None]] = None,
                            ) -> ProcessHandle:
        """Handle a link failure (migrations included) in engine time."""
        return self._submit_steps(
            self.cac.handle_link_failure_steps(link, policy, trace), on_done)

    def submit_switch_failure(self, switch: str,
                              policy: str = "migrate-or-drop",
                              trace: Optional[SignalingTrace] = None,
                              on_done: Optional[
                                  Callable[[ProcessHandle], None]] = None,
                              ) -> ProcessHandle:
        """Handle a switch failure (migrations included) in engine time."""
        return self._submit_steps(
            self.cac.handle_switch_failure_steps(switch, policy, trace),
            on_done)

    def __repr__(self) -> str:
        return (
            f"AdmissionPlane(in_flight={self._in_flight}, "
            f"ttl={self.reservation_ttl}, outcomes={len(self.outcomes)})"
        )
