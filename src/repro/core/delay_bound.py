"""Worst-case queueing analysis for static-priority FIFO ports (Section 4.2).

A static-priority FIFO output port serves, at every instant, the
highest-priority queue that holds cells; within a queue cells leave in
arrival order.  For a priority level ``p`` the analysis takes two inputs:

* ``S`` -- the aggregated worst-case arrival stream of priority ``p``;
* ``S1`` -- the *filtered* aggregated arrival stream of all priorities
  strictly higher than ``p`` (filtered because it already passed the
  output link model; its rate never exceeds 1).

The service available to priority ``p`` up to time ``t`` is then

    ``C(t) = integral of (1 - r1(tau)) dtau``

and a bit of ``S`` arriving at time ``t`` leaves at

    ``g(t) = inf { u : C(u) >= A(t) }``

where ``A`` is the cumulative arrival curve of ``S``.  The worst-case
queueing delay bound is ``D = max_t (g(t) - t)`` (Algorithm 4.1,
Figure 8).  Because ``A`` and ``C`` are piecewise linear -- ``A`` concave,
``C`` convex (``r1`` non-increasing makes ``1 - r1`` non-decreasing) --
``D(t)`` is piecewise linear and its maximum is attained either at a
breakpoint of ``S`` or at a pre-image under ``A`` of a breakpoint of
``S1``.  We evaluate exactly those finitely many candidates, which gives
the same bound as the paper's forward scan while remaining robust when
``r1`` has an initial full-rate plateau or when ties occur.

When the long-run arrival rates satisfy ``r + r1 > 1`` the backlog grows
without bound and the delay bound is ``math.inf`` (such a configuration
is what the CAC rejects).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from ..exceptions import BitStreamError
from ..obs import metrics as _om
from . import kernels as _kernels
from .bitstream import BitStream, Number

__all__ = [
    "delay_bound",
    "delay_at",
    "departure_time",
    "backlog_bound_with_higher",
    "is_stable",
    "latency_rate_bound",
    "ServiceCurve",
]


class ServiceCurve:
    """The cumulative service ``C(t)`` left over by higher priorities.

    Wraps the filtered higher-priority stream ``S1`` and exposes the
    piecewise-linear curve ``C(t) = integral of (1 - r1)`` together with
    its (left-continuous) inverse.  With no higher-priority traffic the
    curve degenerates to ``C(t) = t``.
    """

    def __init__(self, higher: Optional[BitStream] = None):
        if higher is None:
            higher = BitStream.zero()
        if higher.peak_rate > 1:
            raise BitStreamError(
                "the higher-priority stream must be filtered (rate <= 1) "
                f"before computing delay bounds; got peak rate "
                f"{higher.peak_rate}"
            )
        self._higher = higher
        #: service accumulated by each breakpoint of S1
        self._values: Tuple[Number, ...] = self._cumulative()

    @property
    def higher(self) -> BitStream:
        """The filtered higher-priority stream this curve derives from."""
        return self._higher

    @property
    def tail_rate(self) -> Number:
        """Service rate available after the last breakpoint, ``1 - r1``."""
        return 1 - self._higher.long_run_rate

    def _cumulative(self) -> Tuple[Number, ...]:
        values = []
        total: Number = 0
        times = self._higher.times
        rates = self._higher.rates
        for index, start in enumerate(times):
            if index > 0:
                gap = start - times[index - 1]
                total += (1 - rates[index - 1]) * gap
            values.append(total)
        return tuple(values)

    def value(self, t: Number) -> Number:
        """Cumulative service ``C(t)`` available to priority ``p``."""
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        index = self._higher._segment_index(t)
        start = self._higher.times[index]
        return self._values[index] + (1 - self._higher.rates[index]) * (t - start)

    def inverse(self, amount: Number) -> Number:
        """Latest time at which cumulative service still equals ``amount``.

        This is the *sup*-inverse ``inf { u : C(u) > amount }``: when the
        service curve plateaus at ``amount`` (higher priorities hold the
        link), the inverse lands on the *right* edge of the plateau.
        The sup-inverse is what makes the delay bound tight from above --
        a priority-``p`` bit arriving just after the plateau level is
        reached waits out the whole plateau, and ``D(t)`` has an upward
        jump there that a left-inverse would miss.

        Returns ``math.inf`` when the required service level is never
        exceeded (higher priorities saturate the link forever).
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        times = self._higher.times
        rates = self._higher.rates
        for index, start in enumerate(times):
            slope = 1 - rates[index]
            base = self._values[index]
            end_value = (
                self._values[index + 1] if index + 1 < len(times) else None
            )
            if end_value is not None and end_value <= amount:
                continue  # C has not exceeded ``amount`` by this segment's end
            if slope == 0:
                return math.inf  # final plateau: never exceeds ``amount``
            return start + (amount - base) / slope
        raise AssertionError("unreachable")  # pragma: no cover

    def breakpoints(self) -> Sequence[Tuple[Number, Number]]:
        """``(time, C(time))`` pairs at the breakpoints of ``S1``."""
        return list(zip(self._higher.times, self._values))


def is_stable(stream: BitStream, higher: Optional[BitStream] = None) -> bool:
    """True when the worst-case backlog of priority ``p`` stays bounded.

    Stability requires the long-run arrival rate of ``S`` plus the
    long-run rate of the higher-priority interference to stay at or
    below the link rate.  Equality is allowed: the backlog then stops
    growing and the delay bound is still finite.
    """
    interference = higher.long_run_rate if higher is not None else 0
    return stream.long_run_rate + interference <= 1


def departure_time(stream: BitStream, service: ServiceCurve, t: Number) -> Number:
    """Worst-case departure time ``g(t)`` of a bit arriving at time ``t``.

    The bit leaves once the port, always busy with higher-priority cells
    first, has served all ``A(t)`` priority-``p`` bits that arrived no
    later than it did.  Never earlier than ``t`` itself.
    """
    leave = service.inverse(stream.bits(t))
    return leave if leave > t else t


def delay_at(stream: BitStream, higher: Optional[BitStream], t: Number) -> Number:
    """Worst-case queueing delay ``D(t) = g(t) - t`` of a bit arriving at ``t``.

    A diagnostic helper; :func:`delay_bound` maximizes this function.
    """
    service = ServiceCurve(higher)
    return departure_time(stream, service, t) - t


#: ``(generation, {(op, path): Counter})`` -- the kernel-path counters,
#: bound lazily and re-bound when the global registry changes.
_path_counters = (-1, {})


def _note_path(op: str, fast: bool) -> None:
    """Count one bound evaluation on the numpy or scalar path."""
    global _path_counters
    generation, counters = _path_counters
    if generation != _om._generation:
        counters = {}
        _path_counters = (_om._generation, counters)
    key = (op, "numpy" if fast else "scalar")
    counter = counters.get(key)
    if counter is None:
        counter = _om.get_registry().counter(
            "kernel_path_total", op=op, path=key[1])
        counters[key] = counter
    counter.inc()


def _fast_kernels(stream: BitStream, higher: Optional[BitStream]):
    """``(stream_kernel, higher_kernel)`` when the float path applies.

    The fast path engages when the arrival stream has a NumPy kernel
    and the interference either is absent/zero or has one too; exact
    (Fraction) inputs on either side keep the scalar algorithms.
    Returns ``None`` when the exact path must run.
    """
    stream_kernel = stream.kernel
    if stream_kernel is None:
        return None
    if higher is None or higher.is_zero:
        return stream_kernel, None
    higher_kernel = higher.kernel
    if higher_kernel is None:
        return None
    return stream_kernel, higher_kernel


def delay_bound(stream: BitStream, higher: Optional[BitStream] = None,
                *, service: Optional[ServiceCurve] = None) -> Number:
    """Algorithm 4.1: the worst-case queueing delay bound for ``stream``.

    Parameters
    ----------
    stream:
        Aggregated priority-``p`` arrival stream ``S`` at the queueing
        point (may exceed rate 1; several incoming links can feed one
        output port).
    higher:
        Filtered aggregated stream ``S1`` of all higher priorities, or
        ``None`` when ``p`` is the highest priority level.  For the
        highest priority the bound degenerates to the maximum backlog of
        Figure 7, as the paper notes.
    service:
        Optional pre-built :class:`ServiceCurve` for ``S1``; supplying
        one (as :class:`~repro.core.switch_cac.SwitchCAC` does from its
        per-port memo) skips rebuilding the cumulative-service prefix
        sums on every check.  Overrides ``higher`` when given.

    Returns
    -------
    The maximum of ``D(t)`` over all arrival instants, in cell times;
    ``math.inf`` when the system is unstable.
    """
    if service is not None:
        higher = service.higher
    if stream.is_zero:
        return 0
    if not is_stable(stream, higher):
        return math.inf
    fast = _fast_kernels(stream, higher)
    if _om._registry.enabled:
        _note_path("delay_bound", fast is not None)
    if fast is not None:
        return _kernels.delay_bound_fast(*fast)
    if service is None:
        service = ServiceCurve(higher)

    candidates: set[Number] = set(stream.times)
    for _, served in service.breakpoints():
        # g(t) crosses this service breakpoint when A(t) == C(t1_j);
        # the earliest such arrival instant is a vertex of D(t).
        preimage = stream.time_of_bits(served)
        if preimage != math.inf:
            candidates.add(preimage)

    best: Number = 0
    for t in sorted(candidates):
        arrived = stream.bits(t)
        leave = service.inverse(arrived)
        if leave == math.inf:
            # Service saturates before clearing these arrivals even
            # though long-run rates balance: unbounded delay.
            return math.inf
        delay = leave - t
        if delay > best:
            best = delay
    return best


def latency_rate_bound(burst: Number, higher_burst: Number,
                       higher_rate: Number) -> Number:
    """Closed-form conservative delay bound under affine envelopes.

    If the priority-``p`` arrivals satisfy ``A(t) <= sigma + rho * t``
    and the higher-priority interference satisfies
    ``B1(t) <= sigma1 + rho1 * t`` with ``rho <= 1 - rho1``, the
    leftover service ``C(u) = u - B1(u)`` dominates the latency-rate
    curve ``(1 - rho1) * u - sigma1`` and the worst-case queueing delay
    is at most ``(sigma + sigma1) / (1 - rho1)``: the sup-inverse of
    the latency-rate curve at ``A(t)`` exceeds ``t`` by at most that
    constant when the arrival slope fits the leftover rate.

    This is the sufficient-accept side of the admission fast path
    (see ``docs/performance.md``): :func:`delay_bound` computed on the
    actual streams can only be *smaller*.  Callers must separately
    ensure ``rho + rho1 <= 1``; this helper only guards the
    denominator, returning ``math.inf`` when ``higher_rate >= 1``.
    """
    if higher_rate >= 1:
        return math.inf
    rho1 = higher_rate if higher_rate > 0 else 0
    return (burst + higher_burst) / (1 - rho1)


def backlog_bound_with_higher(stream: BitStream,
                              higher: Optional[BitStream] = None,
                              *, service: Optional[ServiceCurve] = None
                              ) -> Number:
    """Worst-case priority-``p`` queue occupancy, in cells.

    The backlog at time ``u`` is ``A(u) - C(u)`` whenever positive (all
    leftover service is consumed while a backlog exists).  The maximum
    over ``u`` sizes the FIFO buffer needed to guarantee zero loss --
    what Section 5 uses to pick RTnet's 32-cell queues.  Returns
    ``math.inf`` when unstable.  ``service`` works as in
    :func:`delay_bound`.
    """
    if service is not None:
        higher = service.higher
    if stream.is_zero:
        return 0
    if not is_stable(stream, higher):
        return math.inf
    fast = _fast_kernels(stream, higher)
    if _om._registry.enabled:
        _note_path("backlog_bound", fast is not None)
    if fast is not None:
        return _kernels.backlog_bound_fast(*fast)
    if service is None:
        service = ServiceCurve(higher)
    points = sorted(set(stream.times) | set(service.higher.times))
    best: Number = 0
    for point in points:
        backlog = stream.bits(point) - service.value(point)
        if backlog > best:
            best = backlog
    return best
