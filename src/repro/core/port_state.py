"""The pure per-port CAC domain state (Section 4.3's aggregates).

One :class:`PortState` owns everything the paper keeps per output link
``j`` and priority ``p``:

* ``Sia(i, j, p)`` per incoming link ``i`` -- the ground-truth
  aggregated worst-case arrival stream of the connections routed
  ``i -> j`` at priority ``p``;
* the derived-aggregate caches patched by one ``+``/``-`` delta per
  admit/release -- ``Sif(i, j, p)``, ``Soa(j, p)``, the higher-priority
  interference aggregates ``Sia(i, j)(p)`` / ``Sif(i, j)(p)`` /
  ``sum_i Sif(i, j)(p)`` / ``Sof(j)(p)`` -- and the memoized
  :class:`~repro.core.delay_bound.ServiceCurve`.

The object is *pure domain state*: no journaling, no two-phase
bookkeeping, no metrics registry -- those belong to
:class:`~repro.core.switch_cac.SwitchCAC`.  The only outward hooks are

* ``higher_ports`` -- a provider (injected by the owning
  :class:`~repro.core.store.AdmissionStore`) yielding the sibling
  :class:`PortState` objects of strictly higher priority on the same
  output link, which the lazy rebuilds of the interference caches read;
* ``on_cache`` -- an optional ``(hit, cache_name)`` callback the owner
  uses to count cache hits/misses without this layer importing the
  observability stack.

Incremental discipline (see ``docs/performance.md``): when a stream is
admitted or released at priority ``p``, :meth:`apply_same` patches the
same-priority state of the ``(j, p)`` port and :meth:`apply_higher`
patches the interference caches of every *lower*-priority sibling.
Callers must invoke ``apply_higher`` on the lower siblings **before**
``apply_same`` on the port itself, so that any forced lazy rebuild
still reads the pre-change aggregates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .bitstream import BitStream, Number, ZERO_STREAM, aggregate
from .delay_bound import ServiceCurve

__all__ = ["PortState", "CacheObserver", "HigherPortsProvider"]

#: ``(hit, cache_name)`` callback counting derived-cache hits/misses.
CacheObserver = Callable[[bool, str], None]

#: Provider of the same-out-link ports of strictly higher priority,
#: ordered highest priority first.
HigherPortsProvider = Callable[[], Iterable["PortState"]]


def _no_observer(_hit: bool, _cache: str) -> None:
    """Default cache observer: count nothing."""


class PortState:
    """CAC aggregates and caches of one ``(out_link, priority)`` port.

    Parameters
    ----------
    out_link / priority:
        The port's coordinates; ``priority`` follows the repository
        convention that smaller numbers are served first.
    advertised_bound:
        The fixed queueing-delay bound ``D(j, p)`` the switch
        advertises for this port (Section 4.1).
    filter_per_input:
        Whether per-input aggregates are smoothed by the incoming link
        before being summed at the output port (the paper's scheme).
    higher_ports:
        Provider of the strictly-higher-priority sibling ports on the
        same output link (highest first); consulted by the lazy
        rebuilds of the interference caches.
    on_cache:
        Optional ``(hit, cache_name)`` observer.
    """

    __slots__ = ("out_link", "priority", "advertised_bound",
                 "filter_per_input", "higher_ports", "on_cache",
                 "_sia", "_sif", "_soa", "_higher", "_sif_higher",
                 "_higher_sum", "_sof", "_service",
                 "ledger_rate", "ledger_burst",
                 "ledger_higher_rate", "ledger_higher_burst")

    def __init__(self, out_link: str, priority: int,
                 advertised_bound: Number,
                 filter_per_input: bool = True,
                 higher_ports: Optional[HigherPortsProvider] = None,
                 on_cache: Optional[CacheObserver] = None):
        self.out_link = out_link
        self.priority = priority
        self.advertised_bound = advertised_bound
        self.filter_per_input = filter_per_input
        self.higher_ports: HigherPortsProvider = higher_ports or (lambda: ())
        self.on_cache: CacheObserver = on_cache or _no_observer
        #: Sia(i, j, p) per incoming link -- the ground truth.
        self._sia: Dict[str, BitStream] = {}
        #: Sif(i, j, p) = filter(Sia(i, j, p)), cached per incoming link.
        self._sif: Dict[str, BitStream] = {}
        #: Soa(j, p) = sum_i Sif(i, j, p).
        self._soa: Optional[BitStream] = None
        #: Sia(i, j)(p): per-pair aggregate of priorities higher than p.
        self._higher: Dict[str, BitStream] = {}
        #: Sif(i, j)(p) = filter(Sia(i, j)(p)).
        self._sif_higher: Dict[str, BitStream] = {}
        #: sum_i Sif(i, j)(p), before the final output filter.
        self._higher_sum: Optional[BitStream] = None
        #: Sof(j)(p) = filter(sum_i Sif(i, j)(p)).
        self._sof: Optional[BitStream] = None
        #: memoized ServiceCurve of Sof(j)(p).
        self._service: Optional[ServiceCurve] = None
        #: Headroom ledger (admission fast path): running sums of the
        #: per-leg ``(sigma, rho)`` envelopes at this priority ...
        self.ledger_rate: Number = 0
        self.ledger_burst: Number = 0
        #: ... and of the strictly-higher-priority legs on this out_link.
        self.ledger_higher_rate: Number = 0
        self.ledger_higher_burst: Number = 0

    # ------------------------------------------------------------------
    # Plain accessors
    # ------------------------------------------------------------------

    def in_links(self) -> List[str]:
        """Incoming links currently carrying traffic to this port, sorted."""
        return sorted(self._sia)

    def is_idle(self) -> bool:
        """True when no traffic is admitted at this port's priority."""
        return not self._sia

    def long_run_rate(self) -> Number:
        """Total admitted long-run rate through this port."""
        total: Number = 0
        for stream in self._sia.values():
            total += stream.long_run_rate
        return total

    def in_link_rate(self, in_link: str) -> Number:
        """Admitted long-run rate entering via one incoming link."""
        stream = self._sia.get(in_link)
        return 0 if stream is None else stream.long_run_rate

    def _filter(self, stream: BitStream) -> BitStream:
        """Per-input link filtering (identity in the ablation mode)."""
        return stream.filtered() if self.filter_per_input else stream

    # ------------------------------------------------------------------
    # The aggregates (lazy caches)
    # ------------------------------------------------------------------

    def sia(self, in_link: str) -> BitStream:
        """``Sia(i, j, p)``: the per-pair per-priority aggregate."""
        return self._sia.get(in_link, ZERO_STREAM)

    def sia_items(self) -> Iterable[Tuple[str, BitStream]]:
        """``(in_link, Sia)`` pairs, in admission order."""
        return self._sia.items()

    def sif(self, in_link: str) -> BitStream:
        """``Sif(i, j, p)``: the per-input aggregate after link filtering."""
        cached = self._sif.get(in_link)
        if cached is None:
            self.on_cache(False, "sif")
            cached = self._filter(self.sia(in_link))
            self._sif[in_link] = cached
        else:
            self.on_cache(True, "sif")
        return cached

    def higher_sia(self, in_link: str) -> BitStream:
        """``Sia(i, j)(p)``: aggregate of the strictly higher priorities."""
        cached = self._higher.get(in_link)
        if cached is not None:
            self.on_cache(True, "higher")
        else:
            self.on_cache(False, "higher")
            cached = aggregate([
                port.sia(in_link) for port in self.higher_ports()
                if not port.sia(in_link).is_zero
            ])
            self._higher[in_link] = cached
        return cached

    def sif_higher(self, in_link: str) -> BitStream:
        """``Sif(i, j)(p)``: the filtered higher-priority aggregate."""
        cached = self._sif_higher.get(in_link)
        if cached is None:
            self.on_cache(False, "sif_higher")
            cached = self._filter(self.higher_sia(in_link))
            self._sif_higher[in_link] = cached
        else:
            self.on_cache(True, "sif_higher")
        return cached

    def _higher_in_links(self) -> List[str]:
        """Incoming links carrying any higher-priority traffic, sorted."""
        links = set()
        for port in self.higher_ports():
            links.update(link for link, stream in port.sia_items()
                         if not stream.is_zero)
        return sorted(links)

    def higher_sum(self) -> BitStream:
        """``sum_i Sif(i, j)(p)``, the pre-filter output interference."""
        cached = self._higher_sum
        if cached is not None:
            self.on_cache(True, "higher_sum")
        else:
            self.on_cache(False, "higher_sum")
            cached = aggregate([
                self.sif_higher(in_link)
                for in_link in self._higher_in_links()
            ])
            self._higher_sum = cached
        return cached

    def soa(self, replace: Optional[Tuple[str, BitStream]] = None,
            ) -> BitStream:
        """``Soa(j, p)``: the output-port arrival stream.

        ``replace`` substitutes the (already filtered) per-input
        aggregate of one incoming link -- how an admission check builds
        ``S'oa`` without mutating state: one O(m) subtract-and-add
        delta against the cached sum.
        """
        base = self._soa
        if base is not None:
            self.on_cache(True, "soa")
        else:
            self.on_cache(False, "soa")
            base = aggregate([self.sif(i) for i in sorted(self._sia)])
            self._soa = base
        if replace is None:
            return base
        in_link, replacement = replace
        return base.patched(self.sif(in_link), replacement)

    def soa_with(self, replacements: Mapping[str, BitStream]) -> BitStream:
        """``S'oa`` with several per-input aggregates substituted at once.

        The batched-admission generalisation of ``soa(replace=...)``:
        ``replacements`` maps incoming links to their candidate
        (already filtered) aggregates.  Still one O(m) delta per
        substituted link against the cached sum.
        """
        base = self.soa()
        for in_link in sorted(replacements):
            base = base.patched(self.sif(in_link), replacements[in_link])
        return base

    def sof_higher(self, extra: Optional[Tuple[str, BitStream]] = None,
                   ) -> BitStream:
        """``Sof(j)(p)``: filtered higher-priority output interference.

        ``extra`` adds a candidate connection's stream to the
        higher-priority aggregate of one incoming link (checking the
        impact of a new higher-priority connection on this port);
        like ``replace`` above, an O(m) delta against the cached sum.
        """
        if extra is None:
            cached = self._sof
            if cached is None:
                self.on_cache(False, "sof")
                cached = self.higher_sum().filtered()
                self._sof = cached
            else:
                self.on_cache(True, "sof")
            return cached
        in_link, stream = extra
        return self.sof_higher_with({in_link: stream})

    def sof_higher_with(self, extras: Mapping[str, BitStream]) -> BitStream:
        """``S'of(j)(p)`` with candidate higher-priority streams added.

        ``extras`` maps incoming links to the aggregate candidate
        stream arriving there at some higher priority.  The batched
        form of ``sof_higher(extra=...)``: each substituted link costs
        one O(m) delta against the cached interference sum.
        """
        total = self.higher_sum()
        for in_link in sorted(extras):
            combined = self.higher_sia(in_link) + extras[in_link]
            total = total.patched(self.sif_higher(in_link),
                                  self._filter(combined))
        return total.filtered()

    def service(self) -> ServiceCurve:
        """Memoized :class:`ServiceCurve` of ``Sof(j)(p)``."""
        cached = self._service
        if cached is None:
            self.on_cache(False, "service")
            cached = ServiceCurve(self.sof_higher())
            self._service = cached
        else:
            self.on_cache(True, "service")
        return cached

    # ------------------------------------------------------------------
    # Incremental deltas
    # ------------------------------------------------------------------

    def apply_same(self, in_link: str, stream: BitStream,
                   add: bool, patch_caches: bool = True) -> None:
        """Patch the same-priority state for one admit/release delta.

        ``Sia``, ``Sif`` and the cached ``Soa`` sum are updated by a
        single ``+``/``-`` of the connection's stream (Algorithms
        3.2/3.3) -- O(m) in the aggregate breakpoint count.

        ``patch_caches=False`` is the bulk-apply mode of the batched
        pipeline: the ground-truth ``Sia`` merge still runs (per leg,
        in order -- bit-identity of the committed state depends on it)
        but the derived caches are *invalidated* instead of patched.
        A batch touching a port many times pays one lazy rebuild at the
        next check instead of one patch per leg.

        The headroom ledger is patched in *both* modes: its entries are
        plain scalar running sums (one add/sub per delta), so there is
        nothing to gain from deferring them, and the admission screen
        must see current values even mid-batch.
        """
        sign = 1 if add else -1
        self.ledger_rate = self.ledger_rate + sign * stream.long_run_rate
        self.ledger_burst = self.ledger_burst + sign * stream.burst
        old_sia = self.sia(in_link)
        if patch_caches and self._soa is None:
            # Build the missing Soa cache *now*, from the pre-change
            # state, rather than at the next read.  Patched float caches
            # must be a function of the mutation sequence alone: if the
            # rebuild point depended on when a check happened to read
            # the cache, the screened fast path (which skips reads that
            # the exact path performs) would accumulate ulp-different
            # sums and could flip a razor-edge decision.
            self.on_cache(False, "soa")
            self._soa = aggregate([self.sif(i) for i in sorted(self._sia)])
        new_sia = (old_sia + stream) if add else (old_sia - stream)
        if new_sia.is_zero:
            self._sia.pop(in_link, None)
        else:
            self._sia[in_link] = new_sia
        if not patch_caches:
            self._sif.pop(in_link, None)
            self._soa = None
            return
        old_sif = self._sif.get(in_link)
        new_sif = self._filter(new_sia)
        self._sif[in_link] = new_sif
        if old_sif is None:
            old_sif = self._filter(old_sia)
        self._soa = self._soa.patched(old_sif, new_sif)

    def apply_higher(self, in_link: str, stream: BitStream,
                     add: bool, patch_caches: bool = True) -> None:
        """Patch the interference caches after a higher-priority delta.

        Invoked on every *lower*-priority sibling when a stream is
        admitted/released above it -- and, critically, **before** the
        higher port's own :meth:`apply_same`, so a forced lazy rebuild
        of ``Sia(i, j)(p)`` still reads the pre-change aggregates.
        The final output filter and the ServiceCurve are cheap O(m)
        rebuilds; they are just marked dirty.

        ``patch_caches=False`` (bulk-apply mode) drops the affected
        cache entries instead of patching them; see :meth:`apply_same`.
        The higher-priority headroom ledger is patched in both modes
        (scalar running sums, see :meth:`apply_same`).
        """
        sign = 1 if add else -1
        self.ledger_higher_rate = (self.ledger_higher_rate
                                   + sign * stream.long_run_rate)
        self.ledger_higher_burst = (self.ledger_higher_burst
                                    + sign * stream.burst)
        if not patch_caches:
            self._higher.pop(in_link, None)
            self._sif_higher.pop(in_link, None)
            self._higher_sum = None
            self._sof = None
            self._service = None
            return
        # Force the missing caches into existence *now*, from the
        # pre-change aggregates, so the running float sums are a
        # function of the mutation sequence alone (never of when an
        # admission check first read them -- the screened fast path
        # skips reads the exact path performs, and a read-timed build
        # would let the two accumulate ulp-different interference).
        if self._higher_sum is None:
            self.higher_sum()
        previous = self._higher.get(in_link)
        if previous is None:
            previous = self.higher_sia(in_link)
        patched = (previous + stream) if add else (previous - stream)
        self._higher[in_link] = patched
        old_hf = self._sif_higher.pop(in_link, None)
        if old_hf is None:
            old_hf = self._filter(previous)
        new_hf = self._filter(patched)
        self._sif_higher[in_link] = new_hf
        self._higher_sum = self._higher_sum.patched(old_hf, new_hf)
        self._sof = None
        self._service = None

    # ------------------------------------------------------------------
    # Lifecycle / verification
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every aggregate and cache (crash / restore preamble)."""
        self._sia.clear()
        self._sif.clear()
        self._soa = None
        self._higher.clear()
        self._sif_higher.clear()
        self._higher_sum = None
        self._sof = None
        self._service = None
        self.ledger_rate = 0
        self.ledger_burst = 0
        self.ledger_higher_rate = 0
        self.ledger_higher_burst = 0

    def verify_against(self, fresh: Mapping[Tuple[str, str, int], BitStream],
                       tolerance: float = 1e-9) -> bool:
        """Do this port's caches match a from-scratch rebuild?

        ``fresh`` maps ``(in_link, out_link, priority)`` to the
        ground-truth aggregates recomputed from the per-leg streams
        alone (see :meth:`SwitchCAC.recompute_aggregates`).
        """
        j, p = self.out_link, self.priority
        keys = {i for (i, j2, q) in fresh if j2 == j and q == p}
        keys.update(self._sia)
        for in_link in keys:
            current = self.sia(in_link)
            expected = fresh.get((in_link, j, p), ZERO_STREAM)
            if not current.approx_equal(expected, tolerance):
                return False
        for in_link, cached in self._higher.items():
            expected = aggregate([
                stream for (i2, j2, q), stream in fresh.items()
                if i2 == in_link and j2 == j and q < p
            ])
            if not cached.approx_equal(expected, tolerance):
                return False
        if self._soa is not None:
            expected = aggregate([
                self._filter(stream)
                for (_i2, j2, q), stream in sorted(fresh.items())
                if j2 == j and q == p
            ])
            if not self._soa.approx_equal(expected, tolerance):
                return False
        if self._higher_sum is not None:
            per_input: Dict[str, BitStream] = {}
            for (i2, j2, q), stream in sorted(fresh.items()):
                if j2 == j and q < p:
                    per_input[i2] = per_input.get(i2, ZERO_STREAM) + stream
            expected = aggregate([
                self._filter(per_input[i2]) for i2 in sorted(per_input)
            ])
            if not self._higher_sum.approx_equal(expected, tolerance):
                return False
        # Headroom ledger: the rate sums must match the ground truth
        # (long-run rates add exactly under multiplexing); the burst
        # sums are per-leg and hence only *conservative* for the
        # aggregates (sigma is sub-additive), so they are checked as a
        # one-sided bound.
        same_rate: Number = 0
        same_burst: Number = 0
        higher_rate: Number = 0
        higher_burst: Number = 0
        for (_i2, j2, q), stream in fresh.items():
            if j2 != j:
                continue
            if q == p:
                same_rate += stream.long_run_rate
                same_burst += stream.burst
            elif q < p:
                higher_rate += stream.long_run_rate
                higher_burst += stream.burst
        if abs(self.ledger_rate - same_rate) > tolerance:
            return False
        if abs(self.ledger_higher_rate - higher_rate) > tolerance:
            return False
        if self.ledger_burst + tolerance < same_burst:
            return False
        if self.ledger_higher_burst + tolerance < higher_burst:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"PortState(out_link={self.out_link!r}, "
            f"priority={self.priority}, in_links={self.in_links()}, "
            f"advertised={self.advertised_bound})"
        )
