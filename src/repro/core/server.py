"""A central connection admission control server.

Section 4.3 discussion 3: the CAC scheme "can be implemented either
distributedly at switches or centrally at a connection admission
control server", and Section 5 announces that switched RTnet
connections will be managed by "a central connection management
server".  :class:`CacServer` is that server: it owns the CAC state of
every switch, exposes a request/response admission API, keeps an audit
log, supports all-or-nothing *plans* for batch (permanent, offline)
connection sets, and can persist and restore its committed state.

It builds on :class:`~repro.core.admission.NetworkCAC` -- the
admission mathematics is identical to the distributed walk; only the
locus of the decision changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..exceptions import AdmissionError, ReproError
from ..network.connection import ConnectionRequest, EstablishedConnection
from ..network.serialization import request_from_dict, request_to_dict
from ..network.topology import Network
from .accumulation import CdvPolicy
from .admission import NetworkCAC

__all__ = ["CacServer", "AdmissionDecision", "AuditEntry", "PlanReport"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The server's answer to one admission request."""

    connection: str
    admitted: bool
    reason: str
    e2e_bound: Optional[float] = None


@dataclass(frozen=True)
class AuditEntry:
    """One line of the server's audit log."""

    sequence: int
    action: str          # "setup" | "reject" | "teardown" | "restore"
    connection: str
    detail: str = ""


@dataclass(frozen=True)
class PlanReport:
    """Outcome of a dry-run over a batch of requests.

    ``feasible`` is all-or-nothing: every request in the batch would be
    admitted, in order, on top of the current committed state.  The
    per-request decisions pinpoint the first failure.  The server's
    state is untouched either way.
    """

    feasible: bool
    decisions: Tuple[AdmissionDecision, ...]


class CacServer:
    """Central admission control over one network.

    Examples
    --------
    >>> from repro.network.topology import star_network
    >>> from repro.network.routing import shortest_path
    >>> from repro.network.connection import ConnectionRequest
    >>> from repro.core.traffic import cbr
    >>> net = star_network(3, bounds={0: 32})
    >>> server = CacServer(net)
    >>> request = ConnectionRequest(
    ...     "vc0", cbr(0.25), shortest_path(net, "t0", "t2"))
    >>> server.request_setup(request).admitted
    True
    """

    def __init__(self, network: Network,
                 cdv_policy: Union[str, CdvPolicy] = "hard",
                 filter_per_input: bool = True,
                 store_factory=None):
        self.network = network
        self._cac = NetworkCAC(network, cdv_policy=cdv_policy,
                               filter_per_input=filter_per_input,
                               store_factory=store_factory)
        self._requests: Dict[str, ConnectionRequest] = {}
        self._audit: List[AuditEntry] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Admission API
    # ------------------------------------------------------------------

    def request_setup(self, request: ConnectionRequest) -> AdmissionDecision:
        """Admit a connection, or explain why not.

        Unlike the raw :meth:`NetworkCAC.setup`, the server never raises
        for an admission refusal -- callers get a decision object either
        way (exceptions remain for malformed requests).
        """
        try:
            established = self._cac.setup(request)
        except AdmissionError as err:
            decision = AdmissionDecision(
                request.name, False, str(err))
            self._log("reject", request.name, str(err))
            return decision
        self._requests[request.name] = request
        self._log("setup", request.name,
                  f"e2e_bound={established.e2e_bound}")
        return AdmissionDecision(
            request.name, True, "admitted",
            e2e_bound=float(established.e2e_bound))

    def request_setup_many(self, requests: Iterable[ConnectionRequest],
                           ) -> List[AdmissionDecision]:
        """Admit a batch of connections through the shared-check pipeline.

        The batched counterpart of :meth:`request_setup`: decisions come
        back in request order, refusals as decision objects rather than
        exceptions, and the admitted set is exactly what one-by-one
        :meth:`request_setup` calls would have admitted (see
        :meth:`NetworkCAC.setup_many`).  Not all-or-nothing -- for that,
        use :meth:`commit_plan`.
        """
        batch = list(requests)
        outcome = self._cac.setup_many(batch)
        established = {c.name: c for c in outcome.established}
        decisions: List[AdmissionDecision] = []
        for request in batch:
            # pop: a duplicate name later in the batch is a refusal,
            # exactly as its sequential setup would have been.
            connection = established.pop(request.name, None)
            if connection is not None:
                self._requests[request.name] = request
                self._log("setup", request.name,
                          f"e2e_bound={connection.e2e_bound}")
                decisions.append(AdmissionDecision(
                    request.name, True, "admitted",
                    e2e_bound=float(connection.e2e_bound)))
            else:
                reason = str(outcome.failures.get(
                    request.name, "refused"))
                self._log("reject", request.name, reason)
                decisions.append(AdmissionDecision(
                    request.name, False, reason))
        return decisions

    def request_teardown(self, name: str) -> None:
        """Release an established connection."""
        self._cac.teardown(name)
        self._requests.pop(name, None)
        self._log("teardown", name)

    def plan(self, requests: Iterable[ConnectionRequest]) -> PlanReport:
        """Dry-run a batch on top of the committed state.

        Requests are trialled in order with full interaction effects
        (earlier batch members consume capacity seen by later ones),
        then everything trialled is rolled back -- the committed state
        is never disturbed.  This is the offline planning workflow the
        current RTnet uses for its permanent connection set.
        """
        decisions: List[AdmissionDecision] = []
        trialled: List[str] = []
        feasible = True
        try:
            for request in requests:
                try:
                    established = self._cac.setup(request)
                except AdmissionError as err:
                    decisions.append(AdmissionDecision(
                        request.name, False, str(err)))
                    feasible = False
                    break
                trialled.append(request.name)
                decisions.append(AdmissionDecision(
                    request.name, True, "would admit",
                    e2e_bound=float(established.e2e_bound)))
        finally:
            for name in reversed(trialled):
                self._cac.teardown(name)
        return PlanReport(feasible=feasible, decisions=tuple(decisions))

    def commit_plan(self, requests: Iterable[ConnectionRequest],
                    ) -> List[AdmissionDecision]:
        """Admit a whole batch, all-or-nothing."""
        batch = list(requests)
        report = self.plan(batch)
        if not report.feasible:
            return list(report.decisions)
        return [self.request_setup(request) for request in batch]

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def established(self) -> Mapping[str, EstablishedConnection]:
        """The committed connections."""
        return self._cac.established

    @property
    def audit_log(self) -> List[AuditEntry]:
        """The full audit trail, oldest first."""
        return list(self._audit)

    def port_report(self):
        """Per-port computed bounds / buffer needs / utilization."""
        return self._cac.port_report()

    def _log(self, action: str, connection: str, detail: str = "") -> None:
        self._sequence += 1
        self._audit.append(AuditEntry(
            self._sequence, action, connection, detail))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The committed connection set as a JSON-safe dict.

        Captures the *requests* (contracts + routes), which fully
        determine the CAC state -- restoring replays the admissions.
        """
        return {
            "connections": [
                request_to_dict(self._requests[name])
                for name in sorted(self._requests)
            ],
        }

    def snapshot_json(self) -> str:
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replay a snapshot into an empty server.

        Raises :class:`ReproError` when the server already holds
        connections (restore is a boot-time operation) or when the
        snapshot no longer fits the network (e.g. the topology shrank).
        """
        if self._requests:
            raise ReproError(
                "restore requires an empty server; tear down "
                f"{len(self._requests)} connections first"
            )
        requests = [
            request_from_dict(data, self.network)
            for data in snapshot.get("connections", [])
        ]
        done: List[str] = []
        try:
            for request in requests:
                self._cac.setup(request)
                self._requests[request.name] = request
                done.append(request.name)
        except AdmissionError:
            for name in reversed(done):
                self._cac.teardown(name)
                self._requests.pop(name)
            raise
        for name in done:
            self._log("restore", name)

    def restore_json(self, payload: str) -> None:
        """Replay a JSON snapshot produced by :meth:`snapshot_json`."""
        self.restore(json.loads(payload))
