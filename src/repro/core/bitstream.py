"""The bit-stream traffic model and its manipulation algebra (Sections 2-3).

A *bit stream* ``S = {(r(k), t(k)); k = 0..m}`` describes a worst-case
arrival pattern as a monotonically non-increasing step-wise rate function
of time: the stream has rate ``r(k)`` during ``[t(k), t(k+1))`` with
``t(m+1) = infinity``.  Time is measured in cell times and rates are
normalized to the link bandwidth (1.0 == full link rate), following the
conventions of the paper.

This module implements the stream representation and the four
manipulation algorithms of Section 3:

============================  =================================
Paper algorithm               Implementation
============================  =================================
Algorithm 3.1 (delay)         :meth:`BitStream.delayed`
Algorithm 3.2 (multiplexing)  :meth:`BitStream.__add__`, :func:`aggregate`
Algorithm 3.3 (demultiplex)   :meth:`BitStream.__sub__`
Algorithm 3.4 (filtering)     :meth:`BitStream.filtered`
============================  =================================

Implementation note (see DESIGN.md, "Envelope formulation"): both delay
and filtering are instances of capping a cumulative-arrival curve
``A(t) = integral of r`` with a constant-rate envelope:

* ``filter(S, C)`` produces the stream whose cumulative curve is
  ``min(C * t, A(t))`` -- a work-conserving server of capacity ``C``;
* ``delay(S, CDV)`` produces the stream whose cumulative curve is
  ``min(t, A(t + CDV))`` -- all bits of the first ``CDV`` time units clump
  and are released at full link rate, after which the stream follows the
  original pattern shifted earlier by ``CDV``.

Because ``r`` is non-increasing, ``A`` is concave and both envelopes have
a single crossing point, which we locate exactly.  This matches the
streams constructed by the paper's step-wise pseudocode while avoiding
its edge cases (the pseudocode of Algorithm 3.4, for instance, references
an undefined ``queue`` variable).

All arithmetic is generic over the number type: :class:`float` for
production use and :class:`fractions.Fraction` for exact property tests.
Only integer literals (``0``, ``1``) are mixed in, which both types
absorb without precision loss.
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Tuple, Union

from ..exceptions import BitStreamError

Number = Union[int, float, Fraction]

#: Tolerance used to forgive floating-point noise when validating the
#: non-increasing invariant and when clamping tiny negative rates produced
#: by demultiplexing.
_RATE_TOLERANCE = 1e-9

__all__ = ["BitStream", "Number", "aggregate", "ZERO_STREAM"]


def _is_exact(value: Number) -> bool:
    """True when ``value`` participates in exact (int/Fraction) arithmetic."""
    return isinstance(value, (int, Fraction))


class BitStream:
    """An immutable step-wise bit stream ``S = {(r(k), t(k))}``.

    Instances are canonical: ``times[0] == 0``, times strictly increase,
    adjacent rates differ, all rates are non-negative and the rate
    function is monotonically non-increasing (the invariant every stream
    in the paper's model satisfies -- worst-case single-connection
    streams are non-increasing by construction, and every algebra
    operation preserves the property).

    Parameters
    ----------
    rates:
        Rate ``r(k)`` in cells per cell time, one per segment.
    times:
        Start time ``t(k)`` of each segment in cell times.  The last
        segment extends to infinity.

    Examples
    --------
    >>> s = BitStream([1, 0.5, 0.1], [0, 1, 5])
    >>> s.rate_at(0.5), s.rate_at(3), s.rate_at(100)
    (1, 0.5, 0.1)
    >>> s.bits(5)   # 1*1 + 0.5*4
    3.0
    """

    __slots__ = ("_rates", "_times", "_kernel")

    def __init__(self, rates: Sequence[Number], times: Sequence[Number]):
        if len(rates) != len(times):
            raise BitStreamError(
                f"rates and times must have equal length, got "
                f"{len(rates)} rates and {len(times)} times"
            )
        if not rates:
            raise BitStreamError("a bit stream needs at least one segment")
        if times[0] != 0:
            raise BitStreamError(f"t(0) must be 0, got {times[0]}")

        canon_rates: list[Number] = []
        canon_times: list[Number] = []
        for rate, time in zip(rates, times):
            if rate < 0:
                if rate < -_RATE_TOLERANCE:
                    raise BitStreamError(f"negative rate {rate} at t={time}")
                rate = 0 * rate  # clamp float noise, preserving the type
            if canon_times and time < canon_times[-1]:
                raise BitStreamError(
                    f"times must be non-decreasing, got {time} after "
                    f"{canon_times[-1]}"
                )
            if canon_times and time == canon_times[-1]:
                # Zero-length segment: the later rate wins.
                canon_rates[-1] = rate
                if len(canon_rates) >= 2 and canon_rates[-2] == rate:
                    canon_rates.pop()
                    canon_times.pop()
                continue
            if canon_rates and canon_rates[-1] == rate:
                continue  # merge equal-rate neighbours
            canon_rates.append(rate)
            canon_times.append(time)

        for earlier, later in zip(canon_rates, canon_rates[1:]):
            if later > earlier and later - earlier > _RATE_TOLERANCE:
                raise BitStreamError(
                    f"rate function must be non-increasing, got step "
                    f"{earlier} -> {later}"
                )

        self._rates: Tuple[Number, ...] = tuple(canon_rates)
        self._times: Tuple[Number, ...] = tuple(canon_times)
        self._kernel = None  # lazily built NumPy fast path (see `kernel`)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, rate: Number) -> "BitStream":
        """A stream with a single constant rate for all time."""
        return cls([rate], [0])

    @classmethod
    def zero(cls) -> "BitStream":
        """The empty stream (rate 0 everywhere)."""
        return cls([0], [0])

    @classmethod
    def _from_canonical(cls, rates: Sequence[Number],
                        times: Sequence[Number],
                        kernel=None) -> "BitStream":
        """Trusted constructor for already-canonical segment lists.

        Used by the NumPy kernels, which canonicalize on arrays with the
        exact semantics of ``__init__`` and can hand over a pre-built
        :class:`~repro.core.kernels.StreamKernel` for free.
        """
        stream = cls.__new__(cls)
        stream._rates = tuple(rates)
        stream._times = tuple(times)
        stream._kernel = kernel
        return stream

    # ------------------------------------------------------------------
    # NumPy fast path
    # ------------------------------------------------------------------

    @property
    def kernel(self):
        """The NumPy fast-path kernel, or ``None`` on the exact path.

        Built once per stream, on first use: float streams (no Fraction
        anywhere, at least one float) get a
        :class:`repro.core.kernels.StreamKernel`; exact int/Fraction
        streams -- and every stream when NumPy is unavailable -- return
        ``None`` and keep the generic scalar algorithms.
        """
        if self._kernel is None:
            from .kernels import build_kernel
            self._kernel = build_kernel(self._rates, self._times) or False
        return self._kernel or None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def rates(self) -> Tuple[Number, ...]:
        """The canonical segment rates ``r(k)``."""
        return self._rates

    @property
    def times(self) -> Tuple[Number, ...]:
        """The canonical segment start times ``t(k)``."""
        return self._times

    @property
    def segments(self) -> Iterator[Tuple[Number, Number]]:
        """Iterate ``(rate, start_time)`` pairs in time order."""
        return iter(zip(self._rates, self._times))

    def __len__(self) -> int:
        return len(self._rates)

    @property
    def peak_rate(self) -> Number:
        """The largest rate -- ``r(0)`` by monotonicity."""
        return self._rates[0]

    @property
    def long_run_rate(self) -> Number:
        """The rate of the final (infinite) segment.

        This is the stream's sustained average rate; stability analysis
        compares it against link/service capacity.
        """
        return self._rates[-1]

    @property
    def is_zero(self) -> bool:
        """True when the stream carries no traffic at all."""
        return len(self._rates) == 1 and self._rates[0] == 0

    def rate_at(self, t: Number) -> Number:
        """The instantaneous rate ``r(t)`` (right-continuous).

        ``t`` may be any non-negative time, not only a breakpoint.
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        kernel = None if isinstance(t, Fraction) else self.kernel
        if kernel is not None:
            # searchsorted for the index only; the returned rate is the
            # original Python object, so types are preserved exactly.
            return self._rates[int(kernel.segment_index(t))]
        index = self._segment_index(t)
        return self._rates[index]

    def _segment_index(self, t: Number) -> int:
        """Index ``k`` of the segment containing ``t`` (binary search)."""
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------
    # Cumulative-arrival calculus
    # ------------------------------------------------------------------

    def bits(self, t: Number) -> Number:
        """Cumulative bits ``A(t)`` arrived during ``[0, t]``.

        ``A`` is the piecewise-linear concave integral of the rate
        function; it is the object the worst-case queueing analysis of
        Section 4 reasons about.
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        kernel = None if isinstance(t, Fraction) else self.kernel
        if kernel is not None:
            return float(kernel.bits(t))
        total: Number = 0
        for index, (rate, start) in enumerate(zip(self._rates, self._times)):
            end = self._times[index + 1] if index + 1 < len(self._times) else None
            if end is None or end >= t:
                return total + rate * (t - start)
            total += rate * (end - start)
        raise AssertionError("unreachable")  # pragma: no cover

    def time_of_bits(self, amount: Number) -> Number:
        """Earliest time ``t`` with ``A(t) >= amount``.

        Returns ``math.inf`` when the stream never delivers that many
        bits (possible only if the long-run rate is zero).
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if amount == 0:
            return 0 * amount
        kernel = None if isinstance(amount, Fraction) else self.kernel
        if kernel is not None:
            return kernel.time_of_bits(amount)
        total: Number = 0
        for index, (rate, start) in enumerate(zip(self._rates, self._times)):
            end = self._times[index + 1] if index + 1 < len(self._times) else None
            chunk = None if end is None else rate * (end - start)
            if chunk is None or total + chunk >= amount:
                if rate == 0:
                    return math.inf
                return start + (amount - total) / rate
            total += chunk
        raise AssertionError("unreachable")  # pragma: no cover

    def breakpoint_bits(self) -> Tuple[Number, ...]:
        """``A(t(k))`` for every breakpoint -- cumulative bits at each step."""
        values = []
        total: Number = 0
        for index, start in enumerate(self._times):
            if index > 0:
                total += self._rates[index - 1] * (start - self._times[index - 1])
            values.append(total)
        return tuple(values)

    # ------------------------------------------------------------------
    # Algorithm 3.2 / 3.3: multiplexing and demultiplexing
    # ------------------------------------------------------------------

    def __add__(self, other: "BitStream") -> "BitStream":
        """Multiplex two streams: worst case rates add (Algorithm 3.2)."""
        if not isinstance(other, BitStream):
            return NotImplemented
        mine, theirs = self.kernel, other.kernel
        if mine is not None and theirs is not None:
            from .kernels import merge_fast
            return merge_fast(mine, theirs, subtract=False)
        return _merge(self, other, lambda a, b: a + b)

    def __sub__(self, other: "BitStream") -> "BitStream":
        """Remove a component stream from an aggregate (Algorithm 3.3).

        ``other`` must previously have been multiplexed into ``self``;
        tiny negative rates from float round-off are clamped to zero,
        larger ones raise :class:`BitStreamError`.
        """
        if not isinstance(other, BitStream):
            return NotImplemented
        mine, theirs = self.kernel, other.kernel
        if mine is not None and theirs is not None:
            from .kernels import merge_fast
            return merge_fast(mine, theirs, subtract=True)
        return _merge(self, other, lambda a, b: a - b)

    def patched(self, old: "BitStream", new: "BitStream") -> "BitStream":
        """``self - old + new``: swap one component of an aggregate.

        The cache-patch form of Algorithms 3.2/3.3 -- how the
        incremental admission caches replace one input's contribution
        without re-aggregating.  On the kernel path the three streams
        are combined over a single breakpoint union (one pass, no
        intermediate canonicalization) with the same per-point
        ``(a - b) + c`` arithmetic as the two pairwise merges.
        """
        kernels = (self.kernel, old.kernel, new.kernel)
        if all(kernel is not None for kernel in kernels):
            from .kernels import patch_fast
            return patch_fast(*kernels)
        return _merge(_merge(self, old, lambda a, b: a - b), new,
                      lambda a, b: a + b)

    def scaled(self, factor: Number) -> "BitStream":
        """The multiplex of ``factor`` identical copies of this stream.

        Equivalent to repeated :meth:`__add__` but O(m).  Useful for the
        symmetric RTnet workloads where many terminals share one traffic
        descriptor.
        """
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return BitStream([rate * factor for rate in self._rates], self._times)

    # ------------------------------------------------------------------
    # Algorithm 3.1: delay (worst-case clumping after CDV)
    # ------------------------------------------------------------------

    def delayed(self, cdv: Number) -> "BitStream":
        """Worst-case stream after queueing points with delay variation.

        Passing a stream through queueing points with an accumulated
        maximum cell delay variation ``cdv`` can, in the worst case,
        delay every bit of the first ``cdv`` time units until time
        ``cdv`` and release them back-to-back at full link rate
        (Algorithm 3.1, Figure 4).  Relative to the first delayed bit
        the arrival curve becomes ``A'(t) = min(t, A(t + cdv))``.

        A stream whose long-run rate is 1 (a full-rate stream) clumps
        into the constant full-rate stream.
        """
        if cdv < 0:
            raise ValueError(f"cdv must be non-negative, got {cdv}")
        if cdv == 0 or self.is_zero:
            return self
        if self.peak_rate > 1:
            raise BitStreamError(
                "delayed() models single-link clumping and requires a "
                f"stream with peak rate <= 1, got {self.peak_rate}"
            )
        shifted = self._shifted_left(cdv)
        offset = self.bits(cdv)  # bits clumped at the head (AREA1)
        return _cap_with_envelope(shifted, capacity=1, head_start=offset)

    def _shifted_left(self, amount: Number) -> "BitStream":
        """The stream ``t -> r(t + amount)`` (drop the first ``amount``)."""
        index = self._segment_index(amount)
        rates = list(self._rates[index:])
        times = [0 * amount] + [t - amount for t in self._times[index + 1:]]
        return BitStream(rates, times)

    # ------------------------------------------------------------------
    # Algorithm 3.4: filtering by a transmission link
    # ------------------------------------------------------------------

    def filtered(self, capacity: Number = 1) -> "BitStream":
        """The stream after passing a link of the given capacity.

        When the aggregate rate exceeds the link capacity the excess is
        queued and released at capacity rate until the backlog drains
        (Algorithm 3.4, Figure 7): ``A'(t) = min(capacity * t, A(t))``.
        A stream whose long-run rate meets or exceeds the capacity never
        drains and filters to the constant capacity stream.

        Filtering smooths aggregates and is what lets the CAC obtain
        tighter downstream delay bounds than rate-function approaches
        that bound distortion instead of computing it exactly.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if self.peak_rate <= capacity:
            return self
        return _cap_with_envelope(self, capacity, head_start=0)

    # ------------------------------------------------------------------
    # Backlog / busy-period analysis (used for buffer sizing, Section 5)
    # ------------------------------------------------------------------

    def backlog_bound(self, capacity: Number = 1) -> Number:
        """Maximum queue build-up behind a server of the given capacity.

        This is AREA1 of Figure 7: the largest value of
        ``A(t) - capacity * t``.  It sizes the FIFO buffer a switch needs
        so that worst-case traffic is never dropped.  Returns
        ``math.inf`` when the long-run rate exceeds the capacity.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if self.long_run_rate > capacity:
            return math.inf
        best: Number = 0
        total: Number = 0
        for index, (rate, start) in enumerate(zip(self._rates, self._times)):
            excess = total - capacity * start
            if excess > best:
                best = excess
            if index + 1 < len(self._times):
                total += rate * (self._times[index + 1] - start)
        # A(t) - C t is piecewise linear; its maximum over [0, inf) is at a
        # breakpoint because the slope r(k) - C only decreases with k.
        return best

    @property
    def burst(self) -> Number:
        """Burst allowance ``sigma`` of the ``(sigma, rho)`` envelope.

        The smallest ``sigma`` with ``A(t) <= sigma + long_run_rate * t``
        for all ``t``: the maximum of the piecewise-linear
        ``A(t) - rho * t``, attained at a breakpoint because the slope
        ``r(k) - rho`` is non-increasing.  Together with
        ``rho = long_run_rate`` this is the pessimistic affine envelope
        the admission fast path sums into its headroom ledger (see
        ``docs/performance.md``); it is sub-additive under multiplexing
        and non-increasing under filtering, which is what makes the
        ledger sums conservative.

        The maximum is taken over *all* breakpoints (not just the last)
        so that streams canonicalized under ``_RATE_TOLERANCE`` -- whose
        rate function may rise by up to the tolerance -- still get a
        valid envelope.
        """
        rho = self._rates[-1]
        best: Number = 0
        total: Number = 0
        for index, start in enumerate(self._times):
            if index > 0:
                total += self._rates[index - 1] * (start - self._times[index - 1])
            excess = total - rho * start
            if excess > best:
                best = excess
        return best

    def busy_period(self, capacity: Number = 1) -> Number:
        """Time at which a server of the given capacity first goes idle.

        The first ``t > 0`` with ``A(t) <= capacity * t`` after any
        initial overload, i.e. when the queue of Figure 7 empties.
        Returns ``0`` when the stream never overloads the server and
        ``math.inf`` when the backlog never drains.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if self.peak_rate <= capacity:
            return 0
        crossing = _envelope_crossing(self, capacity, head_start=0)
        return math.inf if crossing is None else crossing

    # ------------------------------------------------------------------
    # Number-type conversions
    # ------------------------------------------------------------------

    def as_floats(self) -> "BitStream":
        """A copy with every rate and time coerced to float.

        The fast path for simulation interop after exact (Fraction)
        admission arithmetic.
        """
        return BitStream([float(rate) for rate in self._rates],
                         [float(time) for time in self._times])

    def as_fractions(self, max_denominator: int = 10**12) -> "BitStream":
        """A copy with every rate and time as exact fractions.

        Float inputs are snapped to the nearest rational with the given
        denominator limit; exact inputs pass through unchanged.
        """
        def convert(value: Number) -> Number:
            if isinstance(value, (int, Fraction)):
                return value
            return Fraction(value).limit_denominator(max_denominator)
        return BitStream([convert(rate) for rate in self._rates],
                         [convert(time) for time in self._times])

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitStream):
            return NotImplemented
        return self._rates == other._rates and self._times == other._times

    def __hash__(self) -> int:
        return hash((self._rates, self._times))

    def approx_equal(self, other: "BitStream", tolerance: float = 1e-9) -> bool:
        """Structural equality up to a tolerance on rates and times.

        Useful for float pipelines where round-off perturbs breakpoints.
        The comparison is segment-wise on the canonical forms, so streams
        that merely *sample* equal can still compare unequal if their
        breakpoint structure differs beyond the tolerance.
        """
        if len(self) != len(other):
            return self._resampled_close(other, tolerance)
        pairs = zip(self._rates, other._rates, self._times, other._times)
        for rate_a, rate_b, time_a, time_b in pairs:
            if abs(rate_a - rate_b) > tolerance or abs(time_a - time_b) > tolerance:
                return self._resampled_close(other, tolerance)
        return True

    def _resampled_close(self, other: "BitStream", tolerance: float) -> bool:
        """Fallback comparison sampling both cumulative curves."""
        points = sorted(set(self._times) | set(other._times))
        horizon = (points[-1] if points[-1] > 0 else 1) * 2
        points.append(horizon)
        return all(
            abs(self.bits(t) - other.bits(t)) <= tolerance * (1 + abs(t))
            for t in points
        )

    def dominates(self, other: "BitStream") -> bool:
        """True when this stream's cumulative curve is everywhere >= other's.

        Domination is the partial order worst-case analysis cares about:
        if ``S`` dominates ``S2`` then every delay bound computed from
        ``S`` is valid for ``S2``.
        """
        points = sorted(set(self._times) | set(other._times))
        for point in points:
            if self.bits(point) < other.bits(point):
                return False
        # Beyond the last breakpoint both curves are linear, so domination
        # holds for all time iff this stream's tail slope is at least as big.
        return self.long_run_rate >= other.long_run_rate

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"({rate!r}, {time!r})" for rate, time in zip(self._rates, self._times)
        )
        return f"BitStream[{pairs}]"


ZERO_STREAM = BitStream.zero()


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------


def _merge(first: BitStream, second: BitStream, combine) -> BitStream:
    """Point-wise combination of two step functions (Algorithms 3.2/3.3)."""
    rates: list[Number] = []
    times: list[Number] = []
    index_a = 0
    index_b = 0
    times_a, times_b = first.times, second.times
    rates_a, rates_b = first.rates, second.rates
    while index_a < len(times_a) or index_b < len(times_b):
        candidates = []
        if index_a < len(times_a):
            candidates.append(times_a[index_a])
        if index_b < len(times_b):
            candidates.append(times_b[index_b])
        current = min(candidates)
        if index_a < len(times_a) and times_a[index_a] == current:
            index_a += 1
        if index_b < len(times_b) and times_b[index_b] == current:
            index_b += 1
        rate = combine(rates_a[index_a - 1], rates_b[index_b - 1])
        rates.append(rate)
        times.append(current)
    return BitStream(rates, times)


def _delta_events(stream: BitStream):
    """``(time, rate_step)`` events of one stream, in time order."""
    previous: Number = 0
    for rate, time in zip(stream.rates, stream.times):
        yield (time, rate - previous)
        previous = rate


def aggregate(streams: Iterable[BitStream]) -> BitStream:
    """Multiplex any number of streams (k-way Algorithm 3.2).

    Equivalent to summing with ``+`` but merges all breakpoint lists in
    one pass, which matters for the RTnet aggregates of hundreds of
    connections.
    Returns the zero stream for an empty iterable.

    Float streams take the NumPy concatenate-sort-prefix-sum kernel;
    exact (int/Fraction) inputs keep exact arithmetic via a heap merge
    of per-stream rate deltas -- O(B log k) in the total breakpoint
    count B, replacing the old O(B * k) cursor walk.
    """
    stream_list = []
    kernels = []
    for stream in streams:
        if stream.is_zero:
            continue
        stream_list.append(stream)
        if kernels is not None:
            kernel = stream.kernel
            if kernel is None:
                kernels = None
            else:
                kernels.append(kernel)
    if not stream_list:
        return ZERO_STREAM
    if len(stream_list) == 1:
        return stream_list[0]

    if kernels is not None:
        from .kernels import aggregate_fast
        return aggregate_fast(kernels)

    # Exact path: each stream contributes rate *deltas* at its own
    # breakpoints; a heap merge visits them in global time order and a
    # running sum yields the aggregate's step function.
    rates: list[Number] = []
    times: list[Number] = []
    total: Number = 0
    for time, delta in heapq.merge(*(map(_delta_events, stream_list))):
        total = total + delta
        if times and times[-1] == time:
            rates[-1] = total
        else:
            rates.append(total)
            times.append(time)
    return BitStream(rates, times)


def _envelope_crossing(stream: BitStream, capacity: Number,
                       head_start: Number):
    """First ``t > 0`` where ``head_start + A(t) <= capacity * t``.

    ``head_start`` is a bit backlog already queued at time zero (the
    clumped AREA1 of Algorithm 3.1); for plain filtering it is zero.
    Returns ``None`` when the backlog never drains (long-run rate >=
    capacity, or == capacity with backlog outstanding).
    """
    backlog = head_start
    rates, times = stream.rates, stream.times
    for index, (rate, start) in enumerate(zip(rates, times)):
        end = times[index + 1] if index + 1 < len(times) else None
        drain_rate = capacity - rate  # positive when the queue shrinks
        if backlog == 0 and drain_rate >= 0:
            return start
        if drain_rate > 0:
            needed = backlog / drain_rate
            if end is None or start + needed <= end:
                return start + needed
            backlog -= drain_rate * (end - start)
        else:
            if end is None:
                return None
            backlog += (-drain_rate) * (end - start)
    return None  # pragma: no cover


def _cap_with_envelope(stream: BitStream, capacity: Number,
                       head_start: Number) -> BitStream:
    """Stream whose cumulative curve is ``min(capacity*t, head_start+A(t))``.

    The shared primitive behind Algorithms 3.1 and 3.4: output at
    ``capacity`` until the backlog (initial ``head_start`` plus any
    excess arrivals) drains, then follow the input stream.
    """
    crossing = _envelope_crossing(stream, capacity, head_start)
    if crossing is None:
        return BitStream.constant(capacity)
    if crossing == 0:
        return stream
    index = stream._segment_index(crossing)
    rates = [capacity] + list(stream.rates[index:])
    times = [0 * crossing, crossing] + [
        t for t in stream.times[index + 1:]
    ]
    # The segment containing the crossing keeps its rate from ``crossing``
    # onwards; canonicalization merges it with the cap if they are equal.
    return BitStream(rates, times)
