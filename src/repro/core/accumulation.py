"""Cell-delay-variation accumulation policies (Section 4.3, discussion 1).

As a connection crosses switches, each queueing point adds jitter: a
cell may be delayed anywhere between zero and that switch's delay bound.
The worst-case arrival stream at switch ``k`` is the source envelope
clumped by the *accumulated* delay variation over switches ``1..k-1``
(Algorithm 3.1).  How the per-switch bounds combine into that CDV is a
policy choice:

* **Hard** -- plain summation.  A cell could, in principle, hit the
  maximum delay at every upstream switch simultaneously, so summation is
  the only choice that yields a true worst-case guarantee.  Used for
  hard real-time connections.
* **Soft** -- square-root of the sum of squares.  The probability of a
  cell being maximally delayed everywhere at once is vanishingly small;
  the paper suggests this less conservative accumulation for soft
  real-time connections, trading absolute certainty for capacity
  (evaluated in Figure 13).

Policies are pluggable: anything implementing :class:`CdvPolicy` works,
and :func:`make_policy` resolves the two named schemes.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, Union

from .bitstream import Number

__all__ = [
    "CdvPolicy",
    "HardCdv",
    "SoftCdv",
    "make_policy",
    "HARD",
    "SOFT",
]


class CdvPolicy(Protocol):
    """Combines upstream per-switch delay bounds into an accumulated CDV."""

    #: short name used in reports ("hard", "soft", ...)
    name: str

    def accumulate(self, upstream_bounds: Sequence[Number]) -> Number:
        """CDV (cell times) after passing the given upstream bounds."""
        ...  # pragma: no cover


class HardCdv:
    """Worst-case accumulation: the sum of upstream delay bounds."""

    name = "hard"

    def accumulate(self, upstream_bounds: Sequence[Number]) -> Number:
        total: Number = 0
        for bound in upstream_bounds:
            if bound < 0:
                raise ValueError(f"delay bound must be >= 0, got {bound}")
            total += bound
        return total

    def __repr__(self) -> str:
        return "HardCdv()"


class SoftCdv:
    """Square-root-of-sum-of-squares accumulation for soft real time.

    Always at most the hard sum (Cauchy-Schwarz) and at least the single
    largest upstream bound, so soft CAC admits a superset of what hard
    CAC admits while still accounting for jitter growth along the route.
    """

    name = "soft"

    def accumulate(self, upstream_bounds: Sequence[Number]) -> float:
        total = 0.0
        for bound in upstream_bounds:
            if bound < 0:
                raise ValueError(f"delay bound must be >= 0, got {bound}")
            total += float(bound) * float(bound)
        return math.sqrt(total)

    def __repr__(self) -> str:
        return "SoftCdv()"


HARD = HardCdv()
SOFT = SoftCdv()

_NAMED = {"hard": HARD, "soft": SOFT}


def make_policy(policy: Union[str, CdvPolicy]) -> CdvPolicy:
    """Resolve a policy given by name ("hard"/"soft") or instance."""
    if isinstance(policy, str):
        try:
            return _NAMED[policy.lower()]
        except KeyError:
            raise ValueError(
                f"unknown CDV policy {policy!r}; expected one of "
                f"{sorted(_NAMED)}"
            ) from None
    return policy
