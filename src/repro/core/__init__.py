"""The paper's primary contribution: bit-stream CAC for hard real time.

Re-exports the pieces a typical user composes:

* the traffic model (:class:`VBRParameters`, :func:`cbr`);
* the bit-stream algebra (:class:`BitStream`, :func:`aggregate`);
* the worst-case analysis (:func:`delay_bound`);
* per-switch and network-level admission control
  (:class:`SwitchCAC`, :class:`NetworkCAC`) with the batched pipeline
  (:meth:`NetworkCAC.setup_many`) and its layered state backends
  (:class:`PortState`, :class:`AdmissionStore` -- see
  ``docs/architecture.md``);
* the event-driven admission plane (:class:`AdmissionPlane`) running
  concurrent in-flight setups on the shared simulation engine;
* CDV accumulation policies (:data:`HARD`, :data:`SOFT`);
* the baseline schemes used for comparison.
"""

from .accumulation import HARD, SOFT, CdvPolicy, HardCdv, SoftCdv, make_policy
from .admission import BatchSetupResult, NetworkCAC
from .baseline import (
    BandwidthAllocationCAC,
    PeakBandwidthCAC,
    SustainedBandwidthCAC,
    rate_function_delay_bound,
)
from .bitstream import BitStream, Number, ZERO_STREAM, aggregate
from .delay_bound import (
    ServiceCurve,
    backlog_bound_with_higher,
    delay_at,
    delay_bound,
    departure_time,
    is_stable,
)
from .kernels import kernels_enabled
from .plane import AdmissionPlane, SetupOutcome
from .port_state import PortState
from .server import AdmissionDecision, AuditEntry, CacServer, PlanReport
from .store import (
    AdmissionStore,
    InMemoryAdmissionStore,
    ShardedAdmissionStore,
)
from .switch_cac import (
    BatchCheckResult,
    CheckResult,
    Leg,
    PriorityBoundViolation,
    SwitchCAC,
)
from .traffic import (
    VBRParameters,
    cbr,
    check_conformance,
    equivalent_vbr_for_cbr_set,
    worst_case_cell_times,
)

__all__ = [
    "BitStream",
    "Number",
    "ZERO_STREAM",
    "aggregate",
    "kernels_enabled",
    "VBRParameters",
    "cbr",
    "worst_case_cell_times",
    "equivalent_vbr_for_cbr_set",
    "check_conformance",
    "delay_bound",
    "delay_at",
    "departure_time",
    "backlog_bound_with_higher",
    "is_stable",
    "ServiceCurve",
    "SwitchCAC",
    "Leg",
    "CheckResult",
    "BatchCheckResult",
    "PriorityBoundViolation",
    "PortState",
    "AdmissionStore",
    "InMemoryAdmissionStore",
    "ShardedAdmissionStore",
    "NetworkCAC",
    "BatchSetupResult",
    "AdmissionPlane",
    "SetupOutcome",
    "CacServer",
    "AdmissionDecision",
    "AuditEntry",
    "PlanReport",
    "CdvPolicy",
    "HardCdv",
    "SoftCdv",
    "HARD",
    "SOFT",
    "make_policy",
    "BandwidthAllocationCAC",
    "PeakBandwidthCAC",
    "SustainedBandwidthCAC",
    "rate_function_delay_bound",
]
