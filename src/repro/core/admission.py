"""Network-level connection admission control.

:class:`NetworkCAC` glues the per-switch checks of
:class:`~repro.core.switch_cac.SwitchCAC` into the route-level setup
procedure of Section 4: walk the preselected route, reconstruct the
connection's worst-case arrival stream at every hop from its source
envelope and the CDV accumulated over the *fixed advertised bounds* of
the upstream hops, run the per-switch check, and commit only if every
hop accepts and the route's advertised bounds add up to no more than the
requested end-to-end bound ``D``.

Because every hop's arrival stream is derived from the source contract
plus fixed upstream bounds -- never from the distorted output of the
previous hop -- the per-hop checks are mutually independent and the
procedure needs no iteration, which is one of the paper's selling points
over the rate-function scheme of Raha et al.

The same object serves as the "central connection management server" the
paper plans for RTnet's switched connections: it owns every switch's CAC
state and can also answer hypothetical (non-mutating) queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..exceptions import AdmissionError, QosUnsatisfiable, SwitchRejection
from ..network.connection import (
    ConnectionRequest,
    EstablishedConnection,
    HopCommitment,
)
from ..network.routing import Route
from ..network.signaling import (
    ConnectedMessage,
    RejectMessage,
    ReleaseMessage,
    SetupMessage,
    SignalingTrace,
)
from ..network.topology import Network
from .accumulation import CdvPolicy, make_policy
from .bitstream import BitStream, Number
from .switch_cac import SwitchCAC

__all__ = ["NetworkCAC"]


class NetworkCAC:
    """Admission control for a whole network.

    Parameters
    ----------
    network:
        The topology; every switch output port that should carry
        real-time traffic must have advertised ``bounds`` on its link.
    cdv_policy:
        ``"hard"`` (worst-case summation -- the default, required for
        hard real-time guarantees), ``"soft"`` (square-root of the sum
        of squares, Section 4.3 discussion 1), or any custom
        :class:`~repro.core.accumulation.CdvPolicy`.
    filter_per_input:
        Forwarded to every switch; ``False`` reproduces the coarser
        no-link-filtering analysis for the ablation bench.

    Examples
    --------
    >>> from repro.network.topology import star_network
    >>> from repro.network.routing import shortest_path
    >>> from repro.network.connection import ConnectionRequest
    >>> from repro.core.traffic import cbr
    >>> net = star_network(2, bounds={0: 32})
    >>> cac = NetworkCAC(net)
    >>> request = ConnectionRequest(
    ...     "vc0", cbr(0.3), shortest_path(net, "t0", "t1"))
    >>> established = cac.setup(request)
    >>> established.e2e_bound
    32
    """

    def __init__(self, network: Network,
                 cdv_policy: Union[str, CdvPolicy] = "hard",
                 filter_per_input: bool = True):
        self.network = network
        self.cdv_policy = make_policy(cdv_policy)
        self.filter_per_input = filter_per_input
        self._switches: Dict[str, SwitchCAC] = {}
        self._established: Dict[str, EstablishedConnection] = {}
        for switch in network.switches():
            cac = SwitchCAC(switch.name, filter_per_input=filter_per_input)
            for link in network.out_links(switch.name):
                if link.bounds:
                    cac.configure_link(link.name, link.bounds)
            self._switches[switch.name] = cac

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def switch(self, name: str) -> SwitchCAC:
        """The per-switch CAC state of one switching node."""
        try:
            return self._switches[name]
        except KeyError:
            raise AdmissionError(f"no switch named {name!r}") from None

    @property
    def established(self) -> Mapping[str, EstablishedConnection]:
        """All currently established connections, keyed by name."""
        return dict(self._established)

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------

    def _advertised_bounds(self, route: Route, priority: int) -> List[Number]:
        """The fixed bound of every hop on the route, in order."""
        return [
            self.switch(hop.switch).advertised_bound(hop.out_link, priority)
            for hop in route.hops()
        ]

    def arrival_stream(self, request: ConnectionRequest,
                       hop_index: int) -> BitStream:
        """Step 1: the worst-case arrival stream at the given hop.

        The source envelope of Algorithm 2.1, clumped by the CDV the
        policy accumulates over the advertised bounds of the upstream
        hops (Algorithm 3.1).  Hop 0 sees the undistorted envelope.
        """
        bounds = self._advertised_bounds(request.route, request.priority)
        cdv = self.cdv_policy.accumulate(bounds[:hop_index])
        return request.traffic.worst_case_stream().delayed(cdv)

    def setup(self, request: ConnectionRequest,
              trace: Optional[SignalingTrace] = None) -> EstablishedConnection:
        """Establish a connection along its route, or raise.

        Walks the route like the SETUP message does: the CAC check runs
        at every hop with the properly clumped arrival stream; the first
        refusal releases everything reserved so far and raises
        :class:`SwitchRejection`.  A route whose advertised bounds sum
        beyond the requested ``D`` raises :class:`QosUnsatisfiable`
        without reserving anything.  On success the connection is
        committed at every hop and recorded.
        """
        if request.name in self._established:
            raise AdmissionError(
                f"connection {request.name!r} is already established"
            )
        hops = request.route.hops()
        bounds = self._advertised_bounds(request.route, request.priority)
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            if trace is not None:
                trace.record(RejectMessage(
                    request.name, request.route.source,
                    f"achievable bound {achievable} exceeds requested "
                    f"{request.delay_bound}",
                ))
            raise QosUnsatisfiable(request.delay_bound, achievable)

        committed: List[HopCommitment] = []
        envelope = request.traffic.worst_case_stream()
        try:
            for index, hop in enumerate(hops):
                cdv = self.cdv_policy.accumulate(bounds[:index])
                stream = envelope.delayed(cdv)
                if trace is not None:
                    trace.record(SetupMessage(
                        request.name, hop.switch,
                        request.traffic.pcr, request.traffic.scr,
                        request.traffic.mbs, request.delay_bound, cdv,
                    ))
                result = self.switch(hop.switch).admit(
                    request.name, hop.in_link, hop.out_link,
                    request.priority, stream,
                )
                committed.append(HopCommitment(
                    switch=hop.switch,
                    in_link=hop.in_link,
                    out_link=hop.out_link,
                    cdv_in=cdv,
                    advertised_bound=bounds[index],
                    computed_bound=result.computed_bounds[request.priority],
                ))
        except SwitchRejection as rejection:
            for commitment in reversed(committed):
                self.switch(commitment.switch).release(request.name)
            if trace is not None:
                trace.record(RejectMessage(
                    request.name, rejection.switch, str(rejection),
                ))
            raise

        established = EstablishedConnection(request, tuple(committed))
        self._established[request.name] = established
        if trace is not None:
            trace.record(ConnectedMessage(
                request.name, request.route.destination,
                established.e2e_bound,
            ))
        return established

    def would_admit(self, request: ConnectionRequest) -> bool:
        """Non-mutating admission query.

        Hop checks are mutually independent (every hop reconstructs the
        arrival stream from the source contract), so the answer equals
        what :meth:`setup` would decide -- without touching any state.
        """
        try:
            bounds = self._advertised_bounds(request.route, request.priority)
        except AdmissionError:
            return False
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            return False
        envelope = request.traffic.worst_case_stream()
        for index, hop in enumerate(request.route.hops()):
            cdv = self.cdv_policy.accumulate(bounds[:index])
            result = self.switch(hop.switch).check(
                hop.in_link, hop.out_link, request.priority,
                envelope.delayed(cdv),
            )
            if not result.admitted:
                return False
        return True

    def teardown(self, name: str,
                 trace: Optional[SignalingTrace] = None) -> None:
        """Release an established connection at every hop."""
        try:
            established = self._established.pop(name)
        except KeyError:
            raise AdmissionError(f"no established connection {name!r}") from None
        for commitment in established.hops:
            self.switch(commitment.switch).release(name)
            if trace is not None:
                trace.record(ReleaseMessage(name, commitment.switch))

    def setup_all(self, requests: Iterable[ConnectionRequest]) -> List[EstablishedConnection]:
        """Establish several connections; unwind all of them on failure.

        All-or-nothing semantics: the workload generators use this so a
        partially admitted connection set never leaks into a sweep.
        """
        done: List[EstablishedConnection] = []
        try:
            for request in requests:
                done.append(self.setup(request))
        except AdmissionError:
            for established in reversed(done):
                self.teardown(established.name)
            raise
        return done

    def teardown_all(self) -> None:
        """Release every established connection."""
        for name in list(self._established):
            self.teardown(name)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_e2e_bound(self, route: Route, priority: int) -> Number:
        """Worst-case end-to-end bound along a route *as currently loaded*.

        The sum over the route's hops of each port's computed bound for
        the priority class -- what Figure 10 plots as a function of the
        admitted load.  Advertised bounds cap each term, so this never
        exceeds the fixed end-to-end guarantee.
        """
        total: Number = 0
        for hop in route.hops():
            total += self.switch(hop.switch).computed_bound(
                hop.out_link, priority,
            )
        return total

    def port_report(self) -> Dict[Tuple[str, str, int], Dict[str, Number]]:
        """Per-(switch, link, priority) computed bound, buffer need, load."""
        report: Dict[Tuple[str, str, int], Dict[str, Number]] = {}
        for name, cac in self._switches.items():
            for out_link in cac.out_links():
                for priority in cac.priorities(out_link):
                    report[(name, out_link, priority)] = {
                        "computed_bound": cac.computed_bound(out_link, priority),
                        "buffer_cells": cac.buffer_requirement(out_link, priority),
                        "advertised": cac.advertised_bound(out_link, priority),
                        "utilization": cac.utilization(out_link),
                    }
        return report
