"""Network-level connection admission control.

:class:`NetworkCAC` glues the per-switch checks of
:class:`~repro.core.switch_cac.SwitchCAC` into the route-level setup
procedure of Section 4: walk the preselected route, reconstruct the
connection's worst-case arrival stream at every hop from its source
envelope and the CDV accumulated over the *fixed advertised bounds* of
the upstream hops, run the per-switch check, and commit only if every
hop accepts and the route's advertised bounds add up to no more than the
requested end-to-end bound ``D``.

Because every hop's arrival stream is derived from the source contract
plus fixed upstream bounds -- never from the distorted output of the
previous hop -- the per-hop checks are mutually independent and the
procedure needs no iteration, which is one of the paper's selling points
over the rate-function scheme of Raha et al.

The same object serves as the "central connection management server" the
paper plans for RTnet's switched connections: it owns every switch's CAC
state and can also answer hypothetical (non-mutating) queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import (
    AdmissionError,
    QosUnsatisfiable,
    SignalingTimeout,
    SwitchRejection,
    SwitchUnavailable,
)
from ..network.connection import (
    ConnectionRequest,
    EstablishedConnection,
    HopCommitment,
)
from ..network.routing import Route
from ..network.signaling import (
    AbortMessage,
    BatchSetupMessage,
    CommitMessage,
    ConnectedMessage,
    RejectMessage,
    ReleaseMessage,
    SetupMessage,
    SignalingChannel,
    SignalingTrace,
)
from ..network.topology import Network
from ..obs import metrics as _om
from ..obs import spans as _ospans
from ..robustness.faults import FaultInjector
from ..robustness.retry import ManualClock, RetryPolicy
from .accumulation import CdvPolicy, make_policy
from .bitstream import BitStream, Number
from .store import AdmissionStore
from .switch_cac import BatchCheckResult, Leg, SwitchCAC

__all__ = ["NetworkCAC", "BatchSetupResult"]


@dataclass(frozen=True)
class BatchSetupResult:
    """Outcome of one :meth:`NetworkCAC.setup_many` call.

    ``established`` lists the admitted connections in request order;
    ``failures`` maps each refused request's name to the
    :class:`~repro.exceptions.AdmissionError` a sequential
    :meth:`NetworkCAC.setup` of that request would have raised.
    ``batched`` reports whether the shared-group fast path applied
    (``False`` means the pipeline processed the requests one by one --
    because faults were injected, or because a group check failed and
    exact per-request verdicts were needed).
    """

    established: Tuple[EstablishedConnection, ...]
    failures: Mapping[str, AdmissionError]
    batched: bool

    @property
    def admitted_names(self) -> Tuple[str, ...]:
        """Names of the admitted connections, in request order."""
        return tuple(c.name for c in self.established)


class NetworkCAC:
    """Admission control for a whole network.

    Parameters
    ----------
    network:
        The topology; every switch output port that should carry
        real-time traffic must have advertised ``bounds`` on its link.
    cdv_policy:
        ``"hard"`` (worst-case summation -- the default, required for
        hard real-time guarantees), ``"soft"`` (square-root of the sum
        of squares, Section 4.3 discussion 1), or any custom
        :class:`~repro.core.accumulation.CdvPolicy`.
    filter_per_input:
        Forwarded to every switch; ``False`` reproduces the coarser
        no-link-filtering analysis for the ablation bench.
    fault_injector:
        Optional :class:`~repro.robustness.faults.FaultInjector` the
        signaling channel consults on every message delivery; ``None``
        (the default) makes the protocol lossless, which degenerates to
        the paper's original walk.
    retry_policy / hop_timeout:
        Resend budget and per-hop response timeout of the signaling
        channel (see ``docs/robustness.md``).
    clock / rng:
        Simulated time source and backoff-jitter randomness, injected
        so fault schedules replay deterministically.  The clock is
        shared across all walks of this instance.
    store_factory:
        Optional factory mapping a switch name to the
        :class:`~repro.core.store.AdmissionStore` backend its
        :class:`SwitchCAC` should use (e.g.
        ``lambda name: ShardedAdmissionStore(8)``); ``None`` gives
        every switch the default in-memory store.

    Examples
    --------
    >>> from repro.network.topology import star_network
    >>> from repro.network.routing import shortest_path
    >>> from repro.network.connection import ConnectionRequest
    >>> from repro.core.traffic import cbr
    >>> net = star_network(2, bounds={0: 32})
    >>> cac = NetworkCAC(net)
    >>> request = ConnectionRequest(
    ...     "vc0", cbr(0.3), shortest_path(net, "t0", "t1"))
    >>> established = cac.setup(request)
    >>> established.e2e_bound
    32
    """

    def __init__(self, network: Network,
                 cdv_policy: Union[str, CdvPolicy] = "hard",
                 filter_per_input: bool = True,
                 fault_injector: Optional[FaultInjector] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 hop_timeout: float = 8.0,
                 clock: Optional[ManualClock] = None,
                 rng: Optional[random.Random] = None,
                 store_factory: Optional[
                     Callable[[str], AdmissionStore]] = None):
        self.network = network
        self.cdv_policy = make_policy(cdv_policy)
        self.filter_per_input = filter_per_input
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.hop_timeout = hop_timeout
        self.clock = clock or ManualClock()
        self.rng = rng or random.Random(0)
        self._switches: Dict[str, SwitchCAC] = {}
        self._established: Dict[str, EstablishedConnection] = {}
        for switch in network.switches():
            cac = SwitchCAC(
                switch.name, filter_per_input=filter_per_input,
                store=store_factory(switch.name) if store_factory else None,
            )
            for link in network.out_links(switch.name):
                if link.bounds:
                    cac.configure_link(link.name, link.bounds)
            self._switches[switch.name] = cac

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def switch(self, name: str) -> SwitchCAC:
        """The per-switch CAC state of one switching node."""
        try:
            return self._switches[name]
        except KeyError:
            raise AdmissionError(f"no switch named {name!r}") from None

    def switches(self) -> Mapping[str, SwitchCAC]:
        """Every per-switch CAC, keyed by switch name (a snapshot)."""
        return dict(self._switches)

    @property
    def established(self) -> Mapping[str, EstablishedConnection]:
        """All currently established connections, keyed by name."""
        return dict(self._established)

    def _channel(self, trace: Optional[SignalingTrace]) -> SignalingChannel:
        """The signaling transport for one walk, sharing this CAC's clock."""
        return SignalingChannel(
            injector=self.fault_injector,
            retry_policy=self.retry_policy,
            clock=self.clock,
            rng=self.rng,
            hop_timeout=self.hop_timeout,
            trace=trace,
            crash_switch=lambda name: self._switches[name].crash(),
        )

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------

    def _advertised_bounds(self, route: Route, priority: int) -> List[Number]:
        """The fixed bound of every hop on the route, in order."""
        return [
            self.switch(hop.switch).advertised_bound(hop.out_link, priority)
            for hop in route.hops()
        ]

    def arrival_stream(self, request: ConnectionRequest,
                       hop_index: int) -> BitStream:
        """Step 1: the worst-case arrival stream at the given hop.

        The source envelope of Algorithm 2.1, clumped by the CDV the
        policy accumulates over the advertised bounds of the upstream
        hops (Algorithm 3.1).  Hop 0 sees the undistorted envelope.
        """
        bounds = self._advertised_bounds(request.route, request.priority)
        cdv = self.cdv_policy.accumulate(bounds[:hop_index])
        return request.traffic.worst_case_stream().delayed(cdv)

    def setup(self, request: ConnectionRequest,
              trace: Optional[SignalingTrace] = None) -> EstablishedConnection:
        """Establish a connection along its route, or raise.

        A two-phase walk (see ``docs/robustness.md``): the SETUP message
        first *reserves* resources hop by hop with the properly clumped
        arrival stream, then a COMMIT wave travelling back from the
        destination confirms every reservation.  Each message is
        delivered over the :class:`SignalingChannel` with a per-hop
        timeout and bounded, jittered retries.  The first refusal
        (:class:`SwitchRejection`) or exhausted retry budget
        (:class:`SignalingTimeout`) unwinds every reservation made so
        far -- idempotently, so duplicated or re-sent ABORTs are
        harmless -- and re-raises; the network is then in exactly its
        pre-setup state.  A route whose advertised bounds sum beyond the
        requested ``D`` raises :class:`QosUnsatisfiable` without
        reserving anything.  On success the connection is committed at
        every hop and recorded.
        """
        if request.name in self._established:
            raise AdmissionError(
                f"connection {request.name!r} is already established"
            )
        registry = _om.get_registry()
        started = self.clock.now()

        def _finish(outcome: str) -> None:
            if registry.enabled:
                registry.counter("network_setups_total",
                                 outcome=outcome).inc()
                registry.histogram(
                    "network_setup_time", buckets=_om.SIGNALING_BUCKETS,
                ).observe(self.clock.now() - started)

        hops = request.route.hops()
        bounds = self._advertised_bounds(request.route, request.priority)
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            if trace is not None:
                trace.record(RejectMessage(
                    request.name, request.route.source,
                    f"achievable bound {achievable} exceeds requested "
                    f"{request.delay_bound}",
                ))
            _finish("unsatisfiable")
            raise QosUnsatisfiable(request.delay_bound, achievable)

        channel = self._channel(trace)
        committed: List[HopCommitment] = []
        envelope = request.traffic.worst_case_stream()
        touched = 0
        with _ospans.span("admission.setup", connection=request.name,
                          hops=len(hops)) as setup_span:
            try:
                # Phase 1: the SETUP message walks downstream, reserving.
                for index, hop in enumerate(hops):
                    cdv = self.cdv_policy.accumulate(bounds[:index])
                    stream = envelope.delayed(cdv)

                    def process_reserve(hop=hop, cdv=cdv, stream=stream):
                        if trace is not None:
                            trace.record(SetupMessage(
                                request.name, hop.switch,
                                request.traffic.pcr, request.traffic.scr,
                                request.traffic.mbs, request.delay_bound, cdv,
                            ))
                        return self.switch(hop.switch).reserve(
                            request.name, hop.in_link, hop.out_link,
                            request.priority, stream,
                        )

                    touched = index + 1
                    with _ospans.span("admission.hop",
                                      connection=request.name, hop=index,
                                      switch=hop.switch,
                                      out_link=hop.out_link):
                        result = channel.deliver(
                            "reserve", index, hop.switch, hop.in_link,
                            request.name, process_reserve,
                        )
                    committed.append(HopCommitment(
                        switch=hop.switch,
                        in_link=hop.in_link,
                        out_link=hop.out_link,
                        cdv_in=cdv,
                        advertised_bound=bounds[index],
                        computed_bound=result.computed_bounds[request.priority],
                    ))
                # Phase 2: the COMMIT wave travels back upstream.
                for index, hop in reversed(list(enumerate(hops))):

                    def process_commit(hop=hop):
                        if trace is not None:
                            trace.record(CommitMessage(request.name,
                                                       hop.switch))
                        self.switch(hop.switch).commit(request.name)

                    channel.deliver(
                        "commit", index, hop.switch, hop.in_link,
                        request.name, process_commit,
                    )
            except SwitchRejection as rejection:
                setup_span.tag(outcome="rejected")
                self._unwind(request.name, hops[:touched], channel, trace)
                if trace is not None:
                    trace.record(RejectMessage(
                        request.name, rejection.switch, str(rejection),
                    ))
                _finish("rejected")
                raise
            except SignalingTimeout as timeout:
                setup_span.tag(outcome="timeout")
                self._unwind(request.name, hops[:touched], channel, trace)
                if trace is not None:
                    trace.record(RejectMessage(
                        request.name, timeout.at_node, str(timeout),
                    ))
                _finish("timeout")
                raise
            setup_span.tag(outcome="accepted")

        established = EstablishedConnection(request, tuple(committed))
        self._established[request.name] = established
        if trace is not None:
            trace.record(ConnectedMessage(
                request.name, request.route.destination,
                established.e2e_bound,
            ))
        _finish("accepted")
        return established

    def _unwind(self, name: str, hops, channel: SignalingChannel,
                trace: Optional[SignalingTrace]) -> None:
        """Abort every hop a failed walk may have touched.

        :meth:`SwitchCAC.rollback` is idempotent, so hops that never
        actually reserved (the message was lost before arriving) or that
        receive the ABORT twice are no-ops.  A crashed switch is
        skipped: its journal recovery discards uncommitted reservations,
        and :meth:`recover_switch` reconciles anything it had committed.
        If the ABORT itself cannot be delivered, the switch discards the
        reservation on its own once its holder falls silent (reservation
        expiry), modelled here as a direct rollback.
        """
        for index, hop in reversed(list(enumerate(hops))):
            cac = self._switches[hop.switch]
            if cac.crashed:
                continue

            def process_abort(hop=hop, cac=cac):
                if trace is not None:
                    trace.record(AbortMessage(name, hop.switch))
                cac.rollback(name)

            try:
                channel.deliver(
                    "abort", index, hop.switch, hop.in_link, name,
                    process_abort,
                )
            except SignalingTimeout:
                try:
                    cac.rollback(name)
                except SwitchUnavailable:
                    pass

    def would_admit(self, request: ConnectionRequest) -> bool:
        """Non-mutating admission query.

        Hop checks are mutually independent (every hop reconstructs the
        arrival stream from the source contract), so the answer equals
        what :meth:`setup` would decide -- without touching any state.
        """
        try:
            bounds = self._advertised_bounds(request.route, request.priority)
        except AdmissionError:
            return False
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            return False
        envelope = request.traffic.worst_case_stream()
        for index, hop in enumerate(request.route.hops()):
            cdv = self.cdv_policy.accumulate(bounds[:index])
            try:
                result = self.switch(hop.switch).check(
                    hop.in_link, hop.out_link, request.priority,
                    envelope.delayed(cdv),
                )
            except AdmissionError:
                # An unserved priority or a crashed switch on the route
                # means setup could not succeed either.
                return False
            if not result.admitted:
                return False
        return True

    def teardown(self, name: str,
                 trace: Optional[SignalingTrace] = None) -> None:
        """Release an established connection at every hop.

        An unknown (or already-torn-down) connection raises
        :class:`AdmissionError` before any switch is touched.  Per-hop
        RELEASE messages travel over the signaling channel and apply the
        idempotent :meth:`SwitchCAC.rollback`, so duplicated deliveries
        cannot corrupt the aggregates; a crashed hop is skipped (its
        reconciliation happens in :meth:`recover_switch`) and an
        undeliverable RELEASE falls back to reservation expiry, exactly
        like a failed setup's unwind.
        """
        try:
            established = self._established.pop(name)
        except KeyError:
            raise AdmissionError(f"no established connection {name!r}") from None
        channel = self._channel(trace)
        for index, commitment in enumerate(established.hops):
            cac = self._switches[commitment.switch]
            if cac.crashed:
                continue

            def process_release(commitment=commitment, cac=cac):
                if trace is not None:
                    trace.record(ReleaseMessage(name, commitment.switch))
                cac.rollback(name)

            try:
                channel.deliver(
                    "release", index, commitment.switch, commitment.in_link,
                    name, process_release,
                )
            except SignalingTimeout:
                try:
                    cac.rollback(name)
                except SwitchUnavailable:
                    pass
        registry = _om.get_registry()
        if registry.enabled:
            registry.counter("network_teardowns_total").inc()

    def recover_switch(self, name: str) -> SwitchCAC:
        """Bring a crashed switch back and reconcile it with the network.

        The switch first replays its journal
        (:meth:`SwitchCAC.recover`), which restores its committed state
        bit-identically and discards in-flight reservations.  The
        central server then reconciles: a leg the switch committed for
        a connection the network unwound (e.g. the COMMIT reached this
        hop but a later fault aborted the walk) is released, so the
        recovered switch carries exactly the network's committed
        connections.
        """
        cac = self.switch(name)
        cac.recover()
        for connection_id in list(cac.legs):
            if connection_id not in self._established:
                cac.rollback(connection_id)
        return cac

    def setup_all(self, requests: Iterable[ConnectionRequest]) -> List[EstablishedConnection]:
        """Establish several connections; unwind all of them on failure.

        All-or-nothing semantics: the workload generators use this so a
        partially admitted connection set never leaks into a sweep.
        """
        done: List[EstablishedConnection] = []
        try:
            for request in requests:
                done.append(self.setup(request))
        except AdmissionError:
            for established in reversed(done):
                self.teardown(established.name)
            raise
        return done

    def teardown_all(self) -> None:
        """Release every established connection."""
        for name in list(self._established):
            self.teardown(name)

    # ------------------------------------------------------------------
    # Batched admission
    # ------------------------------------------------------------------

    def setup_many(self, requests: Iterable[ConnectionRequest],
                   trace: Optional[SignalingTrace] = None,
                   ) -> BatchSetupResult:
        """Establish a batch of connections with shared admission checks.

        Admits **exactly the same set** as applying :meth:`setup` to the
        requests one by one in order (catching per-request
        :class:`AdmissionError`), and leaves every switch -- aggregates,
        committed legs, journal -- in the bit-identical state.  The
        difference is cost: when the channel is lossless (no fault
        injector), the candidate legs are grouped by switch and each
        switch runs one :meth:`~repro.core.switch_cac.SwitchCAC.check_batch`
        group check, sharing the aggregate substitution and
        higher-priority interference sums across every request that
        crosses the port.  By monotonicity of the delay bound a passing
        group check proves every sequential prefix admissible, so the
        apply phase -- request-major reserve -> commit, preserving the
        per-switch journal order of the sequential walk -- skips the
        per-leg checks entirely.

        Exactness is never traded away: a failing group check (some
        request would be refused, but the group verdict cannot say
        which) and any configured fault injector both fall back to the
        sequential one-by-one pipeline.
        """
        requests = list(requests)
        if self.fault_injector is not None:
            # Fault semantics (drops, crashes, retries, clock advances)
            # are defined per message; only the sequential walk
            # reproduces them exactly.
            return self._setup_sequential(requests, trace)

        # Pre-flight: weed out the requests a sequential setup would
        # refuse before reserving anything.  Pure -- no traces, no
        # metrics -- so a later fallback cannot double-record.
        plans: List[Tuple[ConnectionRequest, List[Number], List[Number],
                          List[BitStream]]] = []
        preflight: Dict[str, AdmissionError] = {}
        seen = set(self._established)
        for request in requests:
            if request.name in seen:
                preflight[request.name] = AdmissionError(
                    f"connection {request.name!r} is already established"
                )
                continue
            try:
                bounds = self._advertised_bounds(request.route,
                                                 request.priority)
            except AdmissionError as exc:
                preflight[request.name] = exc
                continue
            achievable: Number = 0
            for bound in bounds:
                achievable += bound
            if request.delay_bound is not None and \
                    achievable > request.delay_bound:
                preflight[request.name] = QosUnsatisfiable(
                    request.delay_bound, achievable)
                continue
            seen.add(request.name)
            envelope = request.traffic.worst_case_stream()
            cdvs = [self.cdv_policy.accumulate(bounds[:index])
                    for index in range(len(bounds))]
            plans.append((request, bounds, cdvs,
                          [envelope.delayed(cdv) for cdv in cdvs]))

        # Group the candidate legs by switch (first-touch order) and run
        # one shared check per switch.  Pure: nothing reserved yet.
        legs_by_switch: Dict[str, List[Leg]] = {}
        for request, _bounds, _cdvs, streams in plans:
            for index, hop in enumerate(request.route.hops()):
                legs_by_switch.setdefault(hop.switch, []).append(Leg(
                    request.name, hop.in_link, hop.out_link,
                    request.priority, streams[index],
                ))
        group: Dict[str, BatchCheckResult] = {}
        all_admitted = True
        with _ospans.span("admission.setup_many", requests=len(requests),
                          candidates=len(plans)) as batch_span:
            for switch_name, legs in legs_by_switch.items():
                try:
                    verdict = self.switch(switch_name).check_batch(legs)
                except AdmissionError:
                    # e.g. a crashed switch on some route: per-request
                    # verdicts need the sequential walk.
                    all_admitted = False
                    break
                group[switch_name] = verdict
                if trace is not None:
                    trace.record(BatchSetupMessage(
                        switch_name,
                        tuple(leg.connection_id for leg in legs),
                        verdict.admitted,
                    ))
                if not verdict.admitted:
                    all_admitted = False
            if not all_admitted:
                batch_span.tag(outcome="fallback")
                return self._setup_sequential(requests, trace)
            batch_span.tag(outcome="batched")

            # Commit path.  Emit the traces/metrics the sequential walk
            # would have produced for the pre-flight refusals...
            registry = _om.get_registry()
            started = self.clock.now()
            for request in requests:
                failure = preflight.get(request.name)
                if isinstance(failure, QosUnsatisfiable):
                    if trace is not None:
                        trace.record(RejectMessage(
                            request.name, request.route.source,
                            f"achievable bound {failure.achievable} exceeds "
                            f"requested {failure.requested}",
                        ))
                    self._record_setup(registry, "unsatisfiable", started)

            # ...then apply the admitted candidates request-major
            # (reserve every hop downstream, commit back upstream), so
            # each switch's journal is op-for-op what the sequential
            # walk writes and crash recovery stays bit-identical.
            established: List[EstablishedConnection] = []
            for request, bounds, cdvs, streams in plans:
                hops = request.route.hops()
                committed: List[HopCommitment] = []
                for index, hop in enumerate(hops):
                    if trace is not None:
                        trace.record(SetupMessage(
                            request.name, hop.switch,
                            request.traffic.pcr, request.traffic.scr,
                            request.traffic.mbs, request.delay_bound,
                            cdvs[index],
                        ))
                    result = self.switch(hop.switch).reserve_checked(
                        Leg(request.name, hop.in_link, hop.out_link,
                            request.priority, streams[index]),
                        group[hop.switch].results[request.name],
                    )
                    committed.append(HopCommitment(
                        switch=hop.switch,
                        in_link=hop.in_link,
                        out_link=hop.out_link,
                        cdv_in=cdvs[index],
                        advertised_bound=bounds[index],
                        computed_bound=result.computed_bounds.get(
                            request.priority, 0),
                    ))
                for index, hop in reversed(list(enumerate(hops))):
                    if trace is not None:
                        trace.record(CommitMessage(request.name, hop.switch))
                    self.switch(hop.switch).commit(request.name)
                connection = EstablishedConnection(request, tuple(committed))
                self._established[request.name] = connection
                established.append(connection)
                if trace is not None:
                    trace.record(ConnectedMessage(
                        request.name, request.route.destination,
                        connection.e2e_bound,
                    ))
                self._record_setup(registry, "accepted", started)
        return BatchSetupResult(tuple(established), preflight, batched=True)

    def _record_setup(self, registry, outcome: str, started: float) -> None:
        """One ``network_setups_total`` tick plus the setup-time sample."""
        if registry.enabled:
            registry.counter("network_setups_total", outcome=outcome).inc()
            registry.histogram(
                "network_setup_time", buckets=_om.SIGNALING_BUCKETS,
            ).observe(self.clock.now() - started)

    def _setup_sequential(self, requests: Sequence[ConnectionRequest],
                          trace: Optional[SignalingTrace],
                          ) -> BatchSetupResult:
        """The exact reference pipeline: one :meth:`setup` per request."""
        established: List[EstablishedConnection] = []
        failures: Dict[str, AdmissionError] = {}
        for request in requests:
            try:
                established.append(self.setup(request, trace))
            except AdmissionError as exc:
                failures[request.name] = exc
        return BatchSetupResult(tuple(established), failures, batched=False)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_e2e_bound(self, route: Route, priority: int) -> Number:
        """Worst-case end-to-end bound along a route *as currently loaded*.

        The sum over the route's hops of each port's computed bound for
        the priority class -- what Figure 10 plots as a function of the
        admitted load.  Advertised bounds cap each term, so this never
        exceeds the fixed end-to-end guarantee.
        """
        total: Number = 0
        for hop in route.hops():
            total += self.switch(hop.switch).computed_bound(
                hop.out_link, priority,
            )
        return total

    def port_report(self) -> Dict[Tuple[str, str, int], Dict[str, Number]]:
        """Per-(switch, link, priority) computed bound, buffer need, load."""
        report: Dict[Tuple[str, str, int], Dict[str, Number]] = {}
        for name, cac in self._switches.items():
            for out_link in cac.out_links():
                for priority in cac.priorities(out_link):
                    report[(name, out_link, priority)] = {
                        "computed_bound": cac.computed_bound(out_link, priority),
                        "buffer_cells": cac.buffer_requirement(out_link, priority),
                        "advertised": cac.advertised_bound(out_link, priority),
                        "utilization": cac.utilization(out_link),
                    }
        return report
