"""Network-level connection admission control.

:class:`NetworkCAC` glues the per-switch checks of
:class:`~repro.core.switch_cac.SwitchCAC` into the route-level setup
procedure of Section 4: walk the preselected route, reconstruct the
connection's worst-case arrival stream at every hop from its source
envelope and the CDV accumulated over the *fixed advertised bounds* of
the upstream hops, run the per-switch check, and commit only if every
hop accepts and the route's advertised bounds add up to no more than the
requested end-to-end bound ``D``.

Because every hop's arrival stream is derived from the source contract
plus fixed upstream bounds -- never from the distorted output of the
previous hop -- the per-hop checks are mutually independent and the
procedure needs no iteration, which is one of the paper's selling points
over the rate-function scheme of Raha et al.

The same object serves as the "central connection management server" the
paper plans for RTnet's switched connections: it owns every switch's CAC
state and can also answer hypothetical (non-mutating) queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..exceptions import (
    AdmissionError,
    LinkDown,
    MigrationError,
    QosUnsatisfiable,
    RoutingError,
    SignalingTimeout,
    SwitchRejection,
    SwitchUnavailable,
)
from ..network.connection import (
    ConnectionRequest,
    EstablishedConnection,
    HopCommitment,
)
from ..network.routing import Route, shortest_path
from ..network.signaling import (
    AbortMessage,
    BatchSetupMessage,
    CommitMessage,
    ConnectedMessage,
    ProbeMessage,
    RejectMessage,
    ReleaseMessage,
    SetupMessage,
    SignalingChannel,
    SignalingTrace,
    drain_steps,
)
from ..network.topology import Network
from ..obs import metrics as _om
from ..obs import spans as _ospans
from ..obs.clock import Clock
from ..robustness.breaker import BreakerBoard, CircuitBreaker
from ..robustness.faults import FaultInjector
from ..robustness.health import HealthMonitor
from ..robustness.migration import (
    DROPPED,
    KEPT,
    MIGRATED,
    POLICIES,
    MigrationJournal,
    MigrationReport,
)
from ..robustness.retry import ManualClock, RetryPolicy
from .accumulation import CdvPolicy, make_policy
from .bitstream import BitStream, Number
from .store import AdmissionStore
from .switch_cac import BatchCheckResult, Leg, SwitchCAC

__all__ = ["NetworkCAC", "BatchSetupResult"]


@dataclass(frozen=True)
class BatchSetupResult:
    """Outcome of one :meth:`NetworkCAC.setup_many` call.

    ``established`` lists the admitted connections in request order;
    ``failures`` maps each refused request's name to the
    :class:`~repro.exceptions.AdmissionError` a sequential
    :meth:`NetworkCAC.setup` of that request would have raised.
    ``batched`` reports whether the shared-group fast path applied
    (``False`` means the pipeline processed the requests one by one --
    because faults were injected, or because a group check failed and
    exact per-request verdicts were needed).
    """

    established: Tuple[EstablishedConnection, ...]
    failures: Mapping[str, AdmissionError]
    batched: bool

    @property
    def admitted_names(self) -> Tuple[str, ...]:
        """Names of the admitted connections, in request order."""
        return tuple(c.name for c in self.established)


class NetworkCAC:
    """Admission control for a whole network.

    Parameters
    ----------
    network:
        The topology; every switch output port that should carry
        real-time traffic must have advertised ``bounds`` on its link.
    cdv_policy:
        ``"hard"`` (worst-case summation -- the default, required for
        hard real-time guarantees), ``"soft"`` (square-root of the sum
        of squares, Section 4.3 discussion 1), or any custom
        :class:`~repro.core.accumulation.CdvPolicy`.
    filter_per_input:
        Forwarded to every switch; ``False`` reproduces the coarser
        no-link-filtering analysis for the ablation bench.
    fault_injector:
        Optional :class:`~repro.robustness.faults.FaultInjector` the
        signaling channel consults on every message delivery; ``None``
        (the default) makes the protocol lossless, which degenerates to
        the paper's original walk.
    retry_policy / hop_timeout:
        Resend budget and per-hop response timeout of the signaling
        channel (see ``docs/robustness.md``).
    clock / rng:
        Simulated time source and backoff-jitter randomness, injected
        so fault schedules replay deterministically.  The clock is
        shared across all walks of this instance; the event-driven
        admission plane rebinds it to an
        :class:`~repro.obs.clock.EngineClock` via :meth:`bind_clock`.
    hop_latency:
        Nominal per-direction signaling transit time per hop, forwarded
        to every channel; zero keeps the paper's instantaneous-exchange
        model.
    store_factory:
        Optional factory mapping a switch name to the
        :class:`~repro.core.store.AdmissionStore` backend its
        :class:`SwitchCAC` should use (e.g.
        ``lambda name: ShardedAdmissionStore(8)``); ``None`` gives
        every switch the default in-memory store.
    fast_path:
        Forwarded to every switch: whether admission checks consult the
        incremental headroom-ledger screen before falling through to
        the exact delay-bound evaluation (decision-identical either
        way; see ``docs/performance.md``).  ``None`` defers to the
        ``CAC_FAST_PATH`` environment switch.
    breaker_threshold / breaker_reset_timeout:
        Circuit-breaker tuning: consecutive delivery failures that trip
        a hop's breaker open, and how long (simulated time) the breaker
        fast-fails before letting a half-open probe through (see
        ``docs/robustness.md``).
    suspicion_threshold:
        Consecutive timeouts before the :attr:`health` monitor declares
        a link or switch down.

    Every instance owns a survivability layer: :attr:`health` (the
    failure detector fed by delivery outcomes), :attr:`breakers` (one
    circuit breaker per signaling hop, with the epoch-reconciliation
    close hook installed) and :attr:`migration_journal` (the network
    level record of every live migration).

    Examples
    --------
    >>> from repro.network.topology import star_network
    >>> from repro.network.routing import shortest_path
    >>> from repro.network.connection import ConnectionRequest
    >>> from repro.core.traffic import cbr
    >>> net = star_network(2, bounds={0: 32})
    >>> cac = NetworkCAC(net)
    >>> request = ConnectionRequest(
    ...     "vc0", cbr(0.3), shortest_path(net, "t0", "t1"))
    >>> established = cac.setup(request)
    >>> established.e2e_bound
    32
    """

    def __init__(self, network: Network,
                 cdv_policy: Union[str, CdvPolicy] = "hard",
                 filter_per_input: bool = True,
                 fault_injector: Optional[FaultInjector] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 hop_timeout: float = 8.0,
                 clock: Optional[ManualClock] = None,
                 rng: Optional[random.Random] = None,
                 store_factory: Optional[
                     Callable[[str], AdmissionStore]] = None,
                 breaker_threshold: int = 3,
                 breaker_reset_timeout: float = 64.0,
                 suspicion_threshold: int = 3,
                 hop_latency: float = 0.0,
                 fast_path: Optional[bool] = None):
        self.network = network
        self.cdv_policy = make_policy(cdv_policy)
        self.filter_per_input = filter_per_input
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.hop_timeout = hop_timeout
        self.hop_latency = hop_latency
        self.clock = clock or ManualClock()
        self.rng = rng or random.Random(0)
        self._switches: Dict[str, SwitchCAC] = {}
        self._established: Dict[str, EstablishedConnection] = {}
        #: leg ids of walks currently in flight, so a breaker closing
        #: mid-walk cannot reconcile away a half-committed booking
        self._in_flight: Set[str] = set()
        self.health = HealthMonitor(
            clock=self.clock, suspicion_threshold=suspicion_threshold,
        )
        self.breakers = BreakerBoard(
            clock=self.clock, failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset_timeout,
            on_close=self._reconcile_breaker,
        )
        self.migration_journal = MigrationJournal()
        if fault_injector is not None:
            # Ground-truth failure instants, for the detection-latency
            # histogram only (the detector itself sees just silence).
            fault_injector.add_link_listener(self.health.link_listener())
        for switch in network.switches():
            cac = SwitchCAC(
                switch.name, filter_per_input=filter_per_input,
                store=store_factory(switch.name) if store_factory else None,
                fast_path=fast_path,
            )
            for link in network.out_links(switch.name):
                if link.bounds:
                    cac.configure_link(link.name, link.bounds)
            self._switches[switch.name] = cac

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def switch(self, name: str) -> SwitchCAC:
        """The per-switch CAC state of one switching node."""
        try:
            return self._switches[name]
        except KeyError:
            raise AdmissionError(f"no switch named {name!r}") from None

    def switches(self) -> Mapping[str, SwitchCAC]:
        """Every per-switch CAC, keyed by switch name (a snapshot)."""
        return dict(self._switches)

    @property
    def established(self) -> Mapping[str, EstablishedConnection]:
        """All currently established connections, keyed by name."""
        return dict(self._established)

    def _channel(self, trace: Optional[SignalingTrace],
                 retry_policy: Optional[RetryPolicy] = None,
                 ) -> SignalingChannel:
        """The signaling transport for one walk, sharing this CAC's clock."""
        return SignalingChannel(
            injector=self.fault_injector,
            retry_policy=retry_policy or self.retry_policy,
            clock=self.clock,
            rng=self.rng,
            hop_timeout=self.hop_timeout,
            trace=trace,
            crash_switch=lambda name: self._switches[name].crash(),
            breakers=self.breakers,
            health=self.health,
            hop_latency=self.hop_latency,
        )

    def bind_clock(self, clock: Clock) -> None:
        """Move this CAC (and its survivability layer) onto ``clock``.

        The admission plane calls this with an
        :class:`~repro.obs.clock.EngineClock` so walks, breakers and the
        health monitor all read the one simulation timeline.  Channels
        are created per walk, so they pick the new clock up
        automatically.
        """
        self.clock = clock
        self.health.bind_clock(clock)
        self.breakers.bind_clock(clock)

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------

    def _advertised_bounds(self, route: Route, priority: int) -> List[Number]:
        """The fixed bound of every hop on the route, in order."""
        return [
            self.switch(hop.switch).advertised_bound(hop.out_link, priority)
            for hop in route.hops()
        ]

    def arrival_stream(self, request: ConnectionRequest,
                       hop_index: int) -> BitStream:
        """Step 1: the worst-case arrival stream at the given hop.

        The source envelope of Algorithm 2.1, clumped by the CDV the
        policy accumulates over the advertised bounds of the upstream
        hops (Algorithm 3.1).  Hop 0 sees the undistorted envelope.
        """
        bounds = self._advertised_bounds(request.route, request.priority)
        cdv = self.cdv_policy.accumulate(bounds[:hop_index])
        return request.traffic.worst_case_stream().delayed(cdv)

    def setup(self, request: ConnectionRequest,
              trace: Optional[SignalingTrace] = None) -> EstablishedConnection:
        """Establish a connection along its route, or raise.

        A two-phase walk (see ``docs/robustness.md``): the SETUP message
        first *reserves* resources hop by hop with the properly clumped
        arrival stream, then a COMMIT wave travelling back from the
        destination confirms every reservation.  Each message is
        delivered over the :class:`SignalingChannel` with a per-hop
        timeout and bounded, jittered retries.  The first refusal
        (:class:`SwitchRejection`) or exhausted retry budget
        (:class:`SignalingTimeout`) unwinds every reservation made so
        far -- idempotently, so duplicated or re-sent ABORTs are
        harmless -- and re-raises; the network is then in exactly its
        pre-setup state.  A route whose advertised bounds sum beyond the
        requested ``D`` raises :class:`QosUnsatisfiable` without
        reserving anything.  On success the connection is committed at
        every hop and recorded.
        """
        return drain_steps(self.setup_steps(request, trace), self.clock)

    def setup_steps(self, request: ConnectionRequest,
                    trace: Optional[SignalingTrace] = None,
                    on_reserved: Optional[Callable[[str, str], None]] = None):
        """:meth:`setup` as a resumable step generator.

        Yields every elapse of simulated time; the admission plane runs
        this via :meth:`Engine.process <repro.sim.engine.Engine.process>`
        so N setups can be in flight concurrently, while :meth:`setup`
        drains it synchronously against the CAC clock.
        ``on_reserved(switch, leg_id)`` observes each successful phase-1
        reservation (the plane arms its TTL hold timers there).
        """
        if request.name in self._established:
            raise AdmissionError(
                f"connection {request.name!r} is already established"
            )
        return (yield from self._establish_steps(request, trace,
                                                 on_reserved=on_reserved))

    def _establish(self, request: ConnectionRequest,
                   trace: Optional[SignalingTrace],
                   switch_id: Optional[str] = None,
                   generation: int = 0) -> EstablishedConnection:
        """Synchronous drain of :meth:`_establish_steps`."""
        return drain_steps(
            self._establish_steps(request, trace, switch_id, generation),
            self.clock,
        )

    def _establish_steps(self, request: ConnectionRequest,
                         trace: Optional[SignalingTrace],
                         switch_id: Optional[str] = None,
                         generation: int = 0,
                         on_reserved: Optional[
                             Callable[[str, str], None]] = None):
        """The two-phase walk behind :meth:`setup` and :meth:`migrate`.

        ``switch_id`` is the id the per-switch legs are booked under --
        the plain connection name for an original admission, a
        versioned ``name@g<n>`` id for a migration, so the old and new
        generations coexist at any shared switch during the
        make-before-break window.  On success the established record
        (of the given ``generation``) is registered under the plain
        name, *replacing* any previous generation: that swap is the
        migration's cutover.

        A step generator (see :func:`~repro.network.signaling.drain_steps`):
        every per-hop exchange is a ``yield from`` of the channel's
        :meth:`~repro.network.signaling.SignalingChannel.deliver_steps`.
        ``on_reserved(switch, leg_id)`` fires after each successful
        phase-1 reservation -- the admission plane arms that hop's TTL
        hold timer there.  A reservation the TTL discarded before the
        COMMIT wave reached it raises
        :class:`~repro.exceptions.AdmissionError` at the commit, which
        unwinds the walk with outcome ``expired`` (unreachable in the
        synchronous mode, where no timer can interleave).
        """
        leg_id = switch_id if switch_id is not None else request.name
        registry = _om.get_registry()
        started = self.clock.now()

        def _finish(outcome: str) -> None:
            if registry.enabled:
                registry.counter("network_setups_total",
                                 outcome=outcome).inc()
                registry.histogram(
                    "network_setup_time", buckets=_om.SIGNALING_BUCKETS,
                ).observe(self.clock.now() - started)

        hops = request.route.hops()
        bounds = self._advertised_bounds(request.route, request.priority)
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            if trace is not None:
                trace.record(RejectMessage(
                    leg_id, request.route.source,
                    f"achievable bound {achievable} exceeds requested "
                    f"{request.delay_bound}",
                ))
            _finish("unsatisfiable")
            raise QosUnsatisfiable(request.delay_bound, achievable)

        channel = self._channel(trace)
        committed: List[HopCommitment] = []
        envelope = request.traffic.worst_case_stream()
        touched = 0
        self._in_flight.add(leg_id)
        try:
            with _ospans.span("admission.setup", connection=leg_id,
                              hops=len(hops)) as setup_span:
                try:
                    # Phase 1: the SETUP message walks downstream,
                    # reserving.
                    for index, hop in enumerate(hops):
                        cdv = self.cdv_policy.accumulate(bounds[:index])
                        stream = envelope.delayed(cdv)

                        def process_reserve(hop=hop, cdv=cdv, stream=stream):
                            if trace is not None:
                                trace.record(SetupMessage(
                                    leg_id, hop.switch,
                                    request.traffic.pcr, request.traffic.scr,
                                    request.traffic.mbs, request.delay_bound,
                                    cdv,
                                ))
                            return self.switch(hop.switch).reserve(
                                leg_id, hop.in_link, hop.out_link,
                                request.priority, stream,
                            )

                        touched = index + 1
                        with _ospans.span("admission.hop",
                                          connection=leg_id, hop=index,
                                          switch=hop.switch,
                                          out_link=hop.out_link):
                            result = yield from channel.deliver_steps(
                                "reserve", index, hop.switch, hop.in_link,
                                leg_id, process_reserve,
                            )
                        if on_reserved is not None:
                            on_reserved(hop.switch, leg_id)
                        committed.append(HopCommitment(
                            switch=hop.switch,
                            in_link=hop.in_link,
                            out_link=hop.out_link,
                            cdv_in=cdv,
                            advertised_bound=bounds[index],
                            computed_bound=result.computed_bounds[
                                request.priority],
                        ))
                    # Phase 2: the COMMIT wave travels back upstream.
                    for index, hop in reversed(list(enumerate(hops))):

                        def process_commit(hop=hop):
                            if trace is not None:
                                trace.record(CommitMessage(leg_id,
                                                           hop.switch))
                            self.switch(hop.switch).commit(leg_id)

                        yield from channel.deliver_steps(
                            "commit", index, hop.switch, hop.in_link,
                            leg_id, process_commit,
                        )
                except SwitchRejection as rejection:
                    setup_span.tag(outcome="rejected")
                    yield from self._unwind_steps(leg_id, hops[:touched],
                                                  channel, trace)
                    if trace is not None:
                        trace.record(RejectMessage(
                            leg_id, rejection.switch, str(rejection),
                        ))
                    _finish("rejected")
                    raise
                except SignalingTimeout as timeout:
                    setup_span.tag(outcome="timeout")
                    yield from self._unwind_steps(leg_id, hops[:touched],
                                                  channel, trace)
                    if trace is not None:
                        trace.record(RejectMessage(
                            leg_id, timeout.at_node, str(timeout),
                        ))
                    _finish("timeout")
                    raise
                except LinkDown as down:
                    # A hop's breaker is open: the walk fast-failed
                    # without spending a single timeout.
                    setup_span.tag(outcome="link-down")
                    yield from self._unwind_steps(leg_id, hops[:touched],
                                                  channel, trace)
                    if trace is not None:
                        trace.record(RejectMessage(
                            leg_id, down.at_node, str(down),
                        ))
                    _finish("link-down")
                    raise
                except AdmissionError as expired:
                    # Only reachable in the event-driven mode: a commit
                    # found its reservation discarded by the TTL hold
                    # timer (or raced a concurrent walk's conflicting
                    # state).  The subclasses above were already
                    # handled, so this branch is the residue.
                    setup_span.tag(outcome="expired")
                    yield from self._unwind_steps(leg_id, hops[:touched],
                                                  channel, trace)
                    if trace is not None:
                        trace.record(RejectMessage(
                            leg_id, request.route.source, str(expired),
                        ))
                    _finish("expired")
                    raise
                setup_span.tag(outcome="accepted")
        finally:
            self._in_flight.discard(leg_id)

        established = EstablishedConnection(
            request, tuple(committed),
            generation=generation, switch_id=switch_id,
        )
        self._established[request.name] = established
        if trace is not None:
            trace.record(ConnectedMessage(
                leg_id, request.route.destination,
                established.e2e_bound,
            ))
        _finish("accepted")
        return established

    def _unwind_steps(self, name: str, hops, channel: SignalingChannel,
                      trace: Optional[SignalingTrace]):
        """Abort every hop a failed walk may have touched (step generator).

        :meth:`SwitchCAC.rollback` is idempotent, so hops that never
        actually reserved (the message was lost before arriving) or that
        receive the ABORT twice are no-ops.  A crashed switch is
        skipped: its journal recovery discards uncommitted reservations,
        and :meth:`recover_switch` reconciles anything it had committed.
        If the ABORT itself cannot be delivered, the switch discards the
        reservation on its own once its holder falls silent (reservation
        expiry), modelled here as a direct rollback.
        """
        for index, hop in reversed(list(enumerate(hops))):
            cac = self._switches[hop.switch]
            if cac.crashed:
                continue

            def process_abort(hop=hop, cac=cac):
                if trace is not None:
                    trace.record(AbortMessage(name, hop.switch))
                cac.rollback(name)

            try:
                yield from channel.deliver_steps(
                    "abort", index, hop.switch, hop.in_link, name,
                    process_abort,
                )
            except (SignalingTimeout, LinkDown):
                try:
                    cac.rollback(name)
                except SwitchUnavailable:
                    pass

    def would_admit(self, request: ConnectionRequest) -> bool:
        """Non-mutating admission query.

        Hop checks are mutually independent (every hop reconstructs the
        arrival stream from the source contract), so the answer equals
        what :meth:`setup` would decide -- without touching any state.
        """
        try:
            bounds = self._advertised_bounds(request.route, request.priority)
        except AdmissionError:
            return False
        achievable: Number = 0
        for bound in bounds:
            achievable += bound
        if request.delay_bound is not None and achievable > request.delay_bound:
            return False
        envelope = request.traffic.worst_case_stream()
        for index, hop in enumerate(request.route.hops()):
            cdv = self.cdv_policy.accumulate(bounds[:index])
            try:
                result = self.switch(hop.switch).check(
                    hop.in_link, hop.out_link, request.priority,
                    envelope.delayed(cdv),
                )
            except AdmissionError:
                # An unserved priority or a crashed switch on the route
                # means setup could not succeed either.
                return False
            if not result.admitted:
                return False
        return True

    def teardown(self, name: str,
                 trace: Optional[SignalingTrace] = None) -> None:
        """Release an established connection at every hop.

        An unknown (or already-torn-down) connection raises
        :class:`AdmissionError` before any switch is touched.  Per-hop
        RELEASE messages travel over the signaling channel and apply the
        idempotent :meth:`SwitchCAC.rollback`, so duplicated deliveries
        cannot corrupt the aggregates; a crashed hop is skipped (its
        reconciliation happens in :meth:`recover_switch`) and an
        undeliverable RELEASE falls back to reservation expiry, exactly
        like a failed setup's unwind.
        """
        drain_steps(self.teardown_steps(name, trace), self.clock)

    def teardown_steps(self, name: str,
                       trace: Optional[SignalingTrace] = None):
        """:meth:`teardown` as a step generator (for the engine mode)."""
        try:
            established = self._established.pop(name)
        except KeyError:
            raise AdmissionError(f"no established connection {name!r}") from None
        yield from self._release_legs_steps(established, trace)
        registry = _om.get_registry()
        if registry.enabled:
            registry.counter("network_teardowns_total").inc()

    def _release_legs_steps(self, established: EstablishedConnection,
                            trace: Optional[SignalingTrace]):
        """Release one generation's booking at every hop, best-effort.

        Works off the connection's :attr:`leg_name` so it releases
        exactly the generation it is handed -- :meth:`teardown` passes
        the current one, :meth:`migrate` the superseded one.  A crashed
        hop is skipped (reconciled in :meth:`recover_switch`) and an
        undeliverable RELEASE -- timeout or an open breaker -- falls
        back to reservation expiry, modelled as a direct rollback.
        """
        leg_id = established.leg_name
        channel = self._channel(trace)
        for index, commitment in enumerate(established.hops):
            cac = self._switches[commitment.switch]
            if cac.crashed:
                continue

            def process_release(commitment=commitment, cac=cac):
                if trace is not None:
                    trace.record(ReleaseMessage(leg_id, commitment.switch))
                cac.rollback(leg_id)

            try:
                yield from channel.deliver_steps(
                    "release", index, commitment.switch, commitment.in_link,
                    leg_id, process_release,
                )
            except (SignalingTimeout, LinkDown):
                try:
                    cac.rollback(leg_id)
                except SwitchUnavailable:
                    pass

    def recover_switch(self, name: str) -> SwitchCAC:
        """Bring a crashed switch back and reconcile it with the network.

        The switch first replays its journal
        (:meth:`SwitchCAC.recover`), which restores its committed state
        bit-identically and discards in-flight reservations.  The
        central server then reconciles: a leg the switch committed for
        a connection the network unwound (e.g. the COMMIT reached this
        hop but a later fault aborted the walk) is released, so the
        recovered switch carries exactly the network's committed
        connections.
        """
        cac = self.switch(name)
        cac.recover()
        self._reconcile_switch(cac)
        return cac

    def _reconcile_switch(self, cac: SwitchCAC) -> None:
        """Release every leg the network no longer accounts for.

        The active set is keyed by :attr:`EstablishedConnection.leg_name`
        (migrations book under versioned ids), plus the legs of any walk
        currently in flight -- a breaker closing mid-commit-wave must
        not reconcile away a booking that is about to register.
        """
        active = {c.leg_name for c in self._established.values()}
        active.update(self._in_flight)
        for connection_id in list(cac.legs):
            if connection_id not in active:
                cac.rollback(connection_id)

    # ------------------------------------------------------------------
    # Survivability: probing, breaker reconciliation, live migration
    # ------------------------------------------------------------------

    def _reconcile_breaker(self, breaker: CircuitBreaker) -> None:
        """The breaker-close hook: reconcile the switch *before* trust.

        Runs on every half-open -> closed transition, before the
        breaker actually closes.  A switch that crashed behind the open
        breaker is brought back through :meth:`recover_switch` (journal
        replay plus reconciliation); one that restarted on its own --
        detectable because its crash epoch moved past the breaker's
        last known epoch -- gets the same orphan-leg reconciliation, so
        bookings the network unwound or migrated away while the hop was
        dark are released before any new traffic books through it.
        """
        cac = self._switches.get(breaker.node)
        if cac is None:
            return  # terminal hop: no CAC state to reconcile
        if cac.crashed:
            self.recover_switch(breaker.node)
        else:
            self._reconcile_switch(cac)
        breaker.known_epoch = cac.epoch

    def probe(self, hops: Optional[Iterable[Tuple[str, str]]] = None,
              trace: Optional[SignalingTrace] = None) -> Dict[str, bool]:
        """Actively probe signaling hops; returns ``{target: alive}``.

        ``hops`` is an iterable of ``(switch, in_link)`` pairs;
        ``None`` probes every link entering a switch.  Each probe is a
        single non-retried delivery of a PING the switch answers with
        its crash epoch (:meth:`SwitchCAC.ping`), so a probe through an
        open breaker fast-fails, a probe after ``reset_timeout`` *is*
        the breaker's half-open trial (closing it on success, after
        reconciliation), and a lost probe counts as failure evidence
        for both the breaker and the health monitor.  Targets are keyed
        ``link@switch`` like the breaker metrics.
        """
        if hops is None:
            hops = [(link.dst, link.name) for link in self.network.links()
                    if link.dst in self._switches]
        channel = self._channel(trace, retry_policy=RetryPolicy(
            max_attempts=1,
        ))
        results: Dict[str, bool] = {}
        for node, link in hops:
            cac = self.switch(node)
            epoch: Optional[int] = None

            def process_ping(cac=cac):
                return cac.ping()

            try:
                epoch = channel.deliver(
                    "probe", 0, node, link, f"probe:{link}@{node}",
                    process_ping,
                )
            except (SignalingTimeout, LinkDown):
                ok = False
            else:
                ok = True
                self.breakers.breaker(node, link).known_epoch = epoch
            if trace is not None:
                trace.record(ProbeMessage(node, link, ok, epoch))
            results[f"{link}@{node}"] = ok
        return results

    def _count_migration(self, outcome: str) -> None:
        registry = _om.get_registry()
        if registry.enabled:
            registry.counter("cac_migrations_total", outcome=outcome).inc()

    def migrate(self, name: str, avoid: AbstractSet[str],
                trace: Optional[SignalingTrace] = None,
                ) -> EstablishedConnection:
        """Move one established connection off the avoided elements.

        Make-before-break: the detour (shortest path ``avoid``-ing the
        given links/switches) is fully reserved and committed under a
        fresh generation id *while the old route stays booked*; only
        then does the cutover swap the established record and release
        the old generation's legs.  Any failure -- no detour exists, or
        the detour's walk is refused or times out -- raises
        :class:`~repro.exceptions.MigrationError` with the old route
        untouched (the failed walk unwinds its own reservations), so
        the migration is atomic.  Every step is journaled in
        :attr:`migration_journal`.
        """
        return drain_steps(self.migrate_steps(name, avoid, trace),
                           self.clock)

    def migrate_steps(self, name: str, avoid: AbstractSet[str],
                      trace: Optional[SignalingTrace] = None):
        """:meth:`migrate` as a step generator (for the engine mode)."""
        established = self._established.get(name)
        if established is None:
            raise AdmissionError(f"no established connection {name!r}")
        route = established.request.route
        generation = established.generation + 1
        with _ospans.span("admission.migrate", connection=name,
                          generation=generation) as migrate_span:
            try:
                detour = shortest_path(
                    self.network, route.source, route.destination,
                    avoid=frozenset(avoid),
                )
            except RoutingError as exc:
                migrate_span.tag(outcome="no-route")
                self._count_migration("failed")
                self.migration_journal.append(
                    "failed", name, generation, detail=str(exc))
                raise MigrationError(name, str(exc)) from exc
            switch_id = f"{name}@g{generation}"
            self.migration_journal.append(
                "start", name, generation,
                detail=" ".join(detour.link_names))
            new_request = replace(established.request, route=detour)
            try:
                connection = yield from self._establish_steps(
                    new_request, trace,
                    switch_id=switch_id, generation=generation,
                )
            except AdmissionError as exc:
                migrate_span.tag(outcome="refused")
                self._count_migration("failed")
                self.migration_journal.append(
                    "failed", name, generation, detail=str(exc))
                raise MigrationError(name, str(exc)) from exc
            # _establish registered the new generation under the plain
            # name: that swap was the cutover.
            self.migration_journal.append("cutover", name, generation)
            yield from self._release_legs_steps(established, trace)
            self.migration_journal.append("released", name, generation)
            self._count_migration(MIGRATED)
            self.migration_journal.append("done", name, generation)
            migrate_span.tag(outcome="migrated")
        return connection

    def handle_link_failure(self, link: str,
                            policy: str = "migrate-or-drop",
                            trace: Optional[SignalingTrace] = None,
                            ) -> MigrationReport:
        """Migrate every connection routed over a failed link.

        ``policy`` decides the fate of victims no detour can carry:
        ``"migrate-or-drop"`` tears them down (capacity released, the
        guarantee honestly revoked), ``"migrate-or-keep"`` leaves them
        booked on the dead route awaiting repair.  Victims are handled
        in name order for determinism.
        """
        return drain_steps(
            self.handle_link_failure_steps(link, policy, trace), self.clock)

    def handle_link_failure_steps(self, link: str,
                                  policy: str = "migrate-or-drop",
                                  trace: Optional[SignalingTrace] = None):
        """:meth:`handle_link_failure` as a step generator."""
        self.network.link(link)
        victims = [
            connection
            for _name, connection in sorted(self._established.items())
            if any(hop.in_link == link or hop.out_link == link
                   for hop in connection.hops)
        ]
        return (yield from self._handle_failure_steps(
            link, "link", frozenset((link,)), victims, policy, trace))

    def handle_switch_failure(self, switch: str,
                              policy: str = "migrate-or-drop",
                              trace: Optional[SignalingTrace] = None,
                              ) -> MigrationReport:
        """Migrate every connection routed through a failed switch."""
        return drain_steps(
            self.handle_switch_failure_steps(switch, policy, trace),
            self.clock)

    def handle_switch_failure_steps(self, switch: str,
                                    policy: str = "migrate-or-drop",
                                    trace: Optional[SignalingTrace] = None):
        """:meth:`handle_switch_failure` as a step generator."""
        self.switch(switch)
        victims = [
            connection
            for _name, connection in sorted(self._established.items())
            if any(hop.switch == switch for hop in connection.hops)
        ]
        return (yield from self._handle_failure_steps(
            switch, "switch", frozenset((switch,)), victims, policy, trace))

    def _handle_failure_steps(self, trigger: str, kind: str,
                              avoid: AbstractSet[str],
                              victims: Sequence[EstablishedConnection],
                              policy: str,
                              trace: Optional[SignalingTrace],
                              ):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown migration policy {policy!r}; expected one of "
                f"{POLICIES}"
            )
        migrated: List[str] = []
        dropped: List[str] = []
        kept: List[str] = []
        failures: Dict[str, str] = {}
        with _ospans.span("admission.handle_failure", trigger=trigger,
                          kind=kind, policy=policy,
                          victims=len(victims)) as failure_span:
            for victim in victims:
                try:
                    yield from self.migrate_steps(victim.name, avoid,
                                                  trace=trace)
                except MigrationError as exc:
                    failures[victim.name] = str(exc.reason)
                    if policy == "migrate-or-drop":
                        yield from self.teardown_steps(victim.name,
                                                       trace=trace)
                        self._count_migration(DROPPED)
                        self.migration_journal.append(
                            "dropped", victim.name,
                            victim.generation + 1, detail=trigger)
                        dropped.append(victim.name)
                    else:
                        self._count_migration(KEPT)
                        self.migration_journal.append(
                            "kept", victim.name,
                            victim.generation + 1, detail=trigger)
                        kept.append(victim.name)
                else:
                    migrated.append(victim.name)
            failure_span.tag(migrated=len(migrated), dropped=len(dropped),
                             kept=len(kept))
        return MigrationReport(
            trigger=trigger, kind=kind, policy=policy,
            migrated=tuple(migrated), dropped=tuple(dropped),
            kept=tuple(kept), failures=failures,
            detection_latency=self.health.detection_latency(trigger),
        )

    def setup_all(self, requests: Iterable[ConnectionRequest]) -> List[EstablishedConnection]:
        """Establish several connections; unwind all of them on failure.

        All-or-nothing semantics: the workload generators use this so a
        partially admitted connection set never leaks into a sweep.
        """
        done: List[EstablishedConnection] = []
        try:
            for request in requests:
                done.append(self.setup(request))
        except AdmissionError:
            for established in reversed(done):
                self.teardown(established.name)
            raise
        return done

    def teardown_all(self) -> None:
        """Release every established connection."""
        for name in list(self._established):
            self.teardown(name)

    # ------------------------------------------------------------------
    # Batched admission
    # ------------------------------------------------------------------

    def setup_many(self, requests: Iterable[ConnectionRequest],
                   trace: Optional[SignalingTrace] = None,
                   ) -> BatchSetupResult:
        """Establish a batch of connections with shared admission checks.

        Admits **exactly the same set** as applying :meth:`setup` to the
        requests one by one in order (catching per-request
        :class:`AdmissionError`), and leaves every switch -- aggregates,
        committed legs, journal -- in the bit-identical state.  The
        difference is cost: when the channel is lossless (no fault
        injector), the candidate legs are grouped by switch and each
        switch runs one :meth:`~repro.core.switch_cac.SwitchCAC.check_batch`
        group check, sharing the aggregate substitution and
        higher-priority interference sums across every request that
        crosses the port.  By monotonicity of the delay bound a passing
        group check proves every sequential prefix admissible, so the
        apply phase -- request-major reserve -> commit, preserving the
        per-switch journal order of the sequential walk -- skips the
        per-leg checks entirely.

        Exactness is never traded away: a failing group check (some
        request would be refused, but the group verdict cannot say
        which) and any configured fault injector both fall back to the
        sequential one-by-one pipeline.
        """
        requests = list(requests)
        if self.fault_injector is not None:
            # Fault semantics (drops, crashes, retries, clock advances)
            # are defined per message; only the sequential walk
            # reproduces them exactly.
            return self._setup_sequential(requests, trace)

        # Pre-flight: weed out the requests a sequential setup would
        # refuse before reserving anything.  Pure -- no traces, no
        # metrics -- so a later fallback cannot double-record.
        plans: List[Tuple[ConnectionRequest, List[Number], List[Number],
                          List[BitStream]]] = []
        preflight: Dict[str, AdmissionError] = {}
        seen = set(self._established)
        for request in requests:
            if request.name in seen:
                preflight[request.name] = AdmissionError(
                    f"connection {request.name!r} is already established"
                )
                continue
            try:
                bounds = self._advertised_bounds(request.route,
                                                 request.priority)
            except AdmissionError as exc:
                preflight[request.name] = exc
                continue
            achievable: Number = 0
            for bound in bounds:
                achievable += bound
            if request.delay_bound is not None and \
                    achievable > request.delay_bound:
                preflight[request.name] = QosUnsatisfiable(
                    request.delay_bound, achievable)
                continue
            seen.add(request.name)
            envelope = request.traffic.worst_case_stream()
            cdvs = [self.cdv_policy.accumulate(bounds[:index])
                    for index in range(len(bounds))]
            plans.append((request, bounds, cdvs,
                          [envelope.delayed(cdv) for cdv in cdvs]))

        # Group the candidate legs by switch (first-touch order) and run
        # one shared check per switch.  Pure: nothing reserved yet.
        legs_by_switch: Dict[str, List[Leg]] = {}
        for request, _bounds, _cdvs, streams in plans:
            for index, hop in enumerate(request.route.hops()):
                legs_by_switch.setdefault(hop.switch, []).append(Leg(
                    request.name, hop.in_link, hop.out_link,
                    request.priority, streams[index],
                ))
        group: Dict[str, BatchCheckResult] = {}
        all_admitted = True
        with _ospans.span("admission.setup_many", requests=len(requests),
                          candidates=len(plans)) as batch_span:
            for switch_name, legs in legs_by_switch.items():
                try:
                    verdict = self.switch(switch_name).check_batch(legs)
                except AdmissionError:
                    # e.g. a crashed switch on some route: per-request
                    # verdicts need the sequential walk.
                    all_admitted = False
                    break
                group[switch_name] = verdict
                if trace is not None:
                    trace.record(BatchSetupMessage(
                        switch_name,
                        tuple(leg.connection_id for leg in legs),
                        verdict.admitted,
                    ))
                if not verdict.admitted:
                    all_admitted = False
            if not all_admitted:
                batch_span.tag(outcome="fallback")
                return self._setup_sequential(requests, trace)
            batch_span.tag(outcome="batched")

            # Commit path.  Emit the traces/metrics the sequential walk
            # would have produced for the pre-flight refusals...
            registry = _om.get_registry()
            started = self.clock.now()
            for request in requests:
                failure = preflight.get(request.name)
                if isinstance(failure, QosUnsatisfiable):
                    if trace is not None:
                        trace.record(RejectMessage(
                            request.name, request.route.source,
                            f"achievable bound {failure.achievable} exceeds "
                            f"requested {failure.requested}",
                        ))
                    self._record_setup(registry, "unsatisfiable", started)

            # ...then apply the admitted candidates request-major
            # (reserve every hop downstream, commit back upstream), so
            # each switch's journal is op-for-op what the sequential
            # walk writes and crash recovery stays bit-identical.
            established: List[EstablishedConnection] = []
            for request, bounds, cdvs, streams in plans:
                hops = request.route.hops()
                committed: List[HopCommitment] = []
                for index, hop in enumerate(hops):
                    if trace is not None:
                        trace.record(SetupMessage(
                            request.name, hop.switch,
                            request.traffic.pcr, request.traffic.scr,
                            request.traffic.mbs, request.delay_bound,
                            cdvs[index],
                        ))
                    result = self.switch(hop.switch).reserve_checked(
                        Leg(request.name, hop.in_link, hop.out_link,
                            request.priority, streams[index]),
                        group[hop.switch].results[request.name],
                    )
                    committed.append(HopCommitment(
                        switch=hop.switch,
                        in_link=hop.in_link,
                        out_link=hop.out_link,
                        cdv_in=cdvs[index],
                        advertised_bound=bounds[index],
                        computed_bound=result.computed_bounds.get(
                            request.priority, 0),
                    ))
                for index, hop in reversed(list(enumerate(hops))):
                    if trace is not None:
                        trace.record(CommitMessage(request.name, hop.switch))
                    self.switch(hop.switch).commit(request.name)
                connection = EstablishedConnection(request, tuple(committed))
                self._established[request.name] = connection
                established.append(connection)
                if trace is not None:
                    trace.record(ConnectedMessage(
                        request.name, request.route.destination,
                        connection.e2e_bound,
                    ))
                self._record_setup(registry, "accepted", started)
        return BatchSetupResult(tuple(established), preflight, batched=True)

    def _record_setup(self, registry, outcome: str, started: float) -> None:
        """One ``network_setups_total`` tick plus the setup-time sample."""
        if registry.enabled:
            registry.counter("network_setups_total", outcome=outcome).inc()
            registry.histogram(
                "network_setup_time", buckets=_om.SIGNALING_BUCKETS,
            ).observe(self.clock.now() - started)

    def _setup_sequential(self, requests: Sequence[ConnectionRequest],
                          trace: Optional[SignalingTrace],
                          ) -> BatchSetupResult:
        """The exact reference pipeline: one :meth:`setup` per request."""
        established: List[EstablishedConnection] = []
        failures: Dict[str, AdmissionError] = {}
        for request in requests:
            try:
                established.append(self.setup(request, trace))
            except AdmissionError as exc:
                failures[request.name] = exc
        return BatchSetupResult(tuple(established), failures, batched=False)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_e2e_bound(self, route: Route, priority: int) -> Number:
        """Worst-case end-to-end bound along a route *as currently loaded*.

        The sum over the route's hops of each port's computed bound for
        the priority class -- what Figure 10 plots as a function of the
        admitted load.  Advertised bounds cap each term, so this never
        exceeds the fixed end-to-end guarantee.
        """
        total: Number = 0
        for hop in route.hops():
            total += self.switch(hop.switch).computed_bound(
                hop.out_link, priority,
            )
        return total

    def port_report(self) -> Dict[Tuple[str, str, int], Dict[str, Number]]:
        """Per-(switch, link, priority) computed bound, buffer need, load."""
        report: Dict[Tuple[str, str, int], Dict[str, Number]] = {}
        for name, cac in self._switches.items():
            for out_link in cac.out_links():
                for priority in cac.priorities(out_link):
                    report[(name, out_link, priority)] = {
                        "computed_bound": cac.computed_bound(out_link, priority),
                        "buffer_cells": cac.buffer_requirement(out_link, priority),
                        "advertised": cac.advertised_bound(out_link, priority),
                        "utilization": cac.utilization(out_link),
                    }
        return report
