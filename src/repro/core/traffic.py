"""CBR/VBR traffic descriptors and the Section 2 traffic model.

A VBR connection is described by ``(PCR, SCR, MBS)``:

* ``PCR`` -- peak cell rate, the fastest the source may emit cells;
* ``SCR`` -- sustainable cell rate, the long-run average allowance;
* ``MBS`` -- maximum burst size, how many cells may go out back-to-back
  at ``PCR`` when a full token bucket has accumulated.

A CBR connection is the special case ``SCR == PCR`` (the paper treats it
that way and so do we).  Rates are normalized to the link bandwidth and
time is in cell times, as everywhere in :mod:`repro.core`.

The module provides:

* :class:`VBRParameters` / :func:`cbr` -- validated descriptors;
* :meth:`VBRParameters.worst_case_stream` -- Algorithm 2.1, the
  continuous bit-stream envelope of the worst-case generation pattern;
* :func:`worst_case_cell_times` -- the *discrete* worst-case cell
  schedule of equation (1) (the token-counter model), used by the
  simulator's greedy sources and by the tests that check the continuous
  envelope really bounds the discrete process at cell boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..exceptions import TrafficModelError
from .bitstream import BitStream, Number
from .kernels import np as _np

#: Below this cell count the scalar loop beats NumPy array overhead.
_VECTOR_MIN_CELLS = 16

__all__ = [
    "VBRParameters",
    "cbr",
    "worst_case_cell_times",
    "equivalent_vbr_for_cbr_set",
    "check_conformance",
]


@dataclass(frozen=True)
class VBRParameters:
    """A validated ``(PCR, SCR, MBS)`` traffic descriptor.

    Parameters
    ----------
    pcr:
        Peak cell rate, ``0 < SCR <= PCR <= 1`` (normalized).
    scr:
        Sustainable cell rate.
    mbs:
        Maximum burst size in cells, ``>= 1``.

    Examples
    --------
    >>> v = VBRParameters(pcr=0.5, scr=0.1, mbs=4)
    >>> v.is_cbr
    False
    >>> cbr(0.25).is_cbr
    True
    """

    pcr: Number
    scr: Number
    mbs: Number = 1

    def __post_init__(self) -> None:
        if not 0 < self.scr <= self.pcr:
            raise TrafficModelError(
                f"need 0 < SCR <= PCR, got SCR={self.scr}, PCR={self.pcr}"
            )
        if self.pcr > 1:
            raise TrafficModelError(
                f"PCR must not exceed the link rate (1.0), got {self.pcr}"
            )
        if self.mbs < 1:
            raise TrafficModelError(f"MBS must be >= 1 cell, got {self.mbs}")
        if self.mbs > 1 and self.pcr == self.scr:
            # A burst above 1 is meaningless when peak == sustained; we
            # normalize rather than reject, because ATM signalling often
            # carries a vestigial MBS for CBR contracts.
            object.__setattr__(self, "mbs", 1)

    @property
    def is_cbr(self) -> bool:
        """True when this descriptor is a constant-bit-rate contract."""
        return self.pcr == self.scr

    @property
    def burst_duration(self) -> Number:
        """Length of the worst-case peak-rate burst, ``(MBS - 1) / PCR``.

        The first cell occupies the leading full-rate segment of the
        envelope, hence ``MBS - 1`` cells at ``PCR`` (Algorithm 2.1).
        """
        return (self.mbs - 1) / self.pcr

    def worst_case_stream(self) -> BitStream:
        """Algorithm 2.1: the continuous bit-stream worst-case envelope.

        The worst case emits one cell immediately (the leading rate-1
        segment of unit length), then ``MBS - 1`` further cells at
        ``PCR``, then settles to ``SCR``:

        ``S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS - 1) / PCR)}``

        The stream generates the same number of bits as the discrete
        worst-case cell process at every cell boundary and at least as
        many in between, so every bound derived from it is valid for the
        real cell stream (checked by the property tests).
        """
        return BitStream(
            [1, self.pcr, self.scr],
            [0, 1, 1 + self.burst_duration],
        )

    def mean_interval(self) -> Number:
        """Average cell spacing at the sustained rate, ``1 / SCR``."""
        return 1 / self.scr

    def as_fractions(self) -> "VBRParameters":
        """A copy whose parameters are exact :class:`fractions.Fraction`.

        Handy for tests that need exact algebra end to end.
        """
        return VBRParameters(
            Fraction(self.pcr).limit_denominator(10**12),
            Fraction(self.scr).limit_denominator(10**12),
            self.mbs if isinstance(self.mbs, int) else Fraction(self.mbs),
        )


def cbr(pcr: Number) -> VBRParameters:
    """A CBR descriptor with the given peak (== sustained) cell rate."""
    return VBRParameters(pcr=pcr, scr=pcr, mbs=1)


def worst_case_cell_times(params: VBRParameters, count: int) -> List[float]:
    """Generation times of the first ``count`` cells of a greedy source.

    The greedy source of the equation (1) token model emits ``MBS``
    cells at ``1/PCR`` spacing and then settles to ``1/SCR`` spacing
    (Figure 1).  Time zero is the first cell.

    Note on the token bucket: the refill-capped-at-MBS narration of the
    paper, taken literally with continuous refill, would let a greedy
    source stretch the peak-rate burst beyond ``MBS`` cells (tokens
    accrue *during* the burst).  The bucket that produces exactly the
    Figure 1 worst case -- and the standard GCRA correspondence -- has
    depth ``1 + (MBS - 1) * (1 - SCR/PCR)``; see
    :class:`repro.sim.gcra.DualLeakyBucket`.  Here we emit the Figure 1
    schedule directly, which is what Algorithm 2.1 envelopes.

    This is the schedule the simulator's worst-case sources follow and
    the discrete counterpart of :meth:`VBRParameters.worst_case_stream`.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    pcr_gap = 1 / params.pcr
    scr_gap = 1 / params.scr
    if (_np is not None and count >= _VECTOR_MIN_CELLS
            and type(params.mbs) is int
            and isinstance(pcr_gap, float) and isinstance(scr_gap, float)):
        # NumPy fast path: same expressions evaluated per element in
        # float64, so the schedule is bit-identical to the scalar loop.
        index = _np.arange(count, dtype=_np.float64)
        burst_end = (params.mbs - 1) * pcr_gap
        vectorized = _np.where(
            index < params.mbs,
            index * pcr_gap,
            burst_end + (index - params.mbs + 1) * scr_gap,
        )
        return vectorized.tolist()
    times: List[float] = []
    for index in range(count):
        if index < params.mbs:
            times.append(index * pcr_gap)
        else:
            burst_end = (params.mbs - 1) * pcr_gap
            times.append(burst_end + (index - params.mbs + 1) * scr_gap)
    return times


def check_conformance(cell_times: List[float],
                      params: VBRParameters) -> List[int]:
    """Indices of cells that violate the ``(PCR, SCR, MBS)`` contract.

    A policer's view of an emission schedule: each cell must respect the
    peak spacing and the sustained-rate token bucket (the GCRA bucket of
    :func:`repro.sim.gcra.bucket_depth`).  Non-conforming cells are
    reported but -- like a real UPC that tags rather than drops -- do
    not update the bucket, so one early cell does not cascade into
    flagging every successor.

    Returns an empty list for a conforming schedule.

    >>> check_conformance([0.0, 4.0, 8.0], cbr(0.25))
    []
    >>> check_conformance([0.0, 1.0, 8.0], cbr(0.25))
    [1]
    """
    from ..sim.gcra import DualLeakyBucket
    violations: List[int] = []
    bucket = DualLeakyBucket(params)
    previous = None
    for index, time in enumerate(cell_times):
        if previous is not None and time < previous:
            raise ValueError(
                f"cell times must be non-decreasing, got {time} after "
                f"{previous}"
            )
        if bucket.conforms(time):
            bucket.record_emission(time)
        else:
            violations.append(index)
        previous = time
    return violations


def equivalent_vbr_for_cbr_set(count: int, rate: Number) -> VBRParameters:
    """The VBR descriptor matching ``count`` jittered CBR connections.

    Section 5 observes that the worst-case aggregate of ``N`` CBR
    connections of peak rate ``R`` equals the worst case of a single VBR
    connection with ``PCR = min(N * R, 1)`` capped at the link rate,
    ``SCR = N * R`` and ``MBS = N`` -- all ``N`` sources may burst one
    cell simultaneously.  This is how Figure 10 doubles as a VBR
    feasibility result.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    total = count * rate
    if total > 1:
        raise TrafficModelError(
            f"aggregate sustained rate {total} exceeds the link rate"
        )
    # All N sources can emit a cell simultaneously, so the aggregate can
    # put MBS = N cells on the wire back to back; once carried on a single
    # link that burst arrives at the link rate, hence PCR = 1 (the paper
    # states the equivalence with PCR = N before link filtering; the two
    # envelopes filter to the same stream).
    return VBRParameters(pcr=1, scr=total, mbs=count)
