"""Baseline admission-control schemes the paper argues against.

Section 1 motivates the bit-stream CAC by the failure of the
"straightforward" scheme: **peak bandwidth allocation**, which admits
CBR connections as long as the summed peak rates on every link stay
within the link bandwidth.  It keeps links from being oversubscribed on
average, but -- as the motivation bench demonstrates with the cell-level
simulator -- jitter introduced at upstream nodes clumps cells, the
instantaneous arrival rate exceeds the link rate, and queueing delays
become unpredictable (and finite buffers overflow).

Three baselines are provided:

* :class:`PeakBandwidthCAC`  -- admit while ``sum PCR <= capacity``;
* :class:`SustainedBandwidthCAC` -- admit while ``sum SCR <= capacity``
  (even laxer: the classic "average allocation" that ignores bursts);
* :func:`rate_function_delay_bound` -- the delay analysis in the style
  of Raha et al. [9], the scheme the paper improves on: traffic is
  described by a maximum-rate function, upstream distortion is modelled
  by *shifting* that function by the accumulated CDV (an instantaneous
  release of the whole clump, rather than the paper's exact
  released-at-link-rate envelope), and per-input link filtering is not
  applied.  Sound but looser -- the A1/A3 benches quantify by how much.

The bandwidth schemes expose the same ``setup`` / ``teardown`` /
``would_admit`` surface as :class:`~repro.core.admission.NetworkCAC` so
benches can swap schemes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..exceptions import AdmissionError
from ..network.connection import ConnectionRequest
from ..network.topology import Network
from .bitstream import BitStream, Number

__all__ = [
    "BandwidthAllocationCAC",
    "PeakBandwidthCAC",
    "SustainedBandwidthCAC",
    "rate_function_delay_bound",
]


def rate_function_delay_bound(
        components: Sequence[Tuple[BitStream, Number]]) -> Number:
    """Worst-case delay in the maximum-rate-function style of [9].

    ``components`` pairs each connection's *source* envelope with the
    CDV accumulated over its upstream switches.  The rate-function
    model bounds the distorted arrivals of a connection by shifting its
    cumulative curve left: ``A'_i(t) = A_i(t + cdv_i)`` -- as if the
    entire clump were released instantaneously at full aggregate rate
    -- and sums connections without modelling the smoothing of the
    incoming links.  The bound is then the classic busy-period maximum

        ``D = max_t ( sum_i A_i(t + cdv_i) - t )``

    evaluated at the (finitely many) shifted breakpoints.  Always at
    least the bit-stream bound for the same traffic; the gap is the
    value of the paper's two refinements (exact clump envelopes and
    link filtering).  Returns ``math.inf`` when the sustained rates
    reach the link rate with a clump outstanding.
    """
    if not components:
        return 0
    tail_rate: Number = 0
    for stream, cdv in components:
        if cdv < 0:
            raise ValueError(f"cdv must be non-negative, got {cdv}")
        tail_rate += stream.long_run_rate

    def total_arrivals(t: Number) -> Number:
        total: Number = 0
        for stream, cdv in components:
            total += stream.bits(t + cdv)
        return total

    candidates = {0}
    for stream, cdv in components:
        for breakpoint in stream.times:
            shifted = breakpoint - cdv
            if shifted > 0:
                candidates.add(shifted)

    if tail_rate > 1:
        # Sustained overload: the busy-period function grows forever.
        return math.inf
    best: Number = 0
    for t in sorted(candidates):
        backlog = total_arrivals(t) - t
        if backlog > best:
            best = backlog
    return best


class BandwidthAllocationCAC:
    """Shared bookkeeping: one scalar rate per connection, summed per link.

    Subclasses choose which rate of the traffic contract is allocated.
    No delay bounds are computed or guaranteed -- that is the point of
    the comparison.
    """

    #: human-readable scheme name used in reports
    name = "bandwidth-allocation"

    def __init__(self, network: Network):
        self.network = network
        self._allocated: Dict[str, Number] = {}   # link -> allocated rate
        self._connections: Dict[str, ConnectionRequest] = {}

    def rate_of(self, request: ConnectionRequest) -> Number:
        """The scalar rate this scheme allocates for a connection."""
        raise NotImplementedError  # pragma: no cover

    def allocated(self, link_name: str) -> Number:
        """Rate currently allocated on a link."""
        return self._allocated.get(link_name, 0)

    def would_admit(self, request: ConnectionRequest) -> bool:
        """True when every link on the route has headroom for the rate."""
        rate = self.rate_of(request)
        for link in request.route.links:
            if self.allocated(link.name) + rate > link.capacity:
                return False
        return True

    def setup(self, request: ConnectionRequest) -> None:
        """Reserve the rate on every link of the route, or raise."""
        if request.name in self._connections:
            raise AdmissionError(
                f"connection {request.name!r} is already established"
            )
        rate = self.rate_of(request)
        for link in request.route.links:
            if self.allocated(link.name) + rate > link.capacity:
                raise AdmissionError(
                    f"{self.name} CAC: link {link.name!r} has "
                    f"{self.allocated(link.name)} allocated; adding {rate} "
                    f"would exceed capacity {link.capacity}"
                )
        for link in request.route.links:
            self._allocated[link.name] = self.allocated(link.name) + rate
        self._connections[request.name] = request

    def teardown(self, name: str) -> None:
        """Release a connection's reservation on every link."""
        try:
            request = self._connections.pop(name)
        except KeyError:
            raise AdmissionError(f"no established connection {name!r}") from None
        rate = self.rate_of(request)
        for link in request.route.links:
            self._allocated[link.name] -= rate

    def setup_all(self, requests: Iterable[ConnectionRequest]) -> None:
        """Reserve several connections; unwind all on the first failure."""
        done: List[str] = []
        try:
            for request in requests:
                self.setup(request)
                done.append(request.name)
        except AdmissionError:
            for name in reversed(done):
                self.teardown(name)
            raise

    @property
    def established(self) -> Mapping[str, ConnectionRequest]:
        """The currently reserved connections."""
        return dict(self._connections)


class PeakBandwidthCAC(BandwidthAllocationCAC):
    """Admit while the summed *peak* rates fit each link.

    The conventional CBR admission rule.  Guarantees no long-run
    oversubscription but no worst-case delay: upstream jitter can clump
    peak-allocated traffic beyond the link rate transiently.
    """

    name = "peak-bandwidth"

    def rate_of(self, request: ConnectionRequest) -> Number:
        return request.traffic.pcr


class SustainedBandwidthCAC(BandwidthAllocationCAC):
    """Admit while the summed *sustained* rates fit each link.

    Average-rate allocation: the laxest plausible rule, admitting
    everything stable.  Useful as the upper envelope in capacity plots
    (no CAC that guarantees stability can admit more).
    """

    name = "sustained-bandwidth"

    def rate_of(self, request: ConnectionRequest) -> Number:
        return request.traffic.scr
