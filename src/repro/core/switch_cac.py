"""Per-switch connection admission control (Section 4.3).

A switch keeps, for every pair of incoming link ``i`` and outgoing link
``j`` and every priority level ``p``, the aggregated worst-case arrival
stream of the connections routed ``i -> j`` at priority ``p``
(``Sia(i,j,p)`` in the paper).  From those it derives, on demand:

* ``Sif(i,j,p)   = filter(Sia(i,j,p))`` -- the aggregate as smoothed by
  the incoming link (a link of capacity 1 cannot deliver faster than 1);
* ``Sia(i,j)(p)`` -- the aggregate over all priorities *higher* than
  ``p`` for the pair, and its filtered form ``Sif(i,j)(p)``;
* ``Soa(j,p)     = sum_i Sif(i,j,p)`` -- the output-port arrival stream;
* ``Soa(j)(p)    = sum_i Sif(i,j)(p)`` and its filtered form
  ``Sof(j)(p)`` -- the higher-priority interference at the output port.

Admitting a connection with arrival stream ``S`` on ``(i, j, p)``
follows Steps 1-6 of the paper: rebuild the affected aggregates with
``S`` included, recompute the worst-case delay bound of priority ``p``
*and of every lower real-time priority* at output ``j`` (higher
priorities cannot be affected), and accept only if every recomputed
bound stays within the bound the switch advertises for that priority.

Priority convention: **smaller number = higher priority** (priority 0 is
served first), matching the RTnet configuration where the cyclic-traffic
queue is the single highest-priority queue.

The switch advertises a *fixed* bound ``D(j, p)`` per output link and
priority -- in RTnet the size of the priority-``p`` FIFO in cells --
independent of current load (Section 4.1), which is what lets the
distributed setup procedure accumulate CDV without iterating.

Incremental bookkeeping (see ``docs/performance.md``): every derived
aggregate above is cached and *patched* by one ``+``/``-`` delta per
admit/release instead of being re-aggregated from all legs, and the
:class:`~repro.core.delay_bound.ServiceCurve` of each ``(out_link,
priority)`` port is memoized with dirty-flag invalidation.  An
admission check on a loaded port therefore costs O(m) in the aggregate
breakpoint count rather than O(legs * m).  :meth:`verify_consistency`
cross-checks every cache against a from-scratch rebuild.

Transactional setup (see ``docs/robustness.md``): the two-phase network
walk first *reserves* a leg (:meth:`reserve` -- resources held, not yet
confirmed), then *commits* it (:meth:`commit`); :meth:`rollback` is the
idempotent unwind primitive that discards a reservation or releases a
commitment, and shrugs at connections it has never heard of.  Every
transition is appended to an
:class:`~repro.robustness.journal.AdmissionJournal` -- the switch's
stable storage -- so that :meth:`crash` (volatile caches lost) followed
by :meth:`recover` (op-for-op journal replay, in-flight reservations
discarded) restores a state bit-identical to the pre-crash committed
state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..exceptions import AdmissionError, SwitchRejection, SwitchUnavailable
from ..obs import clock as _oclock
from ..obs import metrics as _om
from ..obs import spans as _ospans
from ..robustness.journal import AdmissionJournal
from .bitstream import BitStream, Number, ZERO_STREAM, aggregate
from .delay_bound import (
    ServiceCurve,
    backlog_bound_with_higher,
    delay_bound,
)

__all__ = ["SwitchCAC", "Leg", "CheckResult", "PriorityBoundViolation"]

#: Derived-aggregate caches whose hit/miss behaviour is observable.
_CACHES = ("sif", "higher", "sif_higher", "higher_sum", "soa", "sof",
           "service")


class _SwitchMetrics:
    """Pre-bound metric handles of one switch.

    A labelled registry lookup per cache access would dominate the
    incremental fast path, so the handles are resolved once and cached
    on the switch; ``generation`` records which global registry they
    were bound under, and the owner re-binds when
    :data:`repro.obs.metrics._generation` moves (i.e. after every
    ``set_registry``).
    """

    __slots__ = ("generation", "enabled", "checks", "check_rejections",
                 "check_seconds", "admits", "reserves", "commits",
                 "rollbacks", "releases", "incremental", "recoveries",
                 "recoveries_verified", "replayed", "cache_hits",
                 "cache_misses")

    def __init__(self, registry, switch: str):
        self.generation = _om._generation
        self.enabled = registry.enabled
        self.checks = registry.counter("cac_checks_total", switch=switch)
        self.check_rejections = registry.counter(
            "cac_check_rejections_total", switch=switch)
        self.check_seconds = registry.histogram(
            "cac_check_seconds", switch=switch)
        self.admits = registry.counter("cac_admits_total", switch=switch)
        self.reserves = registry.counter("cac_reserves_total", switch=switch)
        self.commits = registry.counter("cac_commits_total", switch=switch)
        self.rollbacks = registry.counter("cac_rollbacks_total",
                                          switch=switch)
        self.releases = registry.counter("cac_releases_total", switch=switch)
        self.incremental = registry.counter(
            "cac_incremental_updates_total", switch=switch)
        self.recoveries = registry.counter("cac_recoveries_total",
                                           switch=switch)
        self.recoveries_verified = registry.counter(
            "cac_recoveries_verified_total", switch=switch)
        self.replayed = registry.gauge("cac_recovery_replayed_entries",
                                       switch=switch)
        self.cache_hits = {
            cache: registry.counter("cac_cache_hits_total", switch=switch,
                                    cache=cache)
            for cache in _CACHES
        }
        self.cache_misses = {
            cache: registry.counter("cac_cache_misses_total", switch=switch,
                                    cache=cache)
            for cache in _CACHES
        }


@dataclass(frozen=True)
class Leg:
    """One connection's traversal of one switch.

    Attributes
    ----------
    connection_id:
        Caller-chosen identifier, unique per switch.
    in_link / out_link:
        Names of the links the connection enters and leaves by.
    priority:
        Static priority level (0 = highest).
    stream:
        The connection's worst-case arrival stream *at this switch*
        (i.e. the source envelope of Algorithm 2.1 already passed
        through :meth:`BitStream.delayed` with the CDV accumulated over
        upstream switches).
    """

    connection_id: str
    in_link: str
    out_link: str
    priority: int
    stream: BitStream


@dataclass(frozen=True)
class PriorityBoundViolation:
    """One failed delay-bound check inside a :class:`CheckResult`."""

    priority: int
    computed_bound: Number
    advertised_bound: Number


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a CAC check at one switch.

    ``computed_bounds`` maps each checked priority at the output link to
    the worst-case delay bound the port would have *with the new
    connection admitted*; ``violations`` lists the priorities whose
    bound would exceed the advertised guarantee.  The connection passes
    iff ``violations`` is empty.
    """

    switch: str
    out_link: str
    computed_bounds: Mapping[int, Number]
    violations: Tuple[PriorityBoundViolation, ...]

    @property
    def admitted(self) -> bool:
        """True when every affected priority keeps its guarantee."""
        return not self.violations


class SwitchCAC:
    """CAC bookkeeping and admission checks for a single switch.

    Parameters
    ----------
    name:
        Identifier used in error messages and results.
    filter_per_input:
        When True (the default, and the paper's scheme) the per-input
        aggregates are filtered by the incoming link before being summed
        at the output port, which models the smoothing a real link
        performs and tightens the bounds.  Setting it False reproduces
        the coarser "no link filtering" analysis for the ablation bench.

    Examples
    --------
    >>> from repro.core.traffic import cbr
    >>> switch = SwitchCAC("sw0")
    >>> switch.configure_link("out", {0: 32})
    >>> stream = cbr(0.25).worst_case_stream()
    >>> switch.admit("vc1", "in-a", "out", 0, stream).admitted
    True
    >>> switch.computed_bound("out", 0) <= 32
    True
    """

    def __init__(self, name: str, filter_per_input: bool = True):
        self.name = name
        self.filter_per_input = filter_per_input
        #: advertised fixed bounds: out_link -> {priority -> D(j, p)}
        self._advertised: Dict[str, Dict[int, Number]] = {}
        #: admitted legs by connection id
        self._legs: Dict[str, Leg] = {}
        #: Sia(i, j, p) aggregates, maintained incrementally
        self._sia: Dict[Tuple[str, str, int], BitStream] = {}
        # ---- derived-aggregate caches, patched by one +/- delta per
        # ---- admit/release (see _apply) and rebuilt lazily on miss.
        #: Sif(i, j, p) = filter(Sia(i, j, p))
        self._sif_cache: Dict[Tuple[str, str, int], BitStream] = {}
        #: Sia(i, j)(p): per-pair aggregate of priorities higher than p
        self._higher_cache: Dict[Tuple[str, str, int], BitStream] = {}
        #: Sif(i, j)(p) = filter(Sia(i, j)(p))
        self._sif_higher_cache: Dict[Tuple[str, str, int], BitStream] = {}
        #: Soa(j, p) = sum_i Sif(i, j, p)
        self._soa_cache: Dict[Tuple[str, int], BitStream] = {}
        #: sum_i Sif(i, j)(p), before the final output filter
        self._higher_sum_cache: Dict[Tuple[str, int], BitStream] = {}
        #: Sof(j)(p) = filter(sum_i Sif(i, j)(p))
        self._sof_cache: Dict[Tuple[str, int], BitStream] = {}
        #: memoized ServiceCurve per (out_link, priority)
        self._service_cache: Dict[Tuple[str, int], ServiceCurve] = {}
        #: reserved-but-uncommitted legs of the two-phase walk; they
        #: hold resources (included in every aggregate) so a concurrent
        #: walk cannot double-book the port.
        self._pending: Dict[str, Leg] = {}
        #: CheckResult per pending reservation, replayed verbatim when a
        #: duplicate SETUP delivery re-reserves the same leg.
        self._pending_results: Dict[str, CheckResult] = {}
        #: stable storage: survives crash(), drives recover().
        self._journal = AdmissionJournal()
        self._crashed = False
        #: pre-bound metric handles (re-bound when the registry changes)
        self._obs = _SwitchMetrics(_om.get_registry(), name)

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _metrics(self) -> _SwitchMetrics:
        """The switch's metric handles, re-bound after a registry swap."""
        obs = self._obs
        if obs.generation != _om._generation:
            obs = self._obs = _SwitchMetrics(_om.get_registry(), self.name)
        return obs

    def _count_cache(self, hit: bool, cache: str) -> None:
        """Record one derived-aggregate cache hit or rebuild."""
        obs = self._metrics()
        if obs.enabled:
            (obs.cache_hits if hit else obs.cache_misses)[cache].inc()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        """Declare an output link and its advertised per-priority bounds.

        ``bounds`` maps each real-time priority level served on the link
        to the fixed queueing delay bound (in cell times) the switch
        guarantees -- in RTnet, the FIFO queue size in cells.
        """
        if not bounds:
            raise ValueError("an output link needs at least one priority")
        for priority, bound in bounds.items():
            if bound <= 0:
                raise ValueError(
                    f"advertised bound must be positive, got {bound} for "
                    f"priority {priority}"
                )
        self._advertised[out_link] = dict(bounds)

    def advertised_bound(self, out_link: str, priority: int) -> Number:
        """The fixed bound ``D(j, p)`` the switch guarantees."""
        try:
            return self._advertised[out_link][priority]
        except KeyError:
            raise AdmissionError(
                f"switch {self.name!r} does not serve priority {priority} "
                f"on link {out_link!r}"
            ) from None

    def out_links(self) -> Iterable[str]:
        """Names of the configured output links."""
        return self._advertised.keys()

    def priorities(self, out_link: str) -> List[int]:
        """Real-time priorities served on ``out_link``, highest first."""
        return sorted(self._advertised[out_link])

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def legs(self) -> Mapping[str, Leg]:
        """The currently admitted (committed) legs, keyed by connection id."""
        return dict(self._legs)

    @property
    def pending(self) -> Mapping[str, Leg]:
        """Reserved-but-uncommitted legs of in-flight two-phase walks."""
        return dict(self._pending)

    @property
    def journal(self) -> AdmissionJournal:
        """The append-only admit/release journal (stable storage)."""
        return self._journal

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`recover`."""
        return self._crashed

    def _ensure_up(self) -> None:
        """Refuse CAC work while the volatile state is gone."""
        if self._crashed:
            raise SwitchUnavailable(self.name)

    def sia(self, in_link: str, out_link: str, priority: int) -> BitStream:
        """``Sia(i, j, p)``: the per-pair per-priority aggregate."""
        return self._sia.get((in_link, out_link, priority), ZERO_STREAM)

    def _filter(self, stream: BitStream) -> BitStream:
        """Per-input link filtering (identity in the ablation mode)."""
        return stream.filtered() if self.filter_per_input else stream

    def _sif(self, in_link: str, out_link: str, priority: int) -> BitStream:
        """``Sif(i, j, p)``: the per-input aggregate after link filtering."""
        key = (in_link, out_link, priority)
        cached = self._sif_cache.get(key)
        if cached is None:
            self._count_cache(False, "sif")
            cached = self._filter(self.sia(in_link, out_link, priority))
            self._sif_cache[key] = cached
        else:
            self._count_cache(True, "sif")
        return cached

    def _higher_sia(self, in_link: str, out_link: str,
                    priority: int) -> BitStream:
        """``Sia(i, j)(p)``: aggregate of priorities higher than ``p``."""
        key = (in_link, out_link, priority)
        cached = self._higher_cache.get(key)
        if cached is not None:
            self._count_cache(True, "higher")
        else:
            self._count_cache(False, "higher")
            cached = aggregate([
                stream for (i, j, q), stream in self._sia.items()
                if i == in_link and j == out_link and q < priority
            ])
            self._higher_cache[key] = cached
        return cached

    def _sif_higher(self, in_link: str, out_link: str,
                    priority: int) -> BitStream:
        """``Sif(i, j)(p)``: the filtered higher-priority aggregate."""
        key = (in_link, out_link, priority)
        cached = self._sif_higher_cache.get(key)
        if cached is None:
            self._count_cache(False, "sif_higher")
            cached = self._filter(
                self._higher_sia(in_link, out_link, priority)
            )
            self._sif_higher_cache[key] = cached
        else:
            self._count_cache(True, "sif_higher")
        return cached

    def _higher_sum(self, out_link: str, priority: int) -> BitStream:
        """``sum_i Sif(i, j)(p)``, the pre-filter output interference."""
        key = (out_link, priority)
        cached = self._higher_sum_cache.get(key)
        if cached is not None:
            self._count_cache(True, "higher_sum")
        else:
            self._count_cache(False, "higher_sum")
            in_links = sorted({
                i for (i, j, q) in self._sia
                if j == out_link and q < priority
            })
            cached = aggregate([
                self._sif_higher(i, out_link, priority) for i in in_links
            ])
            self._higher_sum_cache[key] = cached
        return cached

    def soa(self, out_link: str, priority: int,
            replace: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Soa(j, p)``: output-port arrival stream of priority ``p``.

        ``replace`` optionally substitutes the (already filtered)
        per-input aggregate of one incoming link -- how the admission
        check builds ``S'oa`` without mutating state.  With the cached
        aggregate this is one subtract-and-add delta, O(m), instead of
        a re-aggregation over every incoming link.
        """
        key = (out_link, priority)
        base = self._soa_cache.get(key)
        if base is not None:
            self._count_cache(True, "soa")
        else:
            self._count_cache(False, "soa")
            in_links = sorted({
                i for (i, j, q) in self._sia
                if j == out_link and q == priority
            })
            base = aggregate([
                self._sif(i, out_link, priority) for i in in_links
            ])
            self._soa_cache[key] = base
        if replace is None:
            return base
        in_link, replacement = replace
        return base - self._sif(in_link, out_link, priority) + replacement

    def sof_higher(self, out_link: str, priority: int,
                   extra: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Sof(j)(p)``: filtered higher-priority output interference.

        ``extra`` optionally adds a candidate connection's stream to the
        higher-priority aggregate of one incoming link (used when
        checking the impact of a new higher-priority connection on an
        existing lower priority); like ``replace`` above, the candidate
        variant is an O(m) delta against the cached interference sum.
        """
        key = (out_link, priority)
        if extra is None:
            cached = self._sof_cache.get(key)
            if cached is None:
                self._count_cache(False, "sof")
                cached = self._higher_sum(out_link, priority).filtered()
                self._sof_cache[key] = cached
            else:
                self._count_cache(True, "sof")
            return cached
        in_link, stream = extra
        combined = self._higher_sia(in_link, out_link, priority) + stream
        total = (self._higher_sum(out_link, priority)
                 - self._sif_higher(in_link, out_link, priority)
                 + self._filter(combined))
        return total.filtered()

    def _service(self, out_link: str, priority: int) -> ServiceCurve:
        """Memoized ServiceCurve of ``Sof(j)(p)`` for the port."""
        key = (out_link, priority)
        cached = self._service_cache.get(key)
        if cached is None:
            self._count_cache(False, "service")
            cached = ServiceCurve(self.sof_higher(out_link, priority))
            self._service_cache[key] = cached
        else:
            self._count_cache(True, "service")
        return cached

    # ------------------------------------------------------------------
    # Incremental state transitions
    # ------------------------------------------------------------------

    def _apply(self, in_link: str, out_link: str, priority: int,
               stream: BitStream, add: bool) -> None:
        """Patch every cached aggregate for one admit/release delta.

        Same-priority state -- ``Sia``, ``Sif`` and the ``Soa`` sum --
        and the higher-priority interference of every lower priority
        are updated by a single ``+``/``-`` of the connection's stream
        (Algorithms 3.2/3.3); only the final output filter and the
        ServiceCurve of affected lower priorities are recomputed, and
        those lazily, on the next check that needs them.
        """
        obs = self._metrics()
        if obs.enabled:
            obs.incremental.inc()
        key = (in_link, out_link, priority)
        old_sia = self.sia(in_link, out_link, priority)

        # Snapshot the higher-priority aggregates that must be patched,
        # *before* mutating _sia (a lazy rebuild below would otherwise
        # read post-change state).
        affected = {
            p for (i, j, p) in list(self._higher_cache)
            if i == in_link and j == out_link and p > priority
        }
        affected.update(
            p for (i, j, p) in self._sif_higher_cache
            if i == in_link and j == out_link and p > priority
        )
        affected.update(
            p for caches in (self._higher_sum_cache, self._sof_cache,
                             self._service_cache)
            for (j, p) in caches
            if j == out_link and p > priority
        )
        old_higher: Dict[int, BitStream] = {}
        for p in affected:
            if (out_link, p) in self._higher_sum_cache:
                # Force the per-pair aggregate into existence so the sum
                # can be patched rather than dropped.
                old_higher[p] = self._higher_sia(in_link, out_link, p)
            else:
                old_higher[p] = self._higher_cache.get(
                    (in_link, out_link, p), None)

        # ---- Sia(i, j, p): the ground-truth incremental aggregate.
        new_sia = (old_sia + stream) if add else (old_sia - stream)
        if new_sia.is_zero:
            self._sia.pop(key, None)
        else:
            self._sia[key] = new_sia

        # ---- Same-priority derived state: one O(m) delta on Soa.
        old_sif = self._sif_cache.get(key)
        new_sif = self._filter(new_sia)
        self._sif_cache[key] = new_sif
        soa_key = (out_link, priority)
        cached_soa = self._soa_cache.get(soa_key)
        if cached_soa is not None:
            if old_sif is None:
                old_sif = self._filter(old_sia)
            self._soa_cache[soa_key] = cached_soa - old_sif + new_sif

        # ---- Lower priorities: patch their interference aggregates.
        for p in affected:
            hkey = (in_link, out_link, p)
            sum_key = (out_link, p)
            previous = old_higher[p]
            if previous is not None:
                patched = (previous + stream) if add else (previous - stream)
                self._higher_cache[hkey] = patched
                old_hf = self._sif_higher_cache.pop(hkey, None)
                cached_sum = self._higher_sum_cache.get(sum_key)
                if cached_sum is not None:
                    if old_hf is None:
                        old_hf = self._filter(previous)
                    new_hf = self._filter(patched)
                    self._sif_higher_cache[hkey] = new_hf
                    self._higher_sum_cache[sum_key] = (
                        cached_sum - old_hf + new_hf
                    )
            else:
                self._sif_higher_cache.pop(hkey, None)
                self._higher_sum_cache.pop(sum_key, None)
            # The final output filter and the port's ServiceCurve are
            # cheap O(m) rebuilds; mark them dirty.
            self._sof_cache.pop(sum_key, None)
            self._service_cache.pop(sum_key, None)

    # ------------------------------------------------------------------
    # Admission (Steps 1-6)
    # ------------------------------------------------------------------

    def check(self, in_link: str, out_link: str, priority: int,
              stream: BitStream) -> CheckResult:
        """Steps 2-6: would admitting this connection keep all bounds?

        Does not mutate state.  The caller provides the connection's
        worst-case arrival stream at this switch (Step 1 -- the source
        envelope delayed by the upstream CDV -- belongs to the caller
        because only the route knows the accumulated CDV).
        """
        obs = self._metrics()
        if not obs.enabled and not _ospans._tracer.enabled:
            return self._check_impl(in_link, out_link, priority, stream)
        with _ospans.span("admission.check", switch=self.name,
                          out_link=out_link, priority=priority):
            start = _oclock.get_clock().now()
            result = self._check_impl(in_link, out_link, priority, stream)
            if obs.enabled:
                obs.checks.inc()
                obs.check_seconds.observe(_oclock.get_clock().now() - start)
                if not result.admitted:
                    obs.check_rejections.inc()
        return result

    def _check_impl(self, in_link: str, out_link: str, priority: int,
                    stream: BitStream) -> CheckResult:
        self._ensure_up()
        if out_link not in self._advertised:
            raise AdmissionError(
                f"switch {self.name!r} has no output link {out_link!r}"
            )
        advertised = self._advertised[out_link]
        if priority not in advertised:
            raise AdmissionError(
                f"switch {self.name!r} does not serve priority {priority} "
                f"on link {out_link!r}"
            )

        computed: Dict[int, Number] = {}
        violations: List[PriorityBoundViolation] = []

        # Feasibility of the incoming link itself.  Filtering caps a
        # per-input aggregate at the link rate, which would otherwise
        # silently mask a physically impossible load (total sustained
        # rate beyond what the incoming link can ever deliver) as a
        # zero-delay stream.
        if self.in_link_utilization(in_link) + stream.long_run_rate > 1:
            violations.append(PriorityBoundViolation(
                priority, math.inf,
                self._advertised[out_link][priority],
            ))
            computed[priority] = math.inf
            return CheckResult(
                switch=self.name,
                out_link=out_link,
                computed_bounds=computed,
                violations=tuple(violations),
            )

        # Step 2-4: the new connection's own priority.
        new_sia = self.sia(in_link, out_link, priority) + stream
        new_sif = self._filter(new_sia)
        new_soa = self.soa(out_link, priority, replace=(in_link, new_sif))
        bound = delay_bound(new_soa, service=self._service(out_link, priority))
        computed[priority] = bound
        if bound > advertised[priority]:
            violations.append(PriorityBoundViolation(
                priority, bound, advertised[priority],
            ))

        # Steps 5-6: every lower real-time priority on the same port.
        for lower in sorted(advertised):
            if lower <= priority:
                continue
            soa_lower = self.soa(out_link, lower)
            if soa_lower.is_zero:
                continue  # no traffic to disturb
            interference = self.sof_higher(
                out_link, lower, extra=(in_link, stream),
            )
            bound = delay_bound(soa_lower, interference)
            computed[lower] = bound
            if bound > advertised[lower]:
                violations.append(PriorityBoundViolation(
                    lower, bound, advertised[lower],
                ))

        return CheckResult(
            switch=self.name,
            out_link=out_link,
            computed_bounds=computed,
            violations=tuple(violations),
        )

    def admit(self, connection_id: str, in_link: str, out_link: str,
              priority: int, stream: BitStream) -> CheckResult:
        """Check and, if every bound holds, commit the connection.

        Raises :class:`SwitchRejection` (leaving state untouched) when a
        bound would be violated, and :class:`AdmissionError` when the
        connection id is already present.
        """
        self._ensure_up()
        if connection_id in self._legs or connection_id in self._pending:
            raise AdmissionError(
                f"connection {connection_id!r} already admitted at switch "
                f"{self.name!r}"
            )
        result = self.check(in_link, out_link, priority, stream)
        if not result.admitted:
            worst = result.violations[0]
            raise SwitchRejection(
                self.name, out_link, worst.priority,
                worst.computed_bound, worst.advertised_bound,
            )
        leg = Leg(connection_id, in_link, out_link, priority, stream)
        self._legs[connection_id] = leg
        self._journal.append("admit", connection_id, leg)
        self._apply(in_link, out_link, priority, stream, add=True)
        self._metrics().admits.inc()
        return result

    def release(self, connection_id: str) -> Leg:
        """Tear down a committed connection, restoring the aggregates.

        Strict by design (Alg. 3.3 runs exactly once per admission): an
        unknown or already-released connection raises
        :class:`AdmissionError` *before* any aggregate is touched, so a
        double release can never subtract a stream twice and silently
        corrupt the incremental caches.  Protocol code that must unwind
        without knowing what the switch still holds uses the idempotent
        :meth:`rollback` instead.
        """
        self._ensure_up()
        try:
            leg = self._legs.pop(connection_id)
        except KeyError:
            if connection_id in self._pending:
                raise AdmissionError(
                    f"connection {connection_id!r} is only reserved (not "
                    f"committed) at switch {self.name!r}; rollback() is the "
                    f"way to discard a reservation"
                ) from None
            raise AdmissionError(
                f"connection {connection_id!r} is not admitted at switch "
                f"{self.name!r} (unknown or already released); aggregates "
                f"left untouched"
            ) from None
        self._journal.append("release", connection_id)
        self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                    add=False)
        self._metrics().releases.inc()
        return leg

    # ------------------------------------------------------------------
    # Two-phase setup (reserve -> commit) and crash recovery
    # ------------------------------------------------------------------

    def reserve(self, connection_id: str, in_link: str, out_link: str,
                priority: int, stream: BitStream) -> CheckResult:
        """Phase 1 of the transactional walk: check and hold resources.

        On success the leg is *pending*: it participates in every
        aggregate (so later checks see it) but is not yet a commitment.
        Re-delivery of the same SETUP (identical leg) is idempotent and
        replays the original :class:`CheckResult`; a conflicting
        reservation or an already-committed id raises
        :class:`AdmissionError`.
        """
        self._ensure_up()
        if connection_id in self._legs:
            raise AdmissionError(
                f"connection {connection_id!r} already admitted at switch "
                f"{self.name!r}"
            )
        held = self._pending.get(connection_id)
        if held is not None:
            if (held.in_link == in_link and held.out_link == out_link
                    and held.priority == priority and held.stream == stream):
                return self._pending_results[connection_id]
            raise AdmissionError(
                f"connection {connection_id!r} already holds a conflicting "
                f"reservation at switch {self.name!r}"
            )
        result = self.check(in_link, out_link, priority, stream)
        if not result.admitted:
            worst = result.violations[0]
            raise SwitchRejection(
                self.name, out_link, worst.priority,
                worst.computed_bound, worst.advertised_bound,
            )
        leg = Leg(connection_id, in_link, out_link, priority, stream)
        self._pending[connection_id] = leg
        self._pending_results[connection_id] = result
        self._journal.append("reserve", connection_id, leg)
        self._apply(in_link, out_link, priority, stream, add=True)
        self._metrics().reserves.inc()
        return result

    def commit(self, connection_id: str) -> Leg:
        """Phase 2: confirm a reservation.  Idempotent on re-delivery."""
        self._ensure_up()
        committed = self._legs.get(connection_id)
        if committed is not None:
            return committed
        try:
            leg = self._pending.pop(connection_id)
        except KeyError:
            raise AdmissionError(
                f"no reservation for connection {connection_id!r} to commit "
                f"at switch {self.name!r}"
            ) from None
        self._pending_results.pop(connection_id, None)
        self._legs[connection_id] = leg
        self._journal.append("commit", connection_id)
        self._metrics().commits.inc()
        return leg

    def rollback(self, connection_id: str) -> Optional[Leg]:
        """Idempotently unwind whatever this switch holds for a connection.

        Discards a pending reservation, releases a commitment, and
        returns ``None`` (doing nothing) for an unknown id -- exactly
        the semantics an ABORT/RELEASE message needs, since the sender
        cannot know how far the receiver got before a fault struck.
        """
        self._ensure_up()
        leg = self._pending.pop(connection_id, None)
        if leg is not None:
            self._pending_results.pop(connection_id, None)
            self._journal.append("abort", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
            self._metrics().rollbacks.inc()
            return leg
        leg = self._legs.pop(connection_id, None)
        if leg is not None:
            self._journal.append("release", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
            self._metrics().rollbacks.inc()
            return leg
        return None

    def crash(self) -> None:
        """Simulate a node failure: volatile state lost, journal kept.

        The advertised bounds survive too -- they are boot configuration,
        not run-time state.  Until :meth:`recover` runs, every CAC
        operation raises :class:`~repro.exceptions.SwitchUnavailable`.
        """
        self._crashed = True
        self._legs.clear()
        self._pending.clear()
        self._pending_results.clear()
        self._sia.clear()
        self._sif_cache.clear()
        self._higher_cache.clear()
        self._sif_higher_cache.clear()
        self._soa_cache.clear()
        self._higher_sum_cache.clear()
        self._sof_cache.clear()
        self._service_cache.clear()

    def recover(self) -> None:
        """Rebuild the caches by replaying the journal op-for-op.

        Replaying the exact admit/release sequence (rather than summing
        the surviving legs) reproduces the incremental arithmetic in its
        original order, so the recovered committed state is bit-identical
        to what the switch held before the crash.  Reservations that
        never committed are in-flight transactions the crash aborted:
        they are discarded (and journaled as aborts) at the end of the
        replay.  The result is validated with :meth:`verify_consistency`.
        """
        replayed = list(self._journal)
        self._crashed = False
        self._legs.clear()
        self._pending.clear()
        self._pending_results.clear()
        self._sia.clear()
        self._sif_cache.clear()
        self._higher_cache.clear()
        self._sif_higher_cache.clear()
        self._soa_cache.clear()
        self._higher_sum_cache.clear()
        self._sof_cache.clear()
        self._service_cache.clear()
        for entry in replayed:
            if entry.op in ("reserve", "admit"):
                leg = entry.leg
                target = (self._pending if entry.op == "reserve"
                          else self._legs)
                target[entry.connection_id] = leg
                self._apply(leg.in_link, leg.out_link, leg.priority,
                            leg.stream, add=True)
            elif entry.op == "commit":
                self._legs[entry.connection_id] = self._pending.pop(
                    entry.connection_id)
            elif entry.op == "abort":
                leg = self._pending.pop(entry.connection_id)
                self._apply(leg.in_link, leg.out_link, leg.priority,
                            leg.stream, add=False)
            elif entry.op == "release":
                leg = self._legs.pop(entry.connection_id)
                self._apply(leg.in_link, leg.out_link, leg.priority,
                            leg.stream, add=False)
        for connection_id in list(self._pending):
            leg = self._pending.pop(connection_id)
            self._journal.append("abort", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
        obs = self._metrics()
        obs.recoveries.inc()
        obs.replayed.set(len(replayed))
        if not self.verify_consistency():
            raise AdmissionError(
                f"journal recovery left switch {self.name!r} with "
                f"inconsistent caches"
            )
        obs.recoveries_verified.inc()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_bound(self, out_link: str, priority: int) -> Number:
        """Worst-case delay bound of the *currently admitted* traffic."""
        soa = self.soa(out_link, priority)
        if soa.is_zero:
            return 0
        return delay_bound(soa, service=self._service(out_link, priority))

    def buffer_requirement(self, out_link: str, priority: int) -> Number:
        """Worst-case FIFO occupancy (cells) of the admitted traffic.

        What Section 5 uses to size ring-node buffers: if this value
        stays at or below the configured queue length, worst-case
        traffic is never dropped.
        """
        soa = self.soa(out_link, priority)
        if soa.is_zero:
            return 0
        return backlog_bound_with_higher(
            soa, service=self._service(out_link, priority),
        )

    def in_link_utilization(self, in_link: str) -> Number:
        """Long-run admitted rate entering via one incoming link."""
        total: Number = 0
        for (i, _out, _priority), stream in self._sia.items():
            if i == in_link:
                total += stream.long_run_rate
        return total

    def utilization(self, out_link: str) -> Number:
        """Long-run admitted rate on an output link (1.0 == saturated)."""
        total: Number = 0
        for (in_link, out, priority), stream in self._sia.items():
            if out == out_link:
                total += stream.long_run_rate
        return total

    def recompute_aggregates(self) -> Dict[Tuple[str, str, int], BitStream]:
        """Rebuild every ``Sia`` from the per-leg streams.

        The incremental bookkeeping of :meth:`admit`/:meth:`release`
        must always agree with this ground truth; the test suite checks
        it after long admit/release sequences to catch drift.
        """
        fresh: Dict[Tuple[str, str, int], BitStream] = {}
        for legs in (self._legs, self._pending):
            for leg in legs.values():
                key = (leg.in_link, leg.out_link, leg.priority)
                base = fresh.get(key, ZERO_STREAM)
                fresh[key] = base + leg.stream
        return fresh

    def verify_consistency(self, tolerance: float = 1e-9) -> bool:
        """True when every incremental cache matches a from-scratch rebuild.

        Checks the ``Sia`` ground truth *and* each populated derived
        cache (higher-priority aggregates, output sums) against values
        recomputed from the per-leg streams alone.
        """
        fresh = self.recompute_aggregates()
        keys = set(fresh) | set(self._sia)
        for key in keys:
            current = self._sia.get(key, ZERO_STREAM)
            expected = fresh.get(key, ZERO_STREAM)
            if not current.approx_equal(expected, tolerance):
                return False
        for (i, j, p), cached in self._higher_cache.items():
            expected = aggregate([
                stream for (i2, j2, q), stream in fresh.items()
                if i2 == i and j2 == j and q < p
            ])
            if not cached.approx_equal(expected, tolerance):
                return False
        for (j, p), cached in self._soa_cache.items():
            expected = aggregate([
                self._filter(stream)
                for (_i2, j2, q), stream in sorted(fresh.items())
                if j2 == j and q == p
            ])
            if not cached.approx_equal(expected, tolerance):
                return False
        for (j, p), cached in self._higher_sum_cache.items():
            per_input: Dict[str, BitStream] = {}
            for (i2, j2, q), stream in sorted(fresh.items()):
                if j2 == j and q < p:
                    per_input[i2] = per_input.get(i2, ZERO_STREAM) + stream
            expected = aggregate([
                self._filter(per_input[i2]) for i2 in sorted(per_input)
            ])
            if not cached.approx_equal(expected, tolerance):
                return False
        return True

    def __repr__(self) -> str:
        status = ", crashed" if self._crashed else ""
        return (
            f"SwitchCAC(name={self.name!r}, legs={len(self._legs)}, "
            f"pending={len(self._pending)}, "
            f"links={sorted(self._advertised)}{status})"
        )
