"""Per-switch connection admission control (Section 4.3).

A switch keeps, for every pair of incoming link ``i`` and outgoing link
``j`` and every priority level ``p``, the aggregated worst-case arrival
stream of the connections routed ``i -> j`` at priority ``p``
(``Sia(i,j,p)`` in the paper).  From those it derives, on demand:

* ``Sif(i,j,p)   = filter(Sia(i,j,p))`` -- the aggregate as smoothed by
  the incoming link (a link of capacity 1 cannot deliver faster than 1);
* ``Sia(i,j)(p)`` -- the aggregate over all priorities *higher* than
  ``p`` for the pair, and its filtered form ``Sif(i,j)(p)``;
* ``Soa(j,p)     = sum_i Sif(i,j,p)`` -- the output-port arrival stream;
* ``Soa(j)(p)    = sum_i Sif(i,j)(p)`` and its filtered form
  ``Sof(j)(p)`` -- the higher-priority interference at the output port.

Admitting a connection with arrival stream ``S`` on ``(i, j, p)``
follows Steps 1-6 of the paper: rebuild the affected aggregates with
``S`` included, recompute the worst-case delay bound of priority ``p``
*and of every lower real-time priority* at output ``j`` (higher
priorities cannot be affected), and accept only if every recomputed
bound stays within the bound the switch advertises for that priority.

Priority convention: **smaller number = higher priority** (priority 0 is
served first), matching the RTnet configuration where the cyclic-traffic
queue is the single highest-priority queue.

The switch advertises a *fixed* bound ``D(j, p)`` per output link and
priority -- in RTnet the size of the priority-``p`` FIFO in cells --
independent of current load (Section 4.1), which is what lets the
distributed setup procedure accumulate CDV without iterating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..exceptions import AdmissionError, SwitchRejection
from .bitstream import BitStream, Number, ZERO_STREAM, aggregate
from .delay_bound import backlog_bound_with_higher, delay_bound

__all__ = ["SwitchCAC", "Leg", "CheckResult", "PriorityBoundViolation"]


@dataclass(frozen=True)
class Leg:
    """One connection's traversal of one switch.

    Attributes
    ----------
    connection_id:
        Caller-chosen identifier, unique per switch.
    in_link / out_link:
        Names of the links the connection enters and leaves by.
    priority:
        Static priority level (0 = highest).
    stream:
        The connection's worst-case arrival stream *at this switch*
        (i.e. the source envelope of Algorithm 2.1 already passed
        through :meth:`BitStream.delayed` with the CDV accumulated over
        upstream switches).
    """

    connection_id: str
    in_link: str
    out_link: str
    priority: int
    stream: BitStream


@dataclass(frozen=True)
class PriorityBoundViolation:
    """One failed delay-bound check inside a :class:`CheckResult`."""

    priority: int
    computed_bound: Number
    advertised_bound: Number


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a CAC check at one switch.

    ``computed_bounds`` maps each checked priority at the output link to
    the worst-case delay bound the port would have *with the new
    connection admitted*; ``violations`` lists the priorities whose
    bound would exceed the advertised guarantee.  The connection passes
    iff ``violations`` is empty.
    """

    switch: str
    out_link: str
    computed_bounds: Mapping[int, Number]
    violations: Tuple[PriorityBoundViolation, ...]

    @property
    def admitted(self) -> bool:
        """True when every affected priority keeps its guarantee."""
        return not self.violations


class SwitchCAC:
    """CAC bookkeeping and admission checks for a single switch.

    Parameters
    ----------
    name:
        Identifier used in error messages and results.
    filter_per_input:
        When True (the default, and the paper's scheme) the per-input
        aggregates are filtered by the incoming link before being summed
        at the output port, which models the smoothing a real link
        performs and tightens the bounds.  Setting it False reproduces
        the coarser "no link filtering" analysis for the ablation bench.

    Examples
    --------
    >>> from repro.core.traffic import cbr
    >>> switch = SwitchCAC("sw0")
    >>> switch.configure_link("out", {0: 32})
    >>> stream = cbr(0.25).worst_case_stream()
    >>> switch.admit("vc1", "in-a", "out", 0, stream).admitted
    True
    >>> switch.computed_bound("out", 0) <= 32
    True
    """

    def __init__(self, name: str, filter_per_input: bool = True):
        self.name = name
        self.filter_per_input = filter_per_input
        #: advertised fixed bounds: out_link -> {priority -> D(j, p)}
        self._advertised: Dict[str, Dict[int, Number]] = {}
        #: admitted legs by connection id
        self._legs: Dict[str, Leg] = {}
        #: Sia(i, j, p) aggregates, maintained incrementally
        self._sia: Dict[Tuple[str, str, int], BitStream] = {}
        #: memoized filtered streams, invalidated on any state change
        self._filter_cache: Dict[Tuple[str, str, int, str], BitStream] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        """Declare an output link and its advertised per-priority bounds.

        ``bounds`` maps each real-time priority level served on the link
        to the fixed queueing delay bound (in cell times) the switch
        guarantees -- in RTnet, the FIFO queue size in cells.
        """
        if not bounds:
            raise ValueError("an output link needs at least one priority")
        for priority, bound in bounds.items():
            if bound <= 0:
                raise ValueError(
                    f"advertised bound must be positive, got {bound} for "
                    f"priority {priority}"
                )
        self._advertised[out_link] = dict(bounds)

    def advertised_bound(self, out_link: str, priority: int) -> Number:
        """The fixed bound ``D(j, p)`` the switch guarantees."""
        try:
            return self._advertised[out_link][priority]
        except KeyError:
            raise AdmissionError(
                f"switch {self.name!r} does not serve priority {priority} "
                f"on link {out_link!r}"
            ) from None

    def out_links(self) -> Iterable[str]:
        """Names of the configured output links."""
        return self._advertised.keys()

    def priorities(self, out_link: str) -> List[int]:
        """Real-time priorities served on ``out_link``, highest first."""
        return sorted(self._advertised[out_link])

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def legs(self) -> Mapping[str, Leg]:
        """The currently admitted legs, keyed by connection id."""
        return dict(self._legs)

    def sia(self, in_link: str, out_link: str, priority: int) -> BitStream:
        """``Sia(i, j, p)``: the per-pair per-priority aggregate."""
        return self._sia.get((in_link, out_link, priority), ZERO_STREAM)

    def _in_links(self, out_link: str) -> List[str]:
        """Incoming links currently feeding ``out_link``."""
        return sorted({
            in_link for (in_link, out, _), stream in self._sia.items()
            if out == out_link and not stream.is_zero
        })

    def _filtered(self, in_link: str, out_link: str, priority: int,
                  kind: str, stream: BitStream) -> BitStream:
        """Memoized filter of a derived stream (cleared on state change)."""
        key = (in_link, out_link, priority, kind)
        cached = self._filter_cache.get(key)
        if cached is None:
            cached = stream.filtered() if self.filter_per_input else stream
            self._filter_cache[key] = cached
        return cached

    def _sif(self, in_link: str, out_link: str, priority: int) -> BitStream:
        """``Sif(i, j, p)``: the per-input aggregate after link filtering."""
        return self._filtered(
            in_link, out_link, priority, "same",
            self.sia(in_link, out_link, priority),
        )

    def _higher_sia(self, in_link: str, out_link: str,
                    priority: int) -> BitStream:
        """``Sia(i, j)(p)``: aggregate of priorities higher than ``p``."""
        parts = [
            stream for (i, j, q), stream in self._sia.items()
            if i == in_link and j == out_link and q < priority
        ]
        return aggregate(parts)

    def _sif_higher(self, in_link: str, out_link: str,
                    priority: int) -> BitStream:
        """``Sif(i, j)(p)``: the filtered higher-priority aggregate."""
        return self._filtered(
            in_link, out_link, priority, "higher",
            self._higher_sia(in_link, out_link, priority),
        )

    def soa(self, out_link: str, priority: int,
            replace: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Soa(j, p)``: output-port arrival stream of priority ``p``.

        ``replace`` optionally substitutes the (already filtered)
        per-input aggregate of one incoming link -- how the admission
        check builds ``S'oa`` without mutating state.
        """
        in_links = set(self._in_links(out_link))
        if replace is not None:
            in_links.add(replace[0])
        parts = []
        for in_link in sorted(in_links):
            if replace is not None and in_link == replace[0]:
                parts.append(replace[1])
            else:
                parts.append(self._sif(in_link, out_link, priority))
        return aggregate(parts)

    def sof_higher(self, out_link: str, priority: int,
                   extra: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Sof(j)(p)``: filtered higher-priority output interference.

        ``extra`` optionally adds a candidate connection's stream to the
        higher-priority aggregate of one incoming link (used when
        checking the impact of a new higher-priority connection on an
        existing lower priority).
        """
        in_links = set(self._in_links(out_link))
        if extra is not None:
            in_links.add(extra[0])
        parts = []
        for in_link in sorted(in_links):
            if extra is not None and in_link == extra[0]:
                combined = self._higher_sia(in_link, out_link, priority) + extra[1]
                parts.append(
                    combined.filtered() if self.filter_per_input else combined
                )
            else:
                parts.append(self._sif_higher(in_link, out_link, priority))
        return aggregate(parts).filtered()

    # ------------------------------------------------------------------
    # Admission (Steps 1-6)
    # ------------------------------------------------------------------

    def check(self, in_link: str, out_link: str, priority: int,
              stream: BitStream) -> CheckResult:
        """Steps 2-6: would admitting this connection keep all bounds?

        Does not mutate state.  The caller provides the connection's
        worst-case arrival stream at this switch (Step 1 -- the source
        envelope delayed by the upstream CDV -- belongs to the caller
        because only the route knows the accumulated CDV).
        """
        if out_link not in self._advertised:
            raise AdmissionError(
                f"switch {self.name!r} has no output link {out_link!r}"
            )
        advertised = self._advertised[out_link]
        if priority not in advertised:
            raise AdmissionError(
                f"switch {self.name!r} does not serve priority {priority} "
                f"on link {out_link!r}"
            )

        computed: Dict[int, Number] = {}
        violations: List[PriorityBoundViolation] = []

        # Feasibility of the incoming link itself.  Filtering caps a
        # per-input aggregate at the link rate, which would otherwise
        # silently mask a physically impossible load (total sustained
        # rate beyond what the incoming link can ever deliver) as a
        # zero-delay stream.
        if self.in_link_utilization(in_link) + stream.long_run_rate > 1:
            violations.append(PriorityBoundViolation(
                priority, math.inf,
                self._advertised[out_link][priority],
            ))
            computed[priority] = math.inf
            return CheckResult(
                switch=self.name,
                out_link=out_link,
                computed_bounds=computed,
                violations=tuple(violations),
            )

        # Step 2-4: the new connection's own priority.
        new_sia = self.sia(in_link, out_link, priority) + stream
        new_sif = new_sia.filtered() if self.filter_per_input else new_sia
        new_soa = self.soa(out_link, priority, replace=(in_link, new_sif))
        interference = self.sof_higher(out_link, priority)
        bound = delay_bound(new_soa, interference)
        computed[priority] = bound
        if bound > advertised[priority]:
            violations.append(PriorityBoundViolation(
                priority, bound, advertised[priority],
            ))

        # Steps 5-6: every lower real-time priority on the same port.
        for lower in sorted(advertised):
            if lower <= priority:
                continue
            soa_lower = self.soa(out_link, lower)
            if soa_lower.is_zero:
                continue  # no traffic to disturb
            interference = self.sof_higher(
                out_link, lower, extra=(in_link, stream),
            )
            bound = delay_bound(soa_lower, interference)
            computed[lower] = bound
            if bound > advertised[lower]:
                violations.append(PriorityBoundViolation(
                    lower, bound, advertised[lower],
                ))

        return CheckResult(
            switch=self.name,
            out_link=out_link,
            computed_bounds=computed,
            violations=tuple(violations),
        )

    def admit(self, connection_id: str, in_link: str, out_link: str,
              priority: int, stream: BitStream) -> CheckResult:
        """Check and, if every bound holds, commit the connection.

        Raises :class:`SwitchRejection` (leaving state untouched) when a
        bound would be violated, and :class:`AdmissionError` when the
        connection id is already present.
        """
        if connection_id in self._legs:
            raise AdmissionError(
                f"connection {connection_id!r} already admitted at switch "
                f"{self.name!r}"
            )
        result = self.check(in_link, out_link, priority, stream)
        if not result.admitted:
            worst = result.violations[0]
            raise SwitchRejection(
                self.name, out_link, worst.priority,
                worst.computed_bound, worst.advertised_bound,
            )
        self._legs[connection_id] = Leg(
            connection_id, in_link, out_link, priority, stream,
        )
        key = (in_link, out_link, priority)
        self._sia[key] = self.sia(in_link, out_link, priority) + stream
        self._filter_cache.clear()
        return result

    def release(self, connection_id: str) -> Leg:
        """Tear down a connection, restoring the aggregates (Alg. 3.3)."""
        try:
            leg = self._legs.pop(connection_id)
        except KeyError:
            raise AdmissionError(
                f"connection {connection_id!r} is not admitted at switch "
                f"{self.name!r}"
            ) from None
        key = (leg.in_link, leg.out_link, leg.priority)
        remaining = self._sia[key] - leg.stream
        if remaining.is_zero:
            del self._sia[key]
        else:
            self._sia[key] = remaining
        self._filter_cache.clear()
        return leg

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_bound(self, out_link: str, priority: int) -> Number:
        """Worst-case delay bound of the *currently admitted* traffic."""
        soa = self.soa(out_link, priority)
        if soa.is_zero:
            return 0
        return delay_bound(soa, self.sof_higher(out_link, priority))

    def buffer_requirement(self, out_link: str, priority: int) -> Number:
        """Worst-case FIFO occupancy (cells) of the admitted traffic.

        What Section 5 uses to size ring-node buffers: if this value
        stays at or below the configured queue length, worst-case
        traffic is never dropped.
        """
        soa = self.soa(out_link, priority)
        if soa.is_zero:
            return 0
        return backlog_bound_with_higher(
            soa, self.sof_higher(out_link, priority),
        )

    def in_link_utilization(self, in_link: str) -> Number:
        """Long-run admitted rate entering via one incoming link."""
        total: Number = 0
        for (i, _out, _priority), stream in self._sia.items():
            if i == in_link:
                total += stream.long_run_rate
        return total

    def utilization(self, out_link: str) -> Number:
        """Long-run admitted rate on an output link (1.0 == saturated)."""
        total: Number = 0
        for (in_link, out, priority), stream in self._sia.items():
            if out == out_link:
                total += stream.long_run_rate
        return total

    def recompute_aggregates(self) -> Dict[Tuple[str, str, int], BitStream]:
        """Rebuild every ``Sia`` from the per-leg streams.

        The incremental bookkeeping of :meth:`admit`/:meth:`release`
        must always agree with this ground truth; the test suite checks
        it after long admit/release sequences to catch drift.
        """
        fresh: Dict[Tuple[str, str, int], BitStream] = {}
        for leg in self._legs.values():
            key = (leg.in_link, leg.out_link, leg.priority)
            base = fresh.get(key, ZERO_STREAM)
            fresh[key] = base + leg.stream
        return fresh

    def verify_consistency(self, tolerance: float = 1e-9) -> bool:
        """True when incremental aggregates match a from-scratch rebuild."""
        fresh = self.recompute_aggregates()
        keys = set(fresh) | set(self._sia)
        for key in keys:
            current = self._sia.get(key, ZERO_STREAM)
            expected = fresh.get(key, ZERO_STREAM)
            if not current.approx_equal(expected, tolerance):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"SwitchCAC(name={self.name!r}, legs={len(self._legs)}, "
            f"links={sorted(self._advertised)})"
        )
