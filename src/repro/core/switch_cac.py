"""Per-switch connection admission control (Section 4.3).

A switch keeps, for every pair of incoming link ``i`` and outgoing link
``j`` and every priority level ``p``, the aggregated worst-case arrival
stream of the connections routed ``i -> j`` at priority ``p``
(``Sia(i,j,p)`` in the paper).  From those it derives, on demand:

* ``Sif(i,j,p)   = filter(Sia(i,j,p))`` -- the aggregate as smoothed by
  the incoming link (a link of capacity 1 cannot deliver faster than 1);
* ``Sia(i,j)(p)`` -- the aggregate over all priorities *higher* than
  ``p`` for the pair, and its filtered form ``Sif(i,j)(p)``;
* ``Soa(j,p)     = sum_i Sif(i,j,p)`` -- the output-port arrival stream;
* ``Soa(j)(p)    = sum_i Sif(i,j)(p)`` and its filtered form
  ``Sof(j)(p)`` -- the higher-priority interference at the output port.

Admitting a connection with arrival stream ``S`` on ``(i, j, p)``
follows Steps 1-6 of the paper: rebuild the affected aggregates with
``S`` included, recompute the worst-case delay bound of priority ``p``
*and of every lower real-time priority* at output ``j`` (higher
priorities cannot be affected), and accept only if every recomputed
bound stays within the bound the switch advertises for that priority.

Priority convention: **smaller number = higher priority** (priority 0 is
served first), matching the RTnet configuration where the cyclic-traffic
queue is the single highest-priority queue.

The switch advertises a *fixed* bound ``D(j, p)`` per output link and
priority -- in RTnet the size of the priority-``p`` FIFO in cells --
independent of current load (Section 4.1), which is what lets the
distributed setup procedure accumulate CDV without iterating.

Layering (see ``docs/architecture.md``): this class is the admission
*protocol* -- Steps 1-6, the two-phase transitions, journaling,
recovery, metrics.  The *state* lives one layer down: every
``(out_link, priority)`` port is a pure
:class:`~repro.core.port_state.PortState` holding its aggregates,
incremental-delta caches and memoized
:class:`~repro.core.delay_bound.ServiceCurve`, and all ports plus the
committed/pending leg maps live behind a pluggable
:class:`~repro.core.store.AdmissionStore` (in-memory by default,
sharded by output link as the concurrency stepping stone).  Checks,
journal replay and :meth:`verify_consistency` all go through the same
store interface, so the backend cannot change admission semantics.

Transactional setup (see ``docs/robustness.md``): the two-phase network
walk first *reserves* a leg (:meth:`reserve` -- resources held, not yet
confirmed), then *commits* it (:meth:`commit`); :meth:`rollback` is the
idempotent unwind primitive that discards a reservation or releases a
commitment, and shrugs at connections it has never heard of.  Every
transition is appended to an
:class:`~repro.robustness.journal.AdmissionJournal` -- the switch's
stable storage -- so that :meth:`crash` (volatile caches lost) followed
by :meth:`recover` (op-for-op journal replay, in-flight reservations
discarded) restores a state bit-identical to the pre-crash committed
state.

Batched admission (see ``docs/architecture.md``): :meth:`check_batch`
evaluates a whole group of candidate legs in one pass, sharing the
aggregate recomputation and higher-priority interference sums across
the group.  The group check is *conservative*: it computes each port's
bounds with **every** candidate admitted at once, so by monotonicity of
the delay bound in the arrival and interference streams, a passing
group check proves that admitting the candidates one by one -- in any
order, any subset -- would also pass.  :meth:`reserve_checked` then
applies a pre-approved leg without re-running the per-leg check.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import AdmissionError, SwitchRejection, SwitchUnavailable
from ..obs import clock as _oclock
from ..obs import metrics as _om
from ..obs import spans as _ospans
from ..robustness.journal import AdmissionJournal
from .bitstream import BitStream, Number, ZERO_STREAM, aggregate
from .delay_bound import (backlog_bound_with_higher, delay_bound,
                          latency_rate_bound)
from .port_state import PortState
from .store import AdmissionStore, InMemoryAdmissionStore

__all__ = ["SwitchCAC", "Leg", "CheckResult", "BatchCheckResult",
           "PriorityBoundViolation"]

#: Derived-aggregate caches whose hit/miss behaviour is observable.
_CACHES = ("sif", "higher", "sif_higher", "higher_sum", "soa", "sof",
           "service")

#: Screen outcomes counted under ``cac_screen_total``.
_SCREEN_OUTCOMES = ("accept", "reject", "exact")

#: Slack the headroom screen demands before trusting the ledger: the
#: sufficient-accept bound must clear the advertised bound by at least
#: this relative margin, and the necessary-reject rate ceiling must be
#: exceeded by at least this absolute margin.  The guard dominates any
#: float drift the +/- ledger patching can accumulate (the same 1e-9
#: scale :meth:`SwitchCAC.verify_consistency` tolerates), so drift can
#: only push a check toward the exact fallthrough -- never flip a
#: decision.
_SCREEN_GUARD = 1e-9


def _fast_path_default() -> bool:
    """The ``CAC_FAST_PATH`` environment switch (on unless disabled)."""
    flag = os.environ.get("CAC_FAST_PATH", "on").strip().lower()
    return flag not in ("0", "off", "false", "no")


class _SwitchMetrics:
    """Pre-bound metric handles of one switch.

    A labelled registry lookup per cache access would dominate the
    incremental fast path, so the handles are resolved once and cached
    on the switch; ``generation`` records which global registry they
    were bound under, and :meth:`SwitchCAC._rebind` re-binds when
    :data:`repro.obs.metrics._generation` moves (i.e. after every
    ``set_registry``).
    """

    __slots__ = ("generation", "enabled", "checks", "check_rejections",
                 "check_seconds", "admits", "reserves", "commits",
                 "rollbacks", "releases", "expiries", "incremental",
                 "recoveries", "recoveries_verified", "replayed",
                 "batch_checks", "batch_legs", "cache_hits", "cache_misses",
                 "screen")

    def __init__(self, registry, switch: str):
        self.generation = _om._generation
        self.enabled = registry.enabled
        self.checks = registry.counter("cac_checks_total", switch=switch)
        self.check_rejections = registry.counter(
            "cac_check_rejections_total", switch=switch)
        self.check_seconds = registry.histogram(
            "cac_check_seconds", switch=switch)
        self.admits = registry.counter("cac_admits_total", switch=switch)
        self.reserves = registry.counter("cac_reserves_total", switch=switch)
        self.commits = registry.counter("cac_commits_total", switch=switch)
        self.rollbacks = registry.counter("cac_rollbacks_total",
                                          switch=switch)
        self.releases = registry.counter("cac_releases_total", switch=switch)
        self.expiries = registry.counter("cac_reservation_expiries_total",
                                         switch=switch)
        self.incremental = registry.counter(
            "cac_incremental_updates_total", switch=switch)
        self.recoveries = registry.counter("cac_recoveries_total",
                                           switch=switch)
        self.recoveries_verified = registry.counter(
            "cac_recoveries_verified_total", switch=switch)
        self.replayed = registry.gauge("cac_recovery_replayed_entries",
                                       switch=switch)
        self.batch_checks = registry.counter("cac_batch_checks_total",
                                             switch=switch)
        self.batch_legs = registry.counter("cac_batch_legs_total",
                                           switch=switch)
        self.cache_hits = {
            cache: registry.counter("cac_cache_hits_total", switch=switch,
                                    cache=cache)
            for cache in _CACHES
        }
        self.cache_misses = {
            cache: registry.counter("cac_cache_misses_total", switch=switch,
                                    cache=cache)
            for cache in _CACHES
        }
        self.screen = {
            outcome: registry.counter("cac_screen_total", switch=switch,
                                      outcome=outcome)
            for outcome in _SCREEN_OUTCOMES
        }


@dataclass(frozen=True, slots=True)
class Leg:
    """One connection's traversal of one switch.

    Attributes
    ----------
    connection_id:
        Caller-chosen identifier, unique per switch.
    in_link / out_link:
        Names of the links the connection enters and leaves by.
    priority:
        Static priority level (0 = highest).
    stream:
        The connection's worst-case arrival stream *at this switch*
        (i.e. the source envelope of Algorithm 2.1 already passed
        through :meth:`BitStream.delayed` with the CDV accumulated over
        upstream switches).
    """

    connection_id: str
    in_link: str
    out_link: str
    priority: int
    stream: BitStream


@dataclass(frozen=True, slots=True)
class PriorityBoundViolation:
    """One failed delay-bound check inside a :class:`CheckResult`."""

    priority: int
    computed_bound: Number
    advertised_bound: Number


@dataclass(frozen=True, slots=True)
class CheckResult:
    """Outcome of a CAC check at one switch.

    ``computed_bounds`` maps each checked priority at the output link to
    the worst-case delay bound the port would have *with the new
    connection admitted*; ``violations`` lists the priorities whose
    bound would exceed the advertised guarantee.  The connection passes
    iff ``violations`` is empty.
    """

    switch: str
    out_link: str
    computed_bounds: Mapping[int, Number]
    violations: Tuple[PriorityBoundViolation, ...]

    @property
    def admitted(self) -> bool:
        """True when every affected priority keeps its guarantee."""
        return not self.violations


@dataclass(frozen=True, slots=True)
class BatchCheckResult:
    """Outcome of one :meth:`SwitchCAC.check_batch` group check.

    ``computed_bounds`` maps each checked ``(out_link, priority)`` port
    to its bound *with every candidate in the batch admitted at once*;
    ``violations`` maps out links to the bound failures there.  By
    monotonicity, ``admitted`` implies every candidate would also be
    admitted individually, in any order; a failing group check says
    nothing per-candidate -- callers fall back to sequential checks.
    ``results`` holds one conservative :class:`CheckResult` per
    candidate connection id (the group bounds of its output link).
    """

    switch: str
    computed_bounds: Mapping[Tuple[str, int], Number]
    violations: Mapping[str, Tuple[PriorityBoundViolation, ...]]
    results: Mapping[str, CheckResult]

    @property
    def admitted(self) -> bool:
        """True when every port keeps its guarantee with the whole batch."""
        return not any(self.violations.values())


class SwitchCAC:
    """CAC bookkeeping and admission checks for a single switch.

    Parameters
    ----------
    name:
        Identifier used in error messages and results.
    filter_per_input:
        When True (the default, and the paper's scheme) the per-input
        aggregates are filtered by the incoming link before being summed
        at the output port, which models the smoothing a real link
        performs and tightens the bounds.  Setting it False reproduces
        the coarser "no link filtering" analysis for the ablation bench.
    store:
        The :class:`~repro.core.store.AdmissionStore` backend holding
        every port's :class:`~repro.core.port_state.PortState` and the
        two-phase leg maps; defaults to a fresh
        :class:`~repro.core.store.InMemoryAdmissionStore`.
    fast_path:
        Whether :meth:`check`/:meth:`check_batch` consult the headroom
        ledger screen before falling through to the exact
        :func:`~repro.core.delay_bound.delay_bound` evaluation.  The
        screen is decision-identical to the exact path (both of its
        bounds are provably conservative; see ``docs/performance.md``).
        ``None`` (the default) follows the ``CAC_FAST_PATH``
        environment switch, which is on unless set to ``off``/``0``/
        ``false``/``no``.

    Examples
    --------
    >>> from repro.core.traffic import cbr
    >>> switch = SwitchCAC("sw0")
    >>> switch.configure_link("out", {0: 32})
    >>> stream = cbr(0.25).worst_case_stream()
    >>> switch.admit("vc1", "in-a", "out", 0, stream).admitted
    True
    >>> switch.computed_bound("out", 0) <= 32
    True
    """

    def __init__(self, name: str, filter_per_input: bool = True,
                 store: Optional[AdmissionStore] = None,
                 fast_path: Optional[bool] = None):
        self.name = name
        self.filter_per_input = filter_per_input
        #: screened admission fast path (CAC_FAST_PATH env default).
        self.fast_path = (_fast_path_default() if fast_path is None
                          else bool(fast_path))
        #: all CAC state -- ports, caches, committed/pending legs.
        self._store = store if store is not None else InMemoryAdmissionStore()
        self._store.attach(filter_per_input, self._count_cache)
        #: stable storage: survives crash(), drives recover().
        self._journal = AdmissionJournal()
        self._crashed = False
        #: bumped on every crash; lets the network tell "same switch"
        #: from "switch that died and came back" (see docs/robustness.md)
        self._epoch = 0
        #: pre-bound metric handles (re-bound when the registry changes)
        self._obs = _SwitchMetrics(_om.get_registry(), name)

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _rebind(self) -> _SwitchMetrics:
        """The switch's metric handles, re-bound after a registry swap.

        The single rebinding point shared by the check, reserve, commit,
        rollback and recovery paths -- call sites never compare
        generations themselves.
        """
        obs = self._obs
        if obs.generation != _om._generation:
            obs = self._obs = _SwitchMetrics(_om.get_registry(), self.name)
        return obs

    def _count_cache(self, hit: bool, cache: str) -> None:
        """Record one derived-aggregate cache hit or rebuild."""
        obs = self._rebind()
        if obs.enabled:
            (obs.cache_hits if hit else obs.cache_misses)[cache].inc()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def store(self) -> AdmissionStore:
        """The pluggable state backend."""
        return self._store

    def configure_link(self, out_link: str,
                       bounds: Mapping[int, Number]) -> None:
        """Declare an output link and its advertised per-priority bounds.

        ``bounds`` maps each real-time priority level served on the link
        to the fixed queueing delay bound (in cell times) the switch
        guarantees -- in RTnet, the FIFO queue size in cells.
        """
        if not bounds:
            raise ValueError("an output link needs at least one priority")
        for priority, bound in bounds.items():
            if bound <= 0:
                raise ValueError(
                    f"advertised bound must be positive, got {bound} for "
                    f"priority {priority}"
                )
        self._store.configure_link(out_link, bounds)

    def advertised_bound(self, out_link: str, priority: int) -> Number:
        """The fixed bound ``D(j, p)`` the switch guarantees."""
        if self._store.has_link(out_link) and \
                priority in self._store.priorities(out_link):
            return self._store.port(out_link, priority).advertised_bound
        raise AdmissionError(
            f"switch {self.name!r} does not serve priority {priority} "
            f"on link {out_link!r}"
        )

    def out_links(self) -> List[str]:
        """Names of the configured output links, sorted.

        Deterministic (sorted) so batch grouping, serialization and
        Prometheus exposition are reproducible across runs.
        """
        return self._store.out_links()

    def priorities(self, out_link: str) -> List[int]:
        """Real-time priorities served on ``out_link``, highest first."""
        return self._store.priorities(out_link)

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def legs(self) -> Mapping[str, Leg]:
        """The currently admitted (committed) legs, keyed by connection id."""
        return dict(self._store.committed())

    @property
    def pending(self) -> Mapping[str, Leg]:
        """Reserved-but-uncommitted legs of in-flight two-phase walks."""
        return dict(self._store.pending())

    @property
    def journal(self) -> AdmissionJournal:
        """The append-only admit/release journal (stable storage)."""
        return self._journal

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`recover`."""
        return self._crashed

    @property
    def epoch(self) -> int:
        """Crash epoch: 0 at boot, +1 per :meth:`crash`.

        The epoch survives recovery (it is *not* reset), so a peer that
        cached the epoch before a crash can detect -- via :meth:`ping`
        -- that the switch it is talking to lost its volatile state in
        between, and reconcile before trusting it again.
        """
        return self._epoch

    def ping(self) -> int:
        """Liveness probe: the current epoch, or :class:`SwitchUnavailable`.

        The circuit breaker's half-open probe: cheap (no CAC state is
        touched), refuses while crashed, and returns the epoch stamp so
        the caller can tell whether the switch died and recovered since
        it last looked.
        """
        self._ensure_up()
        return self._epoch

    def _ensure_up(self) -> None:
        """Refuse CAC work while the volatile state is gone."""
        if self._crashed:
            raise SwitchUnavailable(self.name)

    def port(self, out_link: str, priority: int) -> PortState:
        """The :class:`PortState` of one configured port."""
        return self._store.port(out_link, priority)

    def sia(self, in_link: str, out_link: str, priority: int) -> BitStream:
        """``Sia(i, j, p)``: the per-pair per-priority aggregate."""
        if not self._store.has_link(out_link) or \
                priority not in self._store.priorities(out_link):
            return ZERO_STREAM
        return self._store.port(out_link, priority).sia(in_link)

    def soa(self, out_link: str, priority: int,
            replace: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Soa(j, p)``: output-port arrival stream of priority ``p``.

        ``replace`` optionally substitutes the (already filtered)
        per-input aggregate of one incoming link -- how the admission
        check builds ``S'oa`` without mutating state.  With the cached
        aggregate this is one subtract-and-add delta, O(m), instead of
        a re-aggregation over every incoming link.
        """
        return self._store.port(out_link, priority).soa(replace=replace)

    def sof_higher(self, out_link: str, priority: int,
                   extra: Optional[Tuple[str, BitStream]] = None) -> BitStream:
        """``Sof(j)(p)``: filtered higher-priority output interference.

        ``extra`` optionally adds a candidate connection's stream to the
        higher-priority aggregate of one incoming link (used when
        checking the impact of a new higher-priority connection on an
        existing lower priority); like ``replace`` above, the candidate
        variant is an O(m) delta against the cached interference sum.
        """
        return self._store.port(out_link, priority).sof_higher(extra=extra)

    # ------------------------------------------------------------------
    # Incremental state transitions
    # ------------------------------------------------------------------

    def _apply(self, in_link: str, out_link: str, priority: int,
               stream: BitStream, add: bool,
               patch_caches: bool = True) -> None:
        """Patch every cached aggregate for one admit/release delta.

        Same-priority state -- ``Sia``, ``Sif`` and the ``Soa`` sum --
        and the higher-priority interference of every lower priority
        are updated by a single ``+``/``-`` of the connection's stream
        (Algorithms 3.2/3.3); only the final output filter and the
        ServiceCurve of affected lower priorities are recomputed, and
        those lazily, on the next check that needs them.  The actual
        patching lives in :meth:`PortState.apply_same` /
        :meth:`PortState.apply_higher`, orchestrated by
        :meth:`AdmissionStore.apply_delta`.

        ``patch_caches=False`` (the batched pipeline's bulk mode)
        invalidates the derived caches instead of patching them --
        right when a batch is about to touch the same port once per
        member, making a single lazy rebuild cheaper than the patches.
        The ground-truth ``Sia`` merge always runs per leg, in order.
        """
        obs = self._rebind()
        if obs.enabled:
            obs.incremental.inc()
        self._store.apply_delta(in_link, out_link, priority, stream, add,
                                patch_caches=patch_caches)

    # ------------------------------------------------------------------
    # Admission (Steps 1-6)
    # ------------------------------------------------------------------

    def check(self, in_link: str, out_link: str, priority: int,
              stream: BitStream) -> CheckResult:
        """Steps 2-6: would admitting this connection keep all bounds?

        Does not mutate state.  The caller provides the connection's
        worst-case arrival stream at this switch (Step 1 -- the source
        envelope delayed by the upstream CDV -- belongs to the caller
        because only the route knows the accumulated CDV).
        """
        obs = self._rebind()
        if not obs.enabled and not _ospans._tracer.enabled:
            return self._check_impl(in_link, out_link, priority, stream)
        with _ospans.span("admission.check", switch=self.name,
                          out_link=out_link, priority=priority):
            start = _oclock.get_clock().now()
            result = self._check_impl(in_link, out_link, priority, stream)
            if obs.enabled:
                obs.checks.inc()
                obs.check_seconds.observe(_oclock.get_clock().now() - start)
                if not result.admitted:
                    obs.check_rejections.inc()
        return result

    def _validate_port(self, out_link: str, priority: int) -> None:
        """Raise :class:`AdmissionError` for an unconfigured port."""
        if not self._store.has_link(out_link):
            raise AdmissionError(
                f"switch {self.name!r} has no output link {out_link!r}"
            )
        if priority not in self._store.priorities(out_link):
            raise AdmissionError(
                f"switch {self.name!r} does not serve priority {priority} "
                f"on link {out_link!r}"
            )

    def _check_impl(self, in_link: str, out_link: str, priority: int,
                    stream: BitStream) -> CheckResult:
        self._ensure_up()
        self._validate_port(out_link, priority)
        port = self._store.port(out_link, priority)

        computed: Dict[int, Number] = {}
        violations: List[PriorityBoundViolation] = []

        # Feasibility of the incoming link itself.  Filtering caps a
        # per-input aggregate at the link rate, which would otherwise
        # silently mask a physically impossible load (total sustained
        # rate beyond what the incoming link can ever deliver) as a
        # zero-delay stream.  The rate comes from the store's in-link
        # ledger -- the same sums on the exact and screened paths.
        if self._store.in_link_rate(in_link) + stream.long_run_rate > 1:
            violations.append(PriorityBoundViolation(
                priority, math.inf, port.advertised_bound,
            ))
            computed[priority] = math.inf
            return CheckResult(
                switch=self.name,
                out_link=out_link,
                computed_bounds=computed,
                violations=tuple(violations),
            )

        if self.fast_path:
            screened = self._screen(priority, stream, port)
            if screened is not None:
                self._note_screen("accept" if screened.admitted
                                  else "reject")
                return screened
            self._note_screen("exact")

        # Step 2-4: the new connection's own priority.
        new_sia = port.sia(in_link) + stream
        new_sif = port._filter(new_sia)
        new_soa = port.soa(replace=(in_link, new_sif))
        bound = delay_bound(new_soa, service=port.service())
        computed[priority] = bound
        if bound > port.advertised_bound:
            violations.append(PriorityBoundViolation(
                priority, bound, port.advertised_bound,
            ))

        # Steps 5-6: every lower real-time priority on the same port.
        for lower_port in self._store.ports_below(out_link, priority):
            soa_lower = lower_port.soa()
            if soa_lower.is_zero:
                continue  # no traffic to disturb
            interference = lower_port.sof_higher(extra=(in_link, stream))
            bound = delay_bound(soa_lower, interference)
            computed[lower_port.priority] = bound
            if bound > lower_port.advertised_bound:
                violations.append(PriorityBoundViolation(
                    lower_port.priority, bound, lower_port.advertised_bound,
                ))

        return CheckResult(
            switch=self.name,
            out_link=out_link,
            computed_bounds=computed,
            violations=tuple(violations),
        )

    def _note_screen(self, outcome: str) -> None:
        """Count one headroom-screen outcome (accept/reject/exact)."""
        obs = self._rebind()
        if obs.enabled:
            obs.screen[outcome].inc()

    def _screen(self, priority: int, stream: BitStream,
                port: PortState) -> Optional[CheckResult]:
        """Decide the check from the headroom ledger alone, if possible.

        Two one-sided tests over the per-port ``(sigma, rho)`` envelope
        sums (see ``docs/performance.md`` for the derivation and why
        each is conservative):

        * **necessary reject** -- if the ledger says the candidate's own
          priority would exceed the aggregate-rate ceiling by more than
          the guard, the exact path is guaranteed to compute an infinite
          bound for that priority, which is also the first violation it
          would report;
        * **sufficient accept** -- if the closed-form latency-rate bound
          (burst sums over leftover rate) clears the advertised bound of
          the candidate's port *and* of every non-idle lower port with
          margin, the exact bounds -- which the conservative ones
          dominate -- must pass too.

        Returns ``None`` when neither side is provable (the exact
        fallthrough).  Assumes the in-link feasibility check has
        already passed, which bounds every per-input rate sum by the
        link rate -- the fact that makes the rate ceiling exact.
        """
        rho = stream.long_run_rate
        sigma = stream.burst
        rate_same = port.ledger_rate + rho
        rate_higher = port.ledger_higher_rate

        # Necessary reject: the candidate's priority is unstable.  The
        # interference long-run rate is min(1, sum of higher rates)
        # after the output filter, hence the cap.
        capped_higher = rate_higher if rate_higher < 1 else 1
        if rate_same > _SCREEN_GUARD and \
                rate_same + capped_higher > 1 + _SCREEN_GUARD:
            return CheckResult(
                switch=self.name,
                out_link=port.out_link,
                computed_bounds={priority: math.inf},
                violations=(PriorityBoundViolation(
                    priority, math.inf, port.advertised_bound),),
            )

        # Sufficient accept, candidate port first.
        computed: Dict[int, Number] = {}
        bound = self._screen_port_bound(
            rate_same, port.ledger_burst + sigma,
            rate_higher, port.ledger_higher_burst,
            port.advertised_bound)
        if bound is None:
            return None
        computed[priority] = bound

        # ... then every lower port the exact path would re-check.
        for lower in self._store.ports_below(port.out_link, priority):
            if lower.is_idle():
                continue  # exact path skips it too (Soa is zero)
            bound = self._screen_port_bound(
                lower.ledger_rate, lower.ledger_burst,
                lower.ledger_higher_rate + rho,
                lower.ledger_higher_burst + sigma,
                lower.advertised_bound)
            if bound is None:
                return None
            computed[lower.priority] = bound

        return CheckResult(
            switch=self.name,
            out_link=port.out_link,
            computed_bounds=computed,
            violations=(),
        )

    @staticmethod
    def _screen_port_bound(rate: Number, burst: Number,
                           higher_rate: Number, higher_burst: Number,
                           advertised: Number) -> Optional[Number]:
        """One port's sufficient-accept test, or ``None`` if inconclusive.

        Requires a stability margin (so the latency-rate bound applies)
        and the conservative bound to clear the advertised bound by the
        guard; returns the conservative bound on success.
        """
        if rate + higher_rate > 1 - _SCREEN_GUARD:
            return None
        bound = latency_rate_bound(burst, higher_burst, higher_rate)
        if bound > advertised - _SCREEN_GUARD * (1 + advertised):
            return None
        return bound

    def check_batch(self, candidates: Sequence[Leg]) -> BatchCheckResult:
        """One shared admission check for a whole group of candidates.

        Computes, per affected ``(out_link, priority)`` port, the delay
        bound with **every** candidate leg admitted at once -- one
        aggregate substitution and one bound evaluation per port
        instead of one per candidate.  Because the delay bound is
        monotone in both the arrival stream and the higher-priority
        interference, a passing group check proves that admitting any
        subset of the candidates, in any order, passes too; callers use
        that to skip the per-leg checks entirely.  A failing group
        check is *not* a per-candidate verdict -- the batch pipeline
        falls back to sequential checks to find the exact admissible
        prefix set.

        Does not mutate state.  Raises :class:`AdmissionError` for a
        candidate on an unconfigured port, exactly like :meth:`check`.
        """
        self._ensure_up()
        obs = self._rebind()
        if obs.enabled:
            obs.batch_checks.inc()
            obs.batch_legs.inc(len(candidates))

        for leg in candidates:
            self._validate_port(leg.out_link, leg.priority)

        # Group the candidate streams: (out_link, priority) -> in_link
        # -> aggregated candidate stream (one k-way merge per group).
        collected: Dict[Tuple[str, int], Dict[str, List[BitStream]]] = {}
        in_link_rates: Dict[str, Number] = {}
        for leg in candidates:
            pair = collected.setdefault((leg.out_link, leg.priority), {})
            pair.setdefault(leg.in_link, []).append(leg.stream)
            in_link_rates[leg.in_link] = (
                in_link_rates.get(leg.in_link, 0)
                + leg.stream.long_run_rate)
        grouped: Dict[Tuple[str, int], Dict[str, BitStream]] = {
            key: {in_link: aggregate(streams)
                  for in_link, streams in per_input.items()}
            for key, per_input in collected.items()
        }

        computed: Dict[Tuple[str, int], Number] = {}
        violations: Dict[str, List[PriorityBoundViolation]] = {}

        # In-link feasibility of the whole batch: if the total admitted
        # + candidate rate fits every incoming link, every subset fits.
        infeasible_links = {
            in_link for in_link, rate in in_link_rates.items()
            if self._store.in_link_rate(in_link) + rate > 1
        }
        if infeasible_links:
            for (out_link, priority), per_input in sorted(grouped.items()):
                if not infeasible_links.intersection(per_input):
                    continue
                computed[(out_link, priority)] = math.inf
                violations.setdefault(out_link, []).append(
                    PriorityBoundViolation(
                        priority, math.inf,
                        self._store.port(out_link, priority).advertised_bound,
                    ))
            return self._batch_result(candidates, computed, violations)

        affected_links = sorted({out_link for out_link, _p in grouped})

        if self.fast_path:
            screened = self._screen_batch(affected_links, grouped)
            if screened is not None:
                self._note_screen("accept")
                return self._batch_result(candidates, screened, violations)
            self._note_screen("exact")

        for out_link in affected_links:
            # Candidate streams per priority on this link, for the
            # "higher-priority interference" side of the lower checks.
            extras_above: Dict[str, BitStream] = {}
            for port in self._store.ports_for(out_link):
                priority = port.priority
                candidates_here = grouped.get((out_link, priority), {})
                if not candidates_here and not extras_above:
                    continue  # port unaffected by the batch
                if candidates_here:
                    arrivals = port.soa_with({
                        in_link: port._filter(port.sia(in_link) + stream)
                        for in_link, stream in candidates_here.items()
                    })
                else:
                    arrivals = port.soa()
                if arrivals.is_zero:
                    pass  # no traffic to disturb
                else:
                    if extras_above:
                        interference = port.sof_higher_with(extras_above)
                        bound = delay_bound(arrivals, interference)
                    else:
                        bound = delay_bound(arrivals, service=port.service())
                    computed[(out_link, priority)] = bound
                    if bound > port.advertised_bound:
                        violations.setdefault(out_link, []).append(
                            PriorityBoundViolation(
                                priority, bound, port.advertised_bound,
                            ))
                # This priority's candidates interfere with everything
                # below it on the same link.
                for in_link, stream in candidates_here.items():
                    base = extras_above.get(in_link)
                    extras_above[in_link] = (stream if base is None
                                             else base + stream)

        return self._batch_result(candidates, computed, violations)

    def _batch_result(self, candidates: Sequence[Leg],
                      computed: Dict[Tuple[str, int], Number],
                      violations: Dict[str, List[PriorityBoundViolation]],
                      ) -> BatchCheckResult:
        """Assemble the per-candidate views of one group check."""
        frozen = {out_link: tuple(found)
                  for out_link, found in violations.items()}
        results: Dict[str, CheckResult] = {}
        for leg in candidates:
            results[leg.connection_id] = CheckResult(
                switch=self.name,
                out_link=leg.out_link,
                computed_bounds={
                    priority: bound
                    for (out_link, priority), bound in computed.items()
                    if out_link == leg.out_link
                },
                violations=frozen.get(leg.out_link, ()),
            )
        return BatchCheckResult(
            switch=self.name,
            computed_bounds=computed,
            violations=frozen,
            results=results,
        )

    def _screen_batch(self, affected_links: Sequence[str],
                      grouped: Mapping[Tuple[str, int],
                                       Mapping[str, BitStream]],
                      ) -> Optional[Dict[Tuple[str, int], Number]]:
        """Sufficient-accept screen for a whole candidate group.

        Mirrors the exact group loop -- ports walked highest priority
        first, each priority's candidate envelopes joining the
        interference of everything below it -- but over the headroom
        ledger's scalar sums.  Returns the conservative per-port bounds
        when *every* affected port passes with margin, ``None`` (exact
        fallthrough) otherwise.  There is no batch reject screen: a
        failing group says nothing per candidate, so the exact loop is
        the only authority on rejections.
        """
        computed: Dict[Tuple[str, int], Number] = {}
        for out_link in affected_links:
            extra_rate: Number = 0
            extra_burst: Number = 0
            for port in self._store.ports_for(out_link):
                candidates_here = grouped.get((out_link, port.priority))
                if not candidates_here:
                    if (extra_rate == 0 and extra_burst == 0) \
                            or port.is_idle():
                        continue  # unaffected, or no traffic to disturb
                cand_rate: Number = 0
                cand_burst: Number = 0
                if candidates_here:
                    for stream in candidates_here.values():
                        cand_rate += stream.long_run_rate
                        cand_burst += stream.burst
                bound = self._screen_port_bound(
                    port.ledger_rate + cand_rate,
                    port.ledger_burst + cand_burst,
                    port.ledger_higher_rate + extra_rate,
                    port.ledger_higher_burst + extra_burst,
                    port.advertised_bound)
                if bound is None:
                    return None
                computed[(out_link, port.priority)] = bound
                extra_rate += cand_rate
                extra_burst += cand_burst
        return computed

    def admit(self, connection_id: str, in_link: str, out_link: str,
              priority: int, stream: BitStream) -> CheckResult:
        """Check and, if every bound holds, commit the connection.

        Raises :class:`SwitchRejection` (leaving state untouched) when a
        bound would be violated, and :class:`AdmissionError` when the
        connection id is already present.
        """
        self._ensure_up()
        if self._store.get_committed(connection_id) is not None or \
                self._store.get_pending(connection_id) is not None:
            raise AdmissionError(
                f"connection {connection_id!r} already admitted at switch "
                f"{self.name!r}"
            )
        result = self.check(in_link, out_link, priority, stream)
        if not result.admitted:
            worst = result.violations[0]
            raise SwitchRejection(
                self.name, out_link, worst.priority,
                worst.computed_bound, worst.advertised_bound,
            )
        leg = Leg(connection_id, in_link, out_link, priority, stream)
        self._store.put_committed(connection_id, leg)
        self._journal.append("admit", connection_id, leg)
        self._apply(in_link, out_link, priority, stream, add=True)
        self._rebind().admits.inc()
        return result

    def release(self, connection_id: str) -> Leg:
        """Tear down a committed connection, restoring the aggregates.

        Strict by design (Alg. 3.3 runs exactly once per admission): an
        unknown or already-released connection raises
        :class:`AdmissionError` *before* any aggregate is touched, so a
        double release can never subtract a stream twice and silently
        corrupt the incremental caches.  Protocol code that must unwind
        without knowing what the switch still holds uses the idempotent
        :meth:`rollback` instead.
        """
        self._ensure_up()
        leg = self._store.pop_committed(connection_id)
        if leg is None:
            if self._store.get_pending(connection_id) is not None:
                raise AdmissionError(
                    f"connection {connection_id!r} is only reserved (not "
                    f"committed) at switch {self.name!r}; rollback() is the "
                    f"way to discard a reservation"
                )
            raise AdmissionError(
                f"connection {connection_id!r} is not admitted at switch "
                f"{self.name!r} (unknown or already released); aggregates "
                f"left untouched"
            )
        self._journal.append("release", connection_id)
        self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                    add=False)
        self._rebind().releases.inc()
        return leg

    # ------------------------------------------------------------------
    # Two-phase setup (reserve -> commit) and crash recovery
    # ------------------------------------------------------------------

    def reserve(self, connection_id: str, in_link: str, out_link: str,
                priority: int, stream: BitStream) -> CheckResult:
        """Phase 1 of the transactional walk: check and hold resources.

        On success the leg is *pending*: it participates in every
        aggregate (so later checks see it) but is not yet a commitment.
        Re-delivery of the same SETUP (identical leg) is idempotent and
        replays the original :class:`CheckResult`; a conflicting
        reservation or an already-committed id raises
        :class:`AdmissionError`.
        """
        self._ensure_up()
        self._check_reservable(
            connection_id, Leg(connection_id, in_link, out_link, priority,
                               stream))
        held = self._store.get_pending(connection_id)
        if held is not None:
            return self._store.pending_result(connection_id)
        result = self.check(in_link, out_link, priority, stream)
        if not result.admitted:
            worst = result.violations[0]
            raise SwitchRejection(
                self.name, out_link, worst.priority,
                worst.computed_bound, worst.advertised_bound,
            )
        leg = Leg(connection_id, in_link, out_link, priority, stream)
        self._hold(leg, result)
        return result

    def reserve_checked(self, leg: Leg, result: CheckResult) -> CheckResult:
        """Phase 1 with the admission check already done by a group check.

        The batched pipeline calls this after a passing
        :meth:`check_batch`: the conservative group bound proved the
        leg admissible, so the per-leg check is skipped and the
        (conservative) group :class:`CheckResult` is stored as the
        reservation's replayable result.  Identical journal, aggregate
        and metric transitions to :meth:`reserve`.
        """
        self._ensure_up()
        self._check_reservable(leg.connection_id, leg)
        if self._store.get_pending(leg.connection_id) is not None:
            return self._store.pending_result(leg.connection_id)
        self._hold(leg, result, patch_caches=False)
        return result

    def _check_reservable(self, connection_id: str, leg: Leg) -> None:
        """Shared reserve-precondition checks (committed/conflicting)."""
        if self._store.get_committed(connection_id) is not None:
            raise AdmissionError(
                f"connection {connection_id!r} already admitted at switch "
                f"{self.name!r}"
            )
        held = self._store.get_pending(connection_id)
        if held is not None and held != leg:
            raise AdmissionError(
                f"connection {connection_id!r} already holds a conflicting "
                f"reservation at switch {self.name!r}"
            )

    def _hold(self, leg: Leg, result: CheckResult,
              patch_caches: bool = True) -> None:
        """Record a fresh reservation: store, journal, aggregates."""
        self._store.put_pending(leg.connection_id, leg, result)
        self._journal.append("reserve", leg.connection_id, leg)
        self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                    add=True, patch_caches=patch_caches)
        self._rebind().reserves.inc()

    def commit(self, connection_id: str) -> Leg:
        """Phase 2: confirm a reservation.  Idempotent on re-delivery."""
        self._ensure_up()
        committed = self._store.get_committed(connection_id)
        if committed is not None:
            return committed
        leg = self._store.pop_pending(connection_id)
        if leg is None:
            raise AdmissionError(
                f"no reservation for connection {connection_id!r} to commit "
                f"at switch {self.name!r}"
            )
        self._store.put_committed(connection_id, leg)
        self._journal.append("commit", connection_id)
        self._rebind().commits.inc()
        return leg

    def rollback(self, connection_id: str) -> Optional[Leg]:
        """Idempotently unwind whatever this switch holds for a connection.

        Discards a pending reservation, releases a commitment, and
        returns ``None`` (doing nothing) for an unknown id -- exactly
        the semantics an ABORT/RELEASE message needs, since the sender
        cannot know how far the receiver got before a fault struck.
        """
        self._ensure_up()
        leg = self._store.pop_pending(connection_id)
        if leg is not None:
            self._journal.append("abort", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
            self._rebind().rollbacks.inc()
            return leg
        leg = self._store.pop_committed(connection_id)
        if leg is not None:
            self._journal.append("release", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
            self._rebind().rollbacks.inc()
            return leg
        return None

    def expire(self, connection_id: str) -> Optional[Leg]:
        """Discard a *pending* reservation whose hold timer ran out.

        The switch-side half of the reservation TTL: a reservation whose
        holder fell silent (the setup walk stalled, or its ABORT never
        arrived) is discarded on the switch's own initiative once the
        TTL elapses.  Only pending state is touched -- a reservation the
        COMMIT wave already confirmed is a commitment and must survive
        -- and an unknown id is a no-op, so a timer racing the walk's
        own ABORT (or its commit) is always safe.  Journaled as an
        ``abort``, exactly like an explicit unwind.
        """
        self._ensure_up()
        leg = self._store.pop_pending(connection_id)
        if leg is None:
            return None
        self._journal.append("abort", connection_id)
        self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                    add=False)
        self._rebind().expiries.inc()
        return leg

    def crash(self) -> None:
        """Simulate a node failure: volatile state lost, journal kept.

        The advertised bounds survive too -- they are boot configuration,
        not run-time state.  Until :meth:`recover` runs, every CAC
        operation raises :class:`~repro.exceptions.SwitchUnavailable`.
        """
        self._crashed = True
        self._epoch += 1
        self._store.clear_volatile()

    def recover(self) -> None:
        """Rebuild the caches by replaying the journal op-for-op.

        Replaying the exact admit/release sequence (rather than summing
        the surviving legs) reproduces the incremental arithmetic in its
        original order, so the recovered committed state is bit-identical
        to what the switch held before the crash.  Reservations that
        never committed are in-flight transactions the crash aborted:
        they are discarded (and journaled as aborts) at the end of the
        replay.  Every replayed transition goes through the same
        :class:`AdmissionStore` as live admission, and the result is
        validated with :meth:`verify_consistency`.
        """
        self._crashed = False
        self._store.clear_volatile()
        replayed = self._journal.replay_into(self._store, apply=self._apply)
        for connection_id in list(self._store.pending()):
            leg = self._store.pop_pending(connection_id)
            self._journal.append("abort", connection_id)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=False)
        obs = self._rebind()
        obs.recoveries.inc()
        obs.replayed.set(replayed)
        if not self.verify_consistency():
            raise AdmissionError(
                f"journal recovery left switch {self.name!r} with "
                f"inconsistent caches"
            )
        obs.recoveries_verified.inc()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, List[Leg]]:
        """The state-determining legs (committed and pending), in order.

        A store-level snapshot: legs fully determine every aggregate.
        See :func:`repro.network.serialization.switch_state_to_dict`
        for the JSON-safe form.
        """
        return self._store.snapshot()

    def restore_state(self, snapshot: Mapping[str, Sequence[Leg]]) -> None:
        """Boot-time restore of a :meth:`snapshot_state` leg snapshot.

        Requires an empty (freshly configured) switch.  Every restored
        leg is journaled -- committed legs as one-shot ``admit``
        entries, pending legs as ``reserve`` -- so a later
        :meth:`crash`/:meth:`recover` cycle still replays to exactly
        this state.
        """
        self._ensure_up()
        if self._store.committed() or self._store.pending():
            raise AdmissionError(
                f"switch {self.name!r} is not empty; restore_state is a "
                f"boot-time operation"
            )
        for leg in snapshot.get("committed", ()):
            self._store.put_committed(leg.connection_id, leg)
            self._journal.append("admit", leg.connection_id, leg)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=True)
        for leg in snapshot.get("pending", ()):
            self._store.put_pending(leg.connection_id, leg)
            self._journal.append("reserve", leg.connection_id, leg)
            self._apply(leg.in_link, leg.out_link, leg.priority, leg.stream,
                        add=True)
        if not self.verify_consistency():
            raise AdmissionError(
                f"restore left switch {self.name!r} with inconsistent caches"
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def computed_bound(self, out_link: str, priority: int) -> Number:
        """Worst-case delay bound of the *currently admitted* traffic."""
        port = self._store.port(out_link, priority)
        soa = port.soa()
        if soa.is_zero:
            return 0
        return delay_bound(soa, service=port.service())

    def buffer_requirement(self, out_link: str, priority: int) -> Number:
        """Worst-case FIFO occupancy (cells) of the admitted traffic.

        What Section 5 uses to size ring-node buffers: if this value
        stays at or below the configured queue length, worst-case
        traffic is never dropped.
        """
        port = self._store.port(out_link, priority)
        soa = port.soa()
        if soa.is_zero:
            return 0
        return backlog_bound_with_higher(soa, service=port.service())

    def in_link_utilization(self, in_link: str) -> Number:
        """Long-run admitted rate entering via one incoming link.

        Served from the store's in-link ledger -- a scalar running sum
        patched by the same deltas as the aggregates, and the value the
        admission check's feasibility test reads on both the exact and
        the screened path.
        """
        return self._store.in_link_rate(in_link)

    def utilization(self, out_link: str) -> Number:
        """Long-run admitted rate on an output link (1.0 == saturated)."""
        total: Number = 0
        for port in self._store.ports_for(out_link):
            total += port.long_run_rate()
        return total

    def recompute_aggregates(self) -> Dict[Tuple[str, str, int], BitStream]:
        """Rebuild every ``Sia`` from the per-leg streams.

        The incremental bookkeeping of :meth:`admit`/:meth:`release`
        must always agree with this ground truth; the test suite checks
        it after long admit/release sequences to catch drift.
        """
        fresh: Dict[Tuple[str, str, int], BitStream] = {}
        for legs in (self._store.committed(), self._store.pending()):
            for leg in legs.values():
                key = (leg.in_link, leg.out_link, leg.priority)
                base = fresh.get(key, ZERO_STREAM)
                fresh[key] = base + leg.stream
        return fresh

    def verify_consistency(self, tolerance: float = 1e-9) -> bool:
        """True when every incremental cache matches a from-scratch rebuild.

        Checks the ``Sia`` ground truth *and* each populated derived
        cache (higher-priority aggregates, output sums) against values
        recomputed from the per-leg streams alone.  Every port is read
        through the :class:`AdmissionStore`, so a backend that corrupts
        or loses state cannot pass.
        """
        fresh = self.recompute_aggregates()
        covered = {
            (port.out_link, port.priority) for port in self._store.ports()
        }
        for (in_link, out_link, priority) in fresh:
            if (out_link, priority) not in covered:
                return False  # a leg on a port the store no longer has
        in_rates: Dict[str, Number] = {}
        for (in_link, _out, _p), stream in fresh.items():
            in_rates[in_link] = in_rates.get(in_link, 0) \
                + stream.long_run_rate
        for in_link, expected in in_rates.items():
            if abs(self._store.in_link_rate(in_link) - expected) > tolerance:
                return False
        return all(port.verify_against(fresh, tolerance)
                   for port in self._store.ports())

    def __repr__(self) -> str:
        status = ", crashed" if self._crashed else ""
        return (
            f"SwitchCAC(name={self.name!r}, "
            f"legs={len(self._store.committed())}, "
            f"pending={len(self._store.pending())}, "
            f"links={self.out_links()}{status})"
        )
