"""NumPy fast-path kernels for the bit-stream algebra.

The pure-Python implementations in :mod:`repro.core.bitstream` and
:mod:`repro.core.delay_bound` are linear (or worse) scans over segment
lists, generic over :class:`float` and :class:`fractions.Fraction`.
That generality is what the exact property tests rely on, but it makes
every hot admission-check primitive O(m)..O(m^2) in the number of
breakpoints -- and the paper itself flags admission-check latency as
the limit on how fast switched real-time VCs can be established
(Section 4.3, discussion 2).

This module provides the float fast path:

* :class:`StreamKernel` -- a stream as ``(rates, times, cumbits)``
  float64 arrays with the cumulative-arrival prefix sums computed once,
  so ``A(t)``, ``A^{-1}(b)`` and ``r(t)`` become
  :func:`numpy.searchsorted` lookups (scalar *and* vectorized);
* :func:`aggregate_fast` -- k-way multiplexing as
  concatenate-sort-prefix-sum over per-stream rate deltas;
* :func:`merge_fast` -- pairwise multiplex/demultiplex as a vectorized
  point-wise combination on the breakpoint union (bit-for-bit the same
  arithmetic as the scalar ``_merge``);
* :func:`delay_bound_fast` / :func:`backlog_bound_fast` -- Algorithm
  4.1 evaluated on *all* candidate instants at once instead of one
  O(m) inverse scan per candidate.

Selection policy (see ``docs/performance.md``): a kernel is built for a
stream exactly when NumPy is importable, no rate or time is a
:class:`~fractions.Fraction`, and at least one value is a float.
Exact (int/Fraction) streams never get a kernel, so the existing exact
code paths are untouched and the Fraction-based property tests keep
their bit-exact guarantees.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..exceptions import BitStreamError

try:  # NumPy is an optional (dev/perf) dependency; degrade gracefully.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

__all__ = [
    "StreamKernel",
    "kernels_enabled",
    "build_kernel",
    "aggregate_fast",
    "merge_fast",
    "delay_bound_fast",
    "backlog_bound_fast",
]

#: Mirror of :data:`repro.core.bitstream._RATE_TOLERANCE`; duplicated to
#: avoid an import cycle (bitstream imports this module lazily).
_RATE_TOLERANCE = 1e-9


def kernels_enabled() -> bool:
    """True when the NumPy fast path is available in this environment."""
    return np is not None


class StreamKernel:
    """Array representation of one canonical bit stream.

    Attributes
    ----------
    rates / times:
        The canonical segments as float64 arrays.
    cumbits:
        ``A(t(k))`` -- cumulative bits at each breakpoint, prefix-summed
        once at construction so every later lookup is O(log m).
    """

    __slots__ = ("rates", "times", "cumbits", "_service", "_deltas")

    def __init__(self, rates, times, cumbits=None):
        self.rates = np.asarray(rates, dtype=np.float64)
        self.times = np.asarray(times, dtype=np.float64)
        if cumbits is None:
            cumbits = np.empty_like(self.times)
            cumbits[0] = 0.0
            if len(self.times) > 1:
                np.cumsum(self.rates[:-1] * np.diff(self.times),
                          out=cumbits[1:])
        self.cumbits = cumbits
        #: lazily-built ``(values, slopes)`` of the leftover-service curve
        #: ``C(t) = integral of (1 - r)`` when this stream acts as the
        #: higher-priority interference of Algorithm 4.1.
        self._service = None
        #: lazily-built rate deltas for :func:`aggregate_fast`.
        self._deltas = None

    @property
    def deltas(self):
        """Rate steps at each breakpoint (``rates[k] - rates[k-1]``).

        Cached because :func:`aggregate_fast` re-reads the deltas of the
        same component streams on every re-aggregation; per-call
        ``np.diff`` on dozens of tiny arrays would dominate its cost.
        """
        if self._deltas is None:
            self._deltas = np.diff(self.rates, prepend=0.0)
        return self._deltas

    # ------------------------------------------------------------------
    # Point lookups (scalar or vectorized -- searchsorted handles both)
    # ------------------------------------------------------------------

    def segment_index(self, t):
        """Index of the segment containing ``t`` (scalar or array)."""
        return self.times.searchsorted(t, side="right") - 1

    def bits(self, t):
        """Cumulative arrivals ``A(t)``; accepts a scalar or an array."""
        index = self.times.searchsorted(t, side="right") - 1
        return (self.cumbits[index]
                + self.rates[index] * (t - self.times[index]))

    def time_of_bits(self, amount: float) -> float:
        """Scalar earliest ``t`` with ``A(t) >= amount`` (inf if never)."""
        if amount <= 0:
            return 0.0
        position = int(np.searchsorted(self.cumbits, amount, side="left"))
        if position >= len(self.cumbits):
            rate = float(self.rates[-1])
            if rate == 0.0:
                return math.inf
            return float(self.times[-1]
                         + (amount - self.cumbits[-1]) / rate)
        segment = position - 1
        # rates[segment] > 0 because cumbits strictly increased across it.
        return float(self.times[segment]
                     + (amount - self.cumbits[segment]) / self.rates[segment])

    def time_of_bits_array(self, amounts):
        """Vectorized :meth:`time_of_bits` over an array of amounts."""
        amounts = np.asarray(amounts, dtype=np.float64)
        position = self.cumbits.searchsorted(amounts, side="left")
        segment = np.maximum(position - 1, 0)
        rates = self.rates[segment]
        unreachable = rates <= 0.0
        out = (self.times[segment]
               + (amounts - self.cumbits[segment])
               / np.where(unreachable, 1.0, rates))
        out[unreachable] = math.inf
        out[amounts <= 0.0] = 0.0
        return out

    # ------------------------------------------------------------------
    # The leftover-service view (Algorithm 4.1 interference)
    # ------------------------------------------------------------------

    @property
    def service(self):
        """``(values, slopes)`` of ``C(t) = integral of (1 - r)``.

        ``values[j] = C(t(j))`` at this stream's breakpoints and
        ``slopes[j] = 1 - r(j)``; cached because one interference
        aggregate serves many delay-bound evaluations.
        """
        if self._service is None:
            slopes = 1.0 - self.rates
            values = np.empty_like(self.times)
            values[0] = 0.0
            if len(self.times) > 1:
                np.cumsum(slopes[:-1] * np.diff(self.times), out=values[1:])
            self._service = (values, slopes)
        return self._service

    def service_values(self, t):
        """Vectorized ``C(t)`` over an array of instants."""
        values, slopes = self.service
        index = self.times.searchsorted(t, side="right") - 1
        return values[index] + slopes[index] * (t - self.times[index])


def build_kernel(rates: Sequence, times: Sequence) -> Optional[StreamKernel]:
    """A kernel for the stream, or ``None`` when exactness must rule.

    The float fast path engages only for streams that actually carry
    floats: any :class:`~fractions.Fraction` disables it (exact
    arithmetic requested), and all-int streams (e.g. the zero stream or
    a saturated ``constant(1)``) stay on the exact path so integer
    results keep their types.
    """
    if np is None:
        return None
    has_float = False
    for value in rates:
        if isinstance(value, Fraction):
            return None
        if isinstance(value, float):
            has_float = True
    for value in times:
        if isinstance(value, Fraction):
            return None
        if isinstance(value, float):
            has_float = True
    if not has_float:
        return None
    return StreamKernel(rates, times)


# ----------------------------------------------------------------------
# Canonicalization on arrays (mirrors BitStream.__init__ semantics)
# ----------------------------------------------------------------------


def _canonical_arrays(rates, times):
    """Clamp/validate/merge exactly like ``BitStream.__init__`` does.

    Expects strictly increasing ``times``; enforces the non-negative and
    non-increasing rate invariants with the shared tolerance and merges
    equal-rate neighbours.
    """
    low = rates.min(initial=0.0)
    if low < -_RATE_TOLERANCE:
        index = int(np.argmin(rates))
        raise BitStreamError(
            f"negative rate {rates[index]} at t={times[index]}"
        )
    if low < 0.0:
        rates = np.clip(rates, 0.0, None)
    if len(rates) > 1:
        steps = np.diff(rates)
        if np.any(steps > _RATE_TOLERANCE):
            index = int(np.argmax(steps))
            raise BitStreamError(
                f"rate function must be non-increasing, got step "
                f"{rates[index]} -> {rates[index + 1]}"
            )
        keep = np.empty(len(rates), dtype=bool)
        keep[0] = True
        np.not_equal(rates[1:], rates[:-1], out=keep[1:])
        if not keep.all():
            rates = rates[keep]
            times = times[keep]
    return rates, times


def _finish_stream(rates, times):
    """Build a canonical ``BitStream`` (kernel attached) from arrays."""
    from .bitstream import BitStream
    rates, times = _canonical_arrays(rates, times)
    kernel = StreamKernel(rates, times)
    return BitStream._from_canonical(rates.tolist(), times.tolist(), kernel)


# ----------------------------------------------------------------------
# Multiplexing kernels
# ----------------------------------------------------------------------


def aggregate_fast(kernels: List[StreamKernel]):
    """K-way Algorithm 3.2 as concatenate-sort-prefix-sum.

    Each stream contributes its rate *deltas* at its breakpoints; after
    a single stable sort of the union, the aggregate's step function is
    one cumulative sum.  O(B log B) in the total breakpoint count,
    against the O(B * k) cursor walk of the scalar path.
    """
    times = np.concatenate([kernel.times for kernel in kernels])
    deltas = np.concatenate([kernel.deltas for kernel in kernels])
    order = np.argsort(times, kind="stable")
    times = times[order]
    rates = np.cumsum(deltas[order])
    if len(times) > 1:
        # Equal breakpoints collapse to the last (fully-summed) value.
        keep = np.empty(len(times), dtype=bool)
        np.not_equal(times[1:], times[:-1], out=keep[:-1])
        keep[-1] = True
        times = times[keep]
        rates = rates[keep]
    return _finish_stream(rates, times)


def patch_fast(base: StreamKernel, old: StreamKernel, new: StreamKernel):
    """``base - old + new`` over one breakpoint union.

    The cache-patch operation behind every incremental ``Soa`` /
    ``higher_sum`` update and every ``soa(replace=...)`` substitution.
    Point-wise it evaluates the same left-to-right ``(a - b) + c`` the
    two pairwise merges would, but the union is built once and no
    intermediate stream is canonicalized or allocated -- one pass
    instead of two on the hottest admission path.
    """
    times = np.union1d(np.union1d(base.times, old.times), new.times)
    rates = (base.rates[np.searchsorted(base.times, times,
                                        side="right") - 1]
             - old.rates[np.searchsorted(old.times, times,
                                         side="right") - 1]
             + new.rates[np.searchsorted(new.times, times,
                                         side="right") - 1])
    return _finish_stream(rates, times)


def merge_fast(first: StreamKernel, second: StreamKernel, subtract: bool):
    """Pairwise Algorithms 3.2/3.3 on the breakpoint union.

    Evaluates both step functions at every union breakpoint and
    combines point-wise -- the same floating-point additions in the
    same order as the scalar ``_merge``, so results are bit-identical
    while the scan itself is vectorized.
    """
    times = np.union1d(first.times, second.times)
    rates_a = first.rates[np.searchsorted(first.times, times,
                                          side="right") - 1]
    rates_b = second.rates[np.searchsorted(second.times, times,
                                           side="right") - 1]
    rates = rates_a - rates_b if subtract else rates_a + rates_b
    return _finish_stream(rates, times)


# ----------------------------------------------------------------------
# Worst-case analysis kernels (Algorithm 4.1)
# ----------------------------------------------------------------------


def delay_bound_fast(stream: StreamKernel,
                     higher: Optional[StreamKernel]) -> float:
    """Vectorized Algorithm 4.1; caller has already checked stability.

    All candidate instants -- the arrival breakpoints plus the
    pre-images under ``A`` of every service breakpoint -- are evaluated
    in one batch: ``A(t)`` by searchsorted into the arrival prefix
    sums, then the sup-inverse of the service curve by searchsorted
    into the service prefix sums.
    """
    if higher is None:
        # C(t) = t: the bound degenerates to max_t (A(t) - t), attained
        # at an arrival breakpoint by concavity.
        return max(0.0, float((stream.cumbits - stream.times).max()))

    values, slopes = higher.service
    preimages = stream.time_of_bits_array(values)
    # Duplicates are harmless under a max-reduction, so no dedupe/sort.
    candidates = np.concatenate(
        (stream.times, preimages[np.isfinite(preimages)])
    )
    arrived = stream.bits(candidates)

    # Sup-inverse of C: the first segment whose *end* value exceeds the
    # arrival count; ``side="right"`` lands on the right edge of any
    # plateau, matching ServiceCurve.inverse.
    position = values.searchsorted(arrived, side="right")
    segment = position - 1  # position >= 1 because values[0] = 0 <= arrived
    segment_slopes = slopes[segment]
    if (segment_slopes <= 0.0).any():
        # A zero-slope selection means the service curve never exceeds
        # the required level: unbounded delay despite balanced rates.
        return math.inf
    leave = (higher.times[segment]
             + (arrived - values[segment]) / segment_slopes)
    return max(0.0, float((leave - candidates).max()))


def backlog_bound_fast(stream: StreamKernel,
                       higher: Optional[StreamKernel]) -> float:
    """Vectorized worst-case backlog ``max_u (A(u) - C(u))``."""
    if higher is None:
        return max(0.0, float((stream.cumbits - stream.times).max()))
    points = np.concatenate((stream.times, higher.times))
    backlog = stream.bits(points) - higher.service_values(points)
    return max(0.0, float(backlog.max()))
