"""The Section 5 evaluation: ring analysis and figure drivers.

Two evaluation paths exist, and the test suite checks they agree:

* :class:`RingAnalysis` -- the *direct* path.  For a ring workload the
  streams crossing every ring link are known in closed form (a
  broadcast from node ``m`` crosses link ``k`` after ``(k - m) mod R``
  upstream hops, hence with CDV accumulated over that many fixed
  per-node bounds), so each link's worst-case bound can be computed
  straight from the bit-stream algebra without walking the signalling
  procedure.  This is how the paper itself evaluates RTnet, and it is
  what the figure sweeps use.

* :func:`establish_workload` -- the *procedural* path.  Builds the
  topology, generates one :class:`ConnectionRequest` per terminal and
  runs the full distributed setup through
  :class:`~repro.core.admission.NetworkCAC`.  Slower, but exercises the
  production code path end to end.

The figure drivers (:func:`symmetric_delay_curve` for Figure 10,
:func:`asymmetric_capacity_curve` for Figure 11,
:func:`priority_capacity_curve` for Figure 12 and
:func:`soft_hard_capacity_curve` for Figure 13) produce plain data
rows; rendering lives in :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.capacity import max_feasible_load
from ..parallel import ParallelExecutor, parallel_map
from ..core.accumulation import CdvPolicy, make_policy
from ..core.admission import NetworkCAC
from ..core.bitstream import BitStream, Number, ZERO_STREAM, aggregate
from ..core.delay_bound import delay_bound
from ..exceptions import AdmissionError, TrafficModelError
from ..network.connection import ConnectionRequest, EstablishedConnection
from .constants import (
    CYCLIC_PRIORITY,
    CYCLIC_QUEUE_CELLS,
    HIGH_SPEED_DELAY_CELLS,
    NODE_DELAY_BOUND,
    RING_NODES,
)
from .topology import broadcast_route, build_rtnet, terminal_name
from .workloads import (
    TrafficAssignment,
    asymmetric_workload,
    symmetric_workload,
)

__all__ = [
    "RingAnalysis",
    "establish_workload",
    "symmetric_delay_curve",
    "asymmetric_capacity_curve",
    "priority_capacity_curve",
    "soft_hard_capacity_curve",
    "vbr_workload",
    "vbr_capacity_curve",
]


class RingAnalysis:
    """Closed-form worst-case analysis of a cyclic-broadcast ring.

    Parameters
    ----------
    workload:
        ``(node, slot) -> (VBRParameters, priority)`` -- every
        terminal's cyclic broadcast.
    ring_nodes:
        Ring size ``R``; every broadcast traverses ``R - 1`` ring links.
    node_bound:
        The fixed advertised per-node delay bound, used both for CDV
        accumulation and as the per-link admission limit (RTnet: 32).
        Either a single number applying to every priority or a mapping
        ``priority -> bound`` -- lower priorities typically get larger
        queues (and correspondingly larger advertised bounds), which is
        what makes multi-priority operation useful (Figure 12).
    cdv_policy:
        "hard" or "soft" accumulation of upstream bounds.
    """

    def __init__(self, workload: TrafficAssignment,
                 ring_nodes: int = RING_NODES,
                 node_bound: Union[Number, Mapping[int, Number]] = NODE_DELAY_BOUND,
                 cdv_policy: Union[str, CdvPolicy] = "hard"):
        self.workload = workload
        self.ring_nodes = ring_nodes
        self.policy = make_policy(cdv_policy)
        self.priorities = sorted({
            priority for _params, priority in workload.values()
        })
        if isinstance(node_bound, Mapping):
            self.node_bounds: Dict[int, Number] = dict(node_bound)
        else:
            self.node_bounds = {
                priority: node_bound for priority in self.priorities
            }
        for priority in self.priorities:
            if priority not in self.node_bounds:
                raise ValueError(
                    f"no advertised node bound for priority {priority}"
                )
        #: CDV after j upstream hops, per priority, memoized.
        self._cdv: Dict[int, List[Number]] = {
            priority: [
                self.policy.accumulate([bound] * j)
                for j in range(ring_nodes)
            ]
            for priority, bound in self.node_bounds.items()
        }
        self._link_bounds: Dict[Tuple[int, int], Number] = {}

    # ------------------------------------------------------------------
    # Stream construction
    # ------------------------------------------------------------------

    def _delayed_envelope(self, params, priority: int,
                          hops_upstream: int) -> BitStream:
        """A broadcast's arrival stream after the given upstream hops."""
        return params.worst_case_stream().delayed(
            self._cdv[priority][hops_upstream])

    def _input_aggregates(self, link: int, priority_filter) -> List[BitStream]:
        """Per-incoming-link aggregates feeding ring link ``link``.

        Ring link ``k`` runs from ring node ``k``; its incoming links
        are the node's ring-in link (broadcasts in transit) and the
        access link of every local terminal.  ``priority_filter``
        selects which connections participate (e.g. "equal to p" or
        "higher than p").
        """
        ring = self.ring_nodes
        locals_: Dict[int, List[BitStream]] = {}
        transit: List[BitStream] = []
        for (node, slot), (params, priority) in self.workload.items():
            if not priority_filter(priority):
                continue
            offset = (link - node) % ring
            if offset > ring - 2:
                continue  # the broadcast never crosses this link
            if offset == 0:
                locals_.setdefault(slot, []).append(
                    self._delayed_envelope(params, priority, 0))
            else:
                transit.append(
                    self._delayed_envelope(params, priority, offset))
        aggregates = [aggregate(streams) for _slot, streams
                      in sorted(locals_.items())]
        if transit:
            aggregates.append(aggregate(transit))
        return aggregates

    def arrival_stream(self, link: int, priority: int) -> BitStream:
        """``Soa``: the filtered-and-summed arrival stream at a link."""
        parts = self._input_aggregates(
            link, lambda p: p == priority)
        return aggregate([part.filtered() for part in parts])

    def interference_stream(self, link: int, priority: int) -> BitStream:
        """``Sof``: filtered higher-priority interference at a link."""
        parts = self._input_aggregates(
            link, lambda p: p < priority)
        if not parts:
            return ZERO_STREAM
        return aggregate([part.filtered() for part in parts]).filtered()

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------

    def link_bound(self, link: int, priority: int) -> Number:
        """Worst-case queueing delay bound of one priority at one link."""
        key = (link, priority)
        if key not in self._link_bounds:
            arrivals = self.arrival_stream(link, priority)
            if arrivals.is_zero:
                bound: Number = 0
            else:
                bound = delay_bound(
                    arrivals, self.interference_stream(link, priority))
            self._link_bounds[key] = bound
        return self._link_bounds[key]

    def link_backlog(self, link: int, priority: int) -> Number:
        """Worst-case FIFO occupancy (cells) of one priority at one link.

        The quantity that sizes ring-node buffers -- Section 5 credits
        the CAC with "determin[ing] buffer requirement at switches for
        real-time traffic".
        """
        from ..core.delay_bound import backlog_bound_with_higher
        arrivals = self.arrival_stream(link, priority)
        if arrivals.is_zero:
            return 0
        return backlog_bound_with_higher(
            arrivals, self.interference_stream(link, priority))

    def worst_link_backlog(self, priority: int) -> Number:
        """The largest per-link buffer requirement across the ring."""
        return max(self.link_backlog(link, priority)
                   for link in range(self.ring_nodes))

    def all_link_bounds(self, priority: int) -> List[Number]:
        """Bounds of every ring link for one priority, by link index."""
        return [self.link_bound(link, priority)
                for link in range(self.ring_nodes)]

    def worst_link_bound(self, priority: int) -> Number:
        """The largest per-link bound (the admission-binding quantity)."""
        return max(self.all_link_bounds(priority))

    def e2e_bound(self, node: int, priority: int) -> Number:
        """End-to-end bound of a broadcast starting at ``node``."""
        total: Number = 0
        for j in range(self.ring_nodes - 1):
            total += self.link_bound((node + j) % self.ring_nodes, priority)
        return total

    def worst_e2e_bound(self, priority: int) -> Number:
        """The largest end-to-end bound over all source nodes."""
        nodes = {
            node for (node, _slot), (_params, p) in self.workload.items()
            if p == priority
        }
        if not nodes:
            return 0
        return max(self.e2e_bound(node, priority) for node in nodes)

    def feasible(self,
                 queue_bounds: Optional[Mapping[int, Number]] = None,
                 e2e_requirements: Optional[Mapping[int, Number]] = None,
                 ) -> bool:
        """Does the workload meet every per-link and end-to-end limit?

        ``queue_bounds`` defaults to the advertised node bound for every
        priority (per-link computed bound must not exceed the advertised
        bound, or the CAC would have refused); ``e2e_requirements`` maps
        priorities to deadline budgets in cell times (unconstrained
        priorities may be omitted).
        """
        for priority in self.priorities:
            limit = (queue_bounds or {}).get(
                priority, self.node_bounds[priority])
            if self.worst_link_bound(priority) > limit:
                return False
        for priority, requirement in (e2e_requirements or {}).items():
            if priority not in self.priorities:
                continue
            if self.worst_e2e_bound(priority) > requirement:
                return False
        return True


# ----------------------------------------------------------------------
# Procedural path: the full CAC machinery
# ----------------------------------------------------------------------

def establish_workload(workload: TrafficAssignment,
                       ring_nodes: int = RING_NODES,
                       terminals_per_node: int = 1,
                       node_bound: Union[Number, Mapping[int, Number]] = NODE_DELAY_BOUND,
                       cdv_policy: Union[str, CdvPolicy] = "hard",
                       batched: bool = False,
                       ) -> Tuple[NetworkCAC, List[EstablishedConnection]]:
    """Run the full distributed setup for a ring workload.

    Builds the RTnet topology, one broadcast request per terminal, and
    walks the SETUP procedure through :class:`NetworkCAC`.  Raises
    :class:`~repro.exceptions.AdmissionError` when any broadcast is
    refused (callers treat that as an infeasible workload).

    ``batched`` routes the whole workload through one
    :meth:`NetworkCAC.setup_many` call -- the same admitted set and
    switch state (see ``docs/architecture.md``), with one shared group
    check per ring node instead of one check per broadcast per hop.
    """
    priorities = sorted({p for _t, p in workload.values()}) or [CYCLIC_PRIORITY]
    if isinstance(node_bound, Mapping):
        bounds = {priority: node_bound[priority] for priority in priorities}
    else:
        bounds = {priority: node_bound for priority in priorities}
    net = build_rtnet(ring_nodes, terminals_per_node, bounds=bounds)
    cac = NetworkCAC(net, cdv_policy=cdv_policy)
    requests = []
    for (node, slot), (params, priority) in sorted(workload.items()):
        requests.append(ConnectionRequest(
            name=f"bcast-{terminal_name(node, slot)}",
            traffic=params,
            route=broadcast_route(net, node, slot),
            priority=priority,
        ))
    if batched:
        outcome = cac.setup_many(requests)
        if outcome.failures:
            name, refused = next(iter(outcome.failures.items()))
            for connection in reversed(outcome.established):
                cac.teardown(connection.name)
            raise AdmissionError(
                f"broadcast {name!r} refused in batched setup: {refused}"
            )
        return cac, list(outcome.established)
    established = cac.setup_all(requests)
    return cac, established


# ----------------------------------------------------------------------
# Figure drivers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DelayCurvePoint:
    """One point of Figure 10: load vs worst end-to-end delay bound."""

    load: float
    delay_bound: float        # cell times; inf when not admissible
    admissible: bool


def _symmetric_point(load: float, terminals_per_node: int,
                     ring_nodes: int, node_bound: Number,
                     cdv_policy: Union[str, CdvPolicy]) -> DelayCurvePoint:
    """One Figure 10 point; module-level so it fans out to workers."""
    workload = symmetric_workload(load, ring_nodes, terminals_per_node)
    analysis = RingAnalysis(workload, ring_nodes, node_bound, cdv_policy)
    worst_link = analysis.worst_link_bound(CYCLIC_PRIORITY)
    admissible = worst_link <= node_bound
    delay = analysis.worst_e2e_bound(CYCLIC_PRIORITY)
    return DelayCurvePoint(
        load=float(load),
        delay_bound=float(delay),
        admissible=bool(admissible),
    )


def symmetric_delay_curve(loads: Sequence[float],
                          terminals_per_node: int,
                          ring_nodes: int = RING_NODES,
                          node_bound: Number = NODE_DELAY_BOUND,
                          cdv_policy: Union[str, CdvPolicy] = "hard",
                          jobs: int = 1,
                          executor: Optional[ParallelExecutor] = None,
                          ) -> List[DelayCurvePoint]:
    """Figure 10: end-to-end delay bound vs total symmetric load.

    For each total load ``B`` every terminal broadcasts ``B / (R * N)``;
    the reported delay is the worst end-to-end bound over all source
    nodes.  A point is inadmissible when some link bound exceeds the
    advertised node bound (the CAC would refuse the set) -- the curve
    the paper plots ends there.

    Each load point is an independent closed-form analysis, so
    ``jobs > 1`` dispatches them across worker processes; the returned
    list is bit-identical to the serial evaluation (``jobs=0`` = all
    cores).
    """
    task = functools.partial(
        _symmetric_point, terminals_per_node=terminals_per_node,
        ring_nodes=ring_nodes, node_bound=node_bound,
        cdv_policy=cdv_policy)
    return parallel_map(task, list(loads), jobs=jobs, executor=executor)


def _asymmetric_feasible(load: float, hot_fraction: float,
                         ring_nodes: int, terminals_per_node: int,
                         node_bound: Union[Number, Mapping[int, Number]],
                         cdv_policy: Union[str, CdvPolicy],
                         e2e_requirement: Number,
                         hot_priority: int = CYCLIC_PRIORITY,
                         other_priority: int = CYCLIC_PRIORITY,
                         e2e_requirements: Optional[Mapping[int, Number]] = None,
                         ) -> bool:
    """Is an asymmetric workload of this total load fully supportable?"""
    try:
        workload = asymmetric_workload(
            load, hot_fraction, ring_nodes, terminals_per_node,
            hot_priority=hot_priority, other_priority=other_priority)
    except TrafficModelError:
        return False
    if not workload:
        return True
    analysis = RingAnalysis(workload, ring_nodes, node_bound, cdv_policy)
    requirements = e2e_requirements
    if requirements is None:
        requirements = {
            priority: e2e_requirement for priority in analysis.priorities
        }
    return analysis.feasible(e2e_requirements=requirements)


@dataclass(frozen=True)
class CapacityCurvePoint:
    """One point of Figures 11-13: asymmetry vs max supportable load."""

    hot_fraction: float
    max_load: float


def _asymmetric_capacity_point(fraction: float, terminals_per_node: int,
                               ring_nodes: int, node_bound: Number,
                               cdv_policy: Union[str, CdvPolicy],
                               e2e_requirement: Number,
                               tolerance: float) -> CapacityCurvePoint:
    """One Figure 11 bisection; module-level so it fans out to workers."""
    best = max_feasible_load(
        lambda load: _asymmetric_feasible(
            load, fraction, ring_nodes, terminals_per_node,
            node_bound, cdv_policy, e2e_requirement),
        tolerance=tolerance,
    )
    return CapacityCurvePoint(float(fraction), best)


def asymmetric_capacity_curve(hot_fractions: Sequence[float],
                              terminals_per_node: int,
                              ring_nodes: int = RING_NODES,
                              node_bound: Number = NODE_DELAY_BOUND,
                              cdv_policy: Union[str, CdvPolicy] = "hard",
                              e2e_requirement: Number = None,
                              tolerance: float = 1 / 128,
                              jobs: int = 1,
                              executor: Optional[ParallelExecutor] = None,
                              ) -> List[CapacityCurvePoint]:
    """Figure 11: max supportable total load vs asymmetry ``p``.

    For each ``p`` a bisection finds the largest total load whose
    asymmetric workload keeps every link bound within the node bound
    and every broadcast's end-to-end bound within the requirement
    (default: the 1 ms high-speed deadline, about 370 cell times).

    Each fraction's bisection is independent; ``jobs > 1`` fans them
    across worker processes with bit-identical results.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS
    task = functools.partial(
        _asymmetric_capacity_point,
        terminals_per_node=terminals_per_node, ring_nodes=ring_nodes,
        node_bound=node_bound, cdv_policy=cdv_policy,
        e2e_requirement=e2e_requirement, tolerance=tolerance)
    return parallel_map(task, list(hot_fractions), jobs=jobs,
                        executor=executor)


def priority_capacity_curve(hot_fractions: Sequence[float],
                            terminals_per_node: int,
                            ring_nodes: int = RING_NODES,
                            node_bound: Number = NODE_DELAY_BOUND,
                            low_queue_bound: Number = None,
                            low_e2e_requirement: Number = None,
                            e2e_requirement: Number = None,
                            tolerance: float = 1 / 128,
                            jobs: int = 1,
                            executor: Optional[ParallelExecutor] = None,
                            ) -> List[Tuple[float, float, float]]:
    """Figure 12: one vs two priority levels on the asymmetric workload.

    With a single priority, every broadcast must meet the tight
    high-speed deadline.  With two, the hot terminal's bulk transfer is
    demoted to the lower priority with the medium-speed deadline (and a
    correspondingly larger queue), leaving the tight deadline to the
    many small broadcasts -- the flexibility Section 4.3's discussion 2
    advertises.  Returns ``(p, max_load_1_priority, max_load_2_priorities)``
    rows.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS
    if low_queue_bound is None:
        # The lower-priority queue must absorb, at minimum, the initial
        # busy period of every higher-priority connection crossing the
        # link (one clumped cell each), so it scales with the network
        # population -- a design choice Section 5 folds into "buffer
        # requirement at switches".
        low_queue_bound = node_bound * max(4, terminals_per_node)
    if low_e2e_requirement is None:
        low_e2e_requirement = e2e_requirement * 30   # the 30 ms class
    task = functools.partial(
        _priority_point, terminals_per_node=terminals_per_node,
        ring_nodes=ring_nodes, node_bound=node_bound,
        low_queue_bound=low_queue_bound,
        low_e2e_requirement=low_e2e_requirement,
        e2e_requirement=e2e_requirement, tolerance=tolerance)
    return parallel_map(task, list(hot_fractions), jobs=jobs,
                        executor=executor)


def _priority_point(fraction: float, terminals_per_node: int,
                    ring_nodes: int, node_bound: Number,
                    low_queue_bound: Number, low_e2e_requirement: Number,
                    e2e_requirement: Number,
                    tolerance: float) -> Tuple[float, float, float]:
    """One Figure 12 row (two bisections); fans out to workers."""
    single = max_feasible_load(
        lambda load: _asymmetric_feasible(
            load, fraction, ring_nodes, terminals_per_node,
            node_bound, "hard", e2e_requirement),
        tolerance=tolerance,
    )
    demoted = max_feasible_load(
        lambda load: _asymmetric_feasible(
            load, fraction, ring_nodes, terminals_per_node,
            {CYCLIC_PRIORITY: node_bound, 1: low_queue_bound},
            "hard", e2e_requirement,
            hot_priority=1, other_priority=CYCLIC_PRIORITY,
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement,
                              1: low_e2e_requirement}),
        tolerance=tolerance,
    )
    # Two priority levels never force the demoted assignment: when
    # demotion would hurt (small networks where the hot stream's own
    # clumping dominates), the operator keeps everything at one
    # level, so the supported capacity is the better of the two.
    return (float(fraction), single, max(single, demoted))


def vbr_workload(total_load: float, mbs_per_node: int,
                 ring_nodes: int = RING_NODES) -> TrafficAssignment:
    """One VBR broadcast per ring node with a given burst allowance.

    The Section 5 VBR feasibility reading of Figure 10: the worst-case
    aggregate of a node's terminals equals one VBR connection whose
    ``MBS`` is the sum of the terminals' burst sizes (``PCR`` saturates
    at the link rate once carried on one link) and whose ``SCR`` is the
    node's share of the total load.
    """
    if not 0 < total_load <= 1:
        raise TrafficModelError(
            f"total load must be in (0, 1], got {total_load}"
        )
    from ..core.traffic import VBRParameters
    share = total_load / ring_nodes
    params = VBRParameters(pcr=1, scr=share, mbs=max(1, mbs_per_node))
    return {(node, 0): (params, CYCLIC_PRIORITY)
            for node in range(ring_nodes)}


def _vbr_point(mbs: int, ring_nodes: int, node_bound: Number,
               e2e_requirement: Number,
               tolerance: float) -> Tuple[int, float]:
    """One VBR-feasibility bisection; module-level for worker fan-out."""
    def feasible(load: float) -> bool:
        try:
            workload = vbr_workload(load, mbs, ring_nodes)
        except TrafficModelError:
            return False
        analysis = RingAnalysis(workload, ring_nodes, node_bound, "hard")
        return analysis.feasible(
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement})

    return (mbs, max_feasible_load(feasible, tolerance=tolerance))


def vbr_capacity_curve(mbs_values: Sequence[int],
                       ring_nodes: int = RING_NODES,
                       node_bound: Number = NODE_DELAY_BOUND,
                       e2e_requirement: Number = None,
                       tolerance: float = 1 / 128,
                       jobs: int = 1,
                       executor: Optional[ParallelExecutor] = None,
                       ) -> List[Tuple[int, float]]:
    """Max supportable VBR load vs per-node burst allowance.

    The paper's claim under Figure 10: "up to 35% of real-time VBR
    traffic can be supported with a queueing delay bound of 370 cell
    times if the summation of MBS's of VBR connections established at
    terminals attached to a ring node does not exceed 16" -- i.e. the
    MBS-16 VBR curve coincides with the N=16 CBR curve, by the
    equivalence of Section 5.  Returns ``(mbs_per_node, max_load)``.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS
    task = functools.partial(
        _vbr_point, ring_nodes=ring_nodes, node_bound=node_bound,
        e2e_requirement=e2e_requirement, tolerance=tolerance)
    return parallel_map(task, list(mbs_values), jobs=jobs,
                        executor=executor)


def _soft_hard_point(fraction: float, terminals_per_node: int,
                     ring_nodes: int, node_bound: Number,
                     e2e_requirement: Number,
                     tolerance: float) -> Tuple[float, float, float]:
    """One Figure 13 row (hard + soft bisections); fans out to workers."""
    hard = max_feasible_load(
        lambda load: _asymmetric_feasible(
            load, fraction, ring_nodes, terminals_per_node,
            node_bound, "hard", e2e_requirement),
        tolerance=tolerance,
    )
    soft = max_feasible_load(
        lambda load: _asymmetric_feasible(
            load, fraction, ring_nodes, terminals_per_node,
            node_bound, "soft", e2e_requirement),
        tolerance=tolerance,
    )
    return (float(fraction), hard, soft)


def soft_hard_capacity_curve(hot_fractions: Sequence[float],
                             terminals_per_node: int,
                             ring_nodes: int = RING_NODES,
                             node_bound: Number = NODE_DELAY_BOUND,
                             e2e_requirement: Number = None,
                             tolerance: float = 1 / 128,
                             jobs: int = 1,
                             executor: Optional[ParallelExecutor] = None,
                             ) -> List[Tuple[float, float, float]]:
    """Figure 13: hard vs soft CDV accumulation on the asymmetric load.

    Returns ``(p, max_load_hard, max_load_soft)`` rows; the soft scheme
    assumes less clumping and therefore admits at least as much.  Rows
    are independent: ``jobs > 1`` fans them across worker processes
    with bit-identical results.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS
    task = functools.partial(
        _soft_hard_point, terminals_per_node=terminals_per_node,
        ring_nodes=ring_nodes, node_bound=node_bound,
        e2e_requirement=e2e_requirement, tolerance=tolerance)
    return parallel_map(task, list(hot_fractions), jobs=jobs,
                        executor=executor)
