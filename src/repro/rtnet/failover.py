"""Ring wrap-around after a single link/node failure (Figure 9).

RTnet's star-ring "can tolerate any single link/node failure by using a
hardware ring wrap-around technology similar to that used in FDDI
networks": the dual counter-rotating rings heal into one longer logical
ring.  The paper claims the fault tolerance; this module quantifies its
*real-time cost* -- the wrapped ring has roughly twice the hops, so CDV
accumulates twice as deep and both per-link bounds and end-to-end
deadlines tighten.

Model: after a wrap, a ring of ``R`` nodes becomes a logical cycle of
``2R - 2`` queueing points (each surviving node contributes its primary
and its secondary output port; the two wrap nodes contribute one each).
Terminals still inject at their physical node's primary position -- the
remaining positions carry transit traffic only.  A cyclic broadcast
must circle the whole wrapped cycle to reach every physical node, so
its route grows from ``R - 1`` to ``2R - 3`` hops.

:class:`RingAnalysis` handles transit-only positions natively (they
just have no workload entries), so the wrapped study reuses the exact
same worst-case machinery as the healthy-ring figures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..analysis.capacity import max_feasible_load
from ..core.bitstream import Number
from ..exceptions import TrafficModelError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..core.admission import NetworkCAC
    from ..network.connection import ConnectionRequest
from .constants import (
    CYCLIC_PRIORITY,
    HIGH_SPEED_DELAY_CELLS,
    NODE_DELAY_BOUND,
    RING_NODES,
)
from .evaluation import RingAnalysis
from .workloads import TrafficAssignment, symmetric_workload

__all__ = [
    "wrapped_ring_size",
    "wrapped_workload",
    "wrapped_analysis",
    "failover_capacity",
    "failover_capacity_curve",
    "evacuate_switch",
]


def evacuate_switch(cac: "NetworkCAC",
                    switch_name: str) -> List["ConnectionRequest"]:
    """Crash one switch and tear down every connection crossing it.

    The moment the wrap-around of Figure 9 must handle: a node dies and
    the connections routed through it lose their guarantees.  The dead
    switch's volatile CAC state is gone (its journal survives), so the
    teardown leans on the robustness machinery -- per-hop release is
    idempotent and the crashed hop is skipped; calling
    :meth:`~repro.core.admission.NetworkCAC.recover_switch` afterwards
    replays the journal and reconciles away the orphaned legs.

    Returns the affected requests, in establishment order, so the
    caller can re-admit them over wrapped routes and measure the
    real-time cost of the healed ring with
    :func:`wrapped_analysis`/:func:`failover_capacity`.
    """
    cac.switch(switch_name).crash()
    affected = [
        connection.request for connection in cac.established.values()
        if any(hop.switch == switch_name for hop in connection.hops)
    ]
    for request in affected:
        cac.teardown(request.name)
    return affected


def wrapped_ring_size(ring_nodes: int) -> int:
    """Queueing points on the healed logical ring after one failure."""
    if ring_nodes < 3:
        raise ValueError(
            f"a wrappable ring needs at least 3 nodes, got {ring_nodes}"
        )
    return 2 * ring_nodes - 2


def wrapped_workload(workload: TrafficAssignment,
                     ring_nodes: int) -> TrafficAssignment:
    """Re-key a healthy-ring workload onto the wrapped cycle.

    Physical node ``i`` keeps its terminals at wrapped position ``i``
    (its primary output port); positions ``ring_nodes .. 2R-3`` are the
    secondary ports and carry transit traffic only.
    """
    for (node, _slot) in workload:
        if node >= ring_nodes:
            raise TrafficModelError(
                f"workload references node {node} outside the "
                f"{ring_nodes}-node ring"
            )
    return dict(workload)


def wrapped_analysis(workload: TrafficAssignment,
                     ring_nodes: int = RING_NODES,
                     node_bound: Number = NODE_DELAY_BOUND,
                     cdv_policy: str = "hard") -> RingAnalysis:
    """The worst-case analysis of the post-failure wrapped ring."""
    return RingAnalysis(
        wrapped_workload(workload, ring_nodes),
        ring_nodes=wrapped_ring_size(ring_nodes),
        node_bound=node_bound,
        cdv_policy=cdv_policy,
    )


def failover_capacity(terminals_per_node: int,
                      ring_nodes: int = RING_NODES,
                      node_bound: Number = NODE_DELAY_BOUND,
                      e2e_requirement: Optional[Number] = None,
                      cdv_policy: str = "hard",
                      tolerance: float = 1 / 128,
                      ) -> Tuple[float, float]:
    """Max symmetric cyclic load before and after a single failure.

    Returns ``(healthy_max_load, wrapped_max_load)`` under the same
    per-link queue bound and end-to-end deadline.  The wrapped value is
    what a plant designer must provision for if hard guarantees are to
    *survive* a failure rather than merely recover eventually.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS

    def healthy_feasible(load: float) -> bool:
        try:
            workload = symmetric_workload(load, ring_nodes,
                                          terminals_per_node)
        except TrafficModelError:
            return False
        analysis = RingAnalysis(workload, ring_nodes, node_bound,
                                cdv_policy)
        return analysis.feasible(
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement})

    def wrapped_feasible(load: float) -> bool:
        try:
            workload = symmetric_workload(load, ring_nodes,
                                          terminals_per_node)
        except TrafficModelError:
            return False
        analysis = wrapped_analysis(workload, ring_nodes, node_bound,
                                    cdv_policy)
        return analysis.feasible(
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement})

    healthy = max_feasible_load(healthy_feasible, tolerance=tolerance)
    wrapped = max_feasible_load(wrapped_feasible, tolerance=tolerance)
    return healthy, wrapped


def _failover_row(count: int, ring_nodes: int,
                  tolerance: float) -> Tuple[int, float, float]:
    """One curve row; module-level so it can fan out to workers."""
    return (count, *failover_capacity(count, ring_nodes,
                                      tolerance=tolerance))


def failover_capacity_curve(terminal_counts: Sequence[int],
                            ring_nodes: int = RING_NODES,
                            tolerance: float = 1 / 128,
                            jobs: int = 1,
                            ) -> List[Tuple[int, float, float]]:
    """``(N, healthy, wrapped)`` rows across terminal counts.

    Rows are independent bisection pairs; ``jobs > 1`` fans them across
    worker processes with bit-identical results.
    """
    import functools

    from ..parallel import parallel_map
    task = functools.partial(_failover_row, ring_nodes=ring_nodes,
                             tolerance=tolerance)
    return parallel_map(task, list(terminal_counts), jobs=jobs)
