"""Ring wrap-around after a single link/node failure (Figure 9).

RTnet's star-ring "can tolerate any single link/node failure by using a
hardware ring wrap-around technology similar to that used in FDDI
networks": the dual counter-rotating rings heal into one longer logical
ring.  The paper claims the fault tolerance; this module quantifies its
*real-time cost* -- the wrapped ring has roughly twice the hops, so CDV
accumulates twice as deep and both per-link bounds and end-to-end
deadlines tighten.

Model: after a wrap, a ring of ``R`` nodes becomes a logical cycle of
``2R - 2`` queueing points (each surviving node contributes its primary
and its secondary output port; the two wrap nodes contribute one each).
Terminals still inject at their physical node's primary position -- the
remaining positions carry transit traffic only.  A cyclic broadcast
must circle the whole wrapped cycle to reach every physical node, so
its route grows from ``R - 1`` to ``2R - 3`` hops.

:class:`RingAnalysis` handles transit-only positions natively (they
just have no workload entries), so the wrapped study reuses the exact
same worst-case machinery as the healthy-ring figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.capacity import max_feasible_load
from ..core.bitstream import Number
from ..exceptions import AdmissionError, TrafficModelError

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..core.admission import NetworkCAC
    from ..network.connection import ConnectionRequest
from .constants import (
    CYCLIC_PRIORITY,
    HIGH_SPEED_DELAY_CELLS,
    NODE_DELAY_BOUND,
    RING_NODES,
)
from .evaluation import RingAnalysis
from .workloads import TrafficAssignment, symmetric_workload

__all__ = [
    "wrapped_ring_size",
    "wrapped_workload",
    "wrapped_analysis",
    "failover_capacity",
    "failover_capacity_curve",
    "evacuate_switch",
    "MigrationStudy",
    "failover_migration_study",
]


def evacuate_switch(cac: "NetworkCAC",
                    switch_name: str) -> List["ConnectionRequest"]:
    """Crash one switch and tear down every connection crossing it.

    The moment the wrap-around of Figure 9 must handle: a node dies and
    the connections routed through it lose their guarantees.  The dead
    switch's volatile CAC state is gone (its journal survives), so the
    teardown leans on the robustness machinery -- per-hop release is
    idempotent and the crashed hop is skipped; calling
    :meth:`~repro.core.admission.NetworkCAC.recover_switch` afterwards
    replays the journal and reconciles away the orphaned legs.

    Returns the affected requests, in establishment order, so the
    caller can re-admit them over wrapped routes and measure the
    real-time cost of the healed ring with
    :func:`wrapped_analysis`/:func:`failover_capacity`.
    """
    cac.switch(switch_name).crash()
    affected = [
        connection.request for connection in cac.established.values()
        if any(hop.switch == switch_name for hop in connection.hops)
    ]
    for request in affected:
        cac.teardown(request.name)
    return affected


def wrapped_ring_size(ring_nodes: int) -> int:
    """Queueing points on the healed logical ring after one failure."""
    if ring_nodes < 3:
        raise ValueError(
            f"a wrappable ring needs at least 3 nodes, got {ring_nodes}"
        )
    return 2 * ring_nodes - 2


def wrapped_workload(workload: TrafficAssignment,
                     ring_nodes: int) -> TrafficAssignment:
    """Re-key a healthy-ring workload onto the wrapped cycle.

    Physical node ``i`` keeps its terminals at wrapped position ``i``
    (its primary output port); positions ``ring_nodes .. 2R-3`` are the
    secondary ports and carry transit traffic only.
    """
    for (node, _slot) in workload:
        if node >= ring_nodes:
            raise TrafficModelError(
                f"workload references node {node} outside the "
                f"{ring_nodes}-node ring"
            )
    return dict(workload)


def wrapped_analysis(workload: TrafficAssignment,
                     ring_nodes: int = RING_NODES,
                     node_bound: Number = NODE_DELAY_BOUND,
                     cdv_policy: str = "hard") -> RingAnalysis:
    """The worst-case analysis of the post-failure wrapped ring."""
    return RingAnalysis(
        wrapped_workload(workload, ring_nodes),
        ring_nodes=wrapped_ring_size(ring_nodes),
        node_bound=node_bound,
        cdv_policy=cdv_policy,
    )


def failover_capacity(terminals_per_node: int,
                      ring_nodes: int = RING_NODES,
                      node_bound: Number = NODE_DELAY_BOUND,
                      e2e_requirement: Optional[Number] = None,
                      cdv_policy: str = "hard",
                      tolerance: float = 1 / 128,
                      ) -> Tuple[float, float]:
    """Max symmetric cyclic load before and after a single failure.

    Returns ``(healthy_max_load, wrapped_max_load)`` under the same
    per-link queue bound and end-to-end deadline.  The wrapped value is
    what a plant designer must provision for if hard guarantees are to
    *survive* a failure rather than merely recover eventually.
    """
    if e2e_requirement is None:
        e2e_requirement = HIGH_SPEED_DELAY_CELLS

    def healthy_feasible(load: float) -> bool:
        try:
            workload = symmetric_workload(load, ring_nodes,
                                          terminals_per_node)
        except TrafficModelError:
            return False
        analysis = RingAnalysis(workload, ring_nodes, node_bound,
                                cdv_policy)
        return analysis.feasible(
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement})

    def wrapped_feasible(load: float) -> bool:
        try:
            workload = symmetric_workload(load, ring_nodes,
                                          terminals_per_node)
        except TrafficModelError:
            return False
        analysis = wrapped_analysis(workload, ring_nodes, node_bound,
                                    cdv_policy)
        return analysis.feasible(
            e2e_requirements={CYCLIC_PRIORITY: e2e_requirement})

    healthy = max_feasible_load(healthy_feasible, tolerance=tolerance)
    wrapped = max_feasible_load(wrapped_feasible, tolerance=tolerance)
    return healthy, wrapped


def _failover_row(count: int, ring_nodes: int,
                  tolerance: float) -> Tuple[int, float, float]:
    """One curve row; module-level so it can fan out to workers."""
    return (count, *failover_capacity(count, ring_nodes,
                                      tolerance=tolerance))


def failover_capacity_curve(terminal_counts: Sequence[int],
                            ring_nodes: int = RING_NODES,
                            tolerance: float = 1 / 128,
                            jobs: int = 1,
                            ) -> List[Tuple[int, float, float]]:
    """``(N, healthy, wrapped)`` rows across terminal counts.

    Rows are independent bisection pairs; ``jobs > 1`` fans them across
    worker processes with bit-identical results.
    """
    import functools

    from ..parallel import parallel_map
    task = functools.partial(_failover_row, ring_nodes=ring_nodes,
                             tolerance=tolerance)
    return parallel_map(task, list(terminal_counts), jobs=jobs)


@dataclass
class MigrationStudy:
    """What one live-migration chaos run did, end to end.

    Produced by :func:`failover_migration_study`: a Table-1-class
    point-to-point workload on a dual-ring RTnet, one ring link failed
    mid-service, the failure *detected* by probing (not revealed), the
    victims migrated make-before-break, and the breaker walked through
    open -> half-open -> closed after the repair.
    """

    ring_nodes: int
    terminals: int
    established: int
    refused: int
    link: str
    policy: str
    #: probes it took the health monitor to declare the link down
    probes_to_detect: int
    #: failure-instant-to-declaration gap in simulated time units
    detection_latency: Optional[float]
    migrated: Tuple[str, ...]
    dropped: Tuple[str, ...]
    kept: Tuple[str, ...]
    #: breaker targets open right after the migration pass
    open_hops: Tuple[str, ...]
    #: did the breaker close again after link repair + probe?
    breaker_reclosed: bool
    #: no-double-booking invariant after the whole exercise
    booking_safe: bool
    #: selected registry counters captured at the end of the run
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def survived(self) -> int:
        return len(self.migrated)

    def __repr__(self) -> str:
        return (
            f"MigrationStudy(link={self.link!r}, policy={self.policy!r}, "
            f"migrated={len(self.migrated)}, dropped={len(self.dropped)}, "
            f"kept={len(self.kept)}, "
            f"detection_latency={self.detection_latency})"
        )


def failover_migration_study(ring_nodes: int = 8,
                             sets_per_node: int = 1,
                             link: Optional[str] = None,
                             policy: str = "migrate-or-drop",
                             hop_timeout: float = 8.0,
                             suspicion_threshold: int = 3,
                             breaker_reset_timeout: float = 64.0,
                             max_probe_rounds: int = 10,
                             seed: int = 0,
                             ) -> MigrationStudy:
    """Fail one ring link mid-service and migrate around it, live.

    The software counterpart of the hardware wrap-around study: instead
    of re-admitting evacuated connections over a wrapped ring
    (:func:`evacuate_switch` + :func:`wrapped_analysis`), the network
    *keeps* the victims up by migrating them over the secondary-ring
    detour while their old legs are still booked.

    The exercise, step by step:

    1. build a dual-ring RTnet and admit one Table-1-class
       point-to-point connection per terminal (each terminal talks to
       its diametrically opposite peer, so half the connections cross
       any given ring link);
    2. fail ``link`` (default: the first primary ring link) in the
       fault injector -- the ground truth the health monitor must
       *detect*, never read;
    3. probe the dead hop until the monitor declares it down
       (``suspicion_threshold`` lost probes), measuring the detection
       latency;
    4. run :meth:`NetworkCAC.handle_link_failure` under ``policy`` --
       make-before-break migration over the reverse ring;
    5. repair the link, advance past the breaker's reset timeout and
       probe once more: the half-open probe reconciles the switch and
       closes the breaker.

    Returns the full :class:`MigrationStudy`, including the
    no-double-booking verdict and a snapshot of the survivability
    counters.  ``seed`` seeds the CAC's retry-jitter RNG, so a study is
    reproducible end to end (``repro-eval chaos --seed N``).
    """
    import random

    from ..core.admission import NetworkCAC
    from ..network.connection import ConnectionRequest
    from ..network.routing import shortest_path
    from ..obs import metrics as _om
    from ..robustness.faults import FaultInjector, FaultPlan
    from ..robustness.migration import no_double_booking
    from .topology import build_rtnet, ring_node, terminal_name
    from .workloads import plant_mix_workload

    terminals_per_node = 3 * sets_per_node
    net = build_rtnet(ring_nodes, terminals_per_node, dual_ring=True)
    workload = plant_mix_workload(ring_nodes, sets_per_node)
    injector = FaultInjector(FaultPlan([]))
    cac = NetworkCAC(
        net, fault_injector=injector, hop_timeout=hop_timeout,
        suspicion_threshold=suspicion_threshold,
        breaker_reset_timeout=breaker_reset_timeout,
        rng=random.Random(seed),
    )

    established = 0
    refused = 0
    half = ring_nodes // 2
    for (node, slot) in sorted(workload):
        traffic, priority = workload[(node, slot)]
        peer = terminal_name((node + half) % ring_nodes, slot)
        request = ConnectionRequest(
            f"vc{node}.{slot}", traffic,
            shortest_path(net, terminal_name(node, slot), peer),
            priority=priority,
        )
        try:
            cac.setup(request)
        except AdmissionError:
            refused += 1
        else:
            established += 1

    if link is None:
        link = f"{ring_node(0)}->{ring_node(1)}"
    target_switch = net.link(link).dst
    injector.fail_link(link)

    probes = 0
    while probes < max_probe_rounds and not cac.health.is_down(link):
        cac.probe(hops=[(target_switch, link)])
        probes += 1
    detection_latency = cac.health.detection_latency(link)

    report = cac.handle_link_failure(link, policy=policy)
    open_hops = tuple(cac.breakers.open_hops())

    injector.restore_link(link)
    # strictly past the timeout: float accumulation must not leave the
    # elapsed time an ulp short of the threshold
    cac.clock.advance(breaker_reset_timeout + 1.0)
    cac.probe(hops=[(target_switch, link)])
    breaker = cac.breakers.breaker(target_switch, link)

    registry = _om.get_registry()
    metrics: Dict[str, float] = {}
    if registry.enabled:
        snap = registry.snapshot()
        for name in ("cac_migrations_total",
                     "cac_breaker_fast_fails_total",
                     "cac_failure_detections_total",
                     "signaling_fast_fails_total"):
            for label, value in snap.get(name, {}).items():
                key = f"{name}{{{label}}}" if label else name
                if isinstance(value, (int, float)):
                    metrics[key] = float(value)

    return MigrationStudy(
        ring_nodes=ring_nodes,
        terminals=ring_nodes * terminals_per_node,
        established=established,
        refused=refused,
        link=link,
        policy=policy,
        probes_to_detect=probes,
        detection_latency=detection_latency,
        migrated=report.migrated,
        dropped=report.dropped,
        kept=report.kept,
        open_hops=open_hops,
        breaker_reclosed=breaker.state == "closed",
        booking_safe=no_double_booking(cac),
        metrics=metrics,
    )
