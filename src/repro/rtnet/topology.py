"""The RTnet star-ring topology (Figure 9).

Ring nodes are connected in a ring by 155 Mbps links (the dual/secondary
ring exists for hardware failure wrap-around and carries no traffic in
normal operation, so the model builds the primary direction); each ring
node hosts ``N`` terminals on star access links.  Cyclic traffic gets
the highest-priority 32-cell FIFO at every ring-node output port.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..exceptions import TopologyError
from ..network.routing import Route, ring_walk
from ..network.topology import Network
from .constants import CYCLIC_QUEUE_CELLS, CYCLIC_PRIORITY, RING_NODES

__all__ = ["build_rtnet", "broadcast_route", "ring_node", "terminal_name"]


def ring_node(index: int) -> str:
    """Name of ring node ``index``."""
    return f"ring{index}"


def terminal_name(node_index: int, slot: int) -> str:
    """Name of terminal ``slot`` on ring node ``node_index``."""
    return f"term{node_index}.{slot}"


def build_rtnet(ring_nodes: int = RING_NODES,
                terminals_per_node: int = 1,
                bounds: Optional[Mapping[int, float]] = None,
                dual_ring: bool = False) -> Network:
    """Build an RTnet: a ring of switches with star-attached terminals.

    Parameters
    ----------
    ring_nodes:
        Number of ring nodes (the reference RTnet has 16).
    terminals_per_node:
        Terminals attached to every ring node (up to 16 in RTnet).
    bounds:
        Advertised per-priority delay bounds of every ring-node output
        port; defaults to the single cyclic priority with the 32-cell
        queue (``{0: 32}``).
    dual_ring:
        Also build the secondary (counter-rotating) ring links.  The
        healthy-ring analyses keep the default ``False`` -- the
        secondary ring carries no traffic in normal operation -- but the
        survivability study needs the reverse direction as detour
        capacity for live migration.  Note a dual-ring network has two
        switch-to-switch out-links per ring node, so
        :func:`~repro.network.routing.ring_walk` (and therefore
        :func:`broadcast_route`) cannot be used on it; route
        point-to-point with
        :func:`~repro.network.routing.shortest_path` instead.
    """
    if ring_nodes < 2:
        raise TopologyError("an RTnet ring needs at least two ring nodes")
    if terminals_per_node < 1:
        raise TopologyError("each ring node needs at least one terminal")
    port_bounds = dict(bounds) if bounds is not None else {
        CYCLIC_PRIORITY: CYCLIC_QUEUE_CELLS,
    }
    net = Network()
    for index in range(ring_nodes):
        net.add_switch(ring_node(index))
    for index in range(ring_nodes):
        nxt = (index + 1) % ring_nodes
        net.add_link(ring_node(index), ring_node(nxt), bounds=port_bounds)
    if dual_ring:
        for index in range(ring_nodes):
            nxt = (index + 1) % ring_nodes
            net.add_link(ring_node(nxt), ring_node(index),
                         bounds=port_bounds)
    for index in range(ring_nodes):
        for slot in range(terminals_per_node):
            term = terminal_name(index, slot)
            net.add_terminal(term)
            net.add_link(term, ring_node(index))
            net.add_link(ring_node(index), term, bounds=port_bounds)
    return net


def broadcast_route(net: Network, node_index: int, slot: int) -> Route:
    """The route of one terminal's cyclic broadcast.

    The broadcast enters at the terminal's ring node and circles the
    ring through all ``ring_nodes - 1`` downstream ring links, reaching
    every other ring node (each node copies the cells to its local
    terminals; local delivery ports are not on the ring's critical path
    and are not modelled as hops of the broadcast).
    """
    ring_size = sum(1 for _ in net.switches())
    return ring_walk(
        net, ring_node(node_index), hops=ring_size - 1,
        access_from=terminal_name(node_index, slot),
    )
