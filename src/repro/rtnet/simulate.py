"""Turn-key cell-level simulation of RTnet ring workloads.

Bridges the two halves of the library: take any
:data:`~repro.rtnet.workloads.TrafficAssignment` (the object the
analytic evaluation consumes) and build a running
:class:`~repro.sim.network.SimNetwork` with one broadcast source per
terminal -- then compare what the cells actually experienced against
what :class:`~repro.rtnet.evaluation.RingAnalysis` promised.

Typical use::

    workload = symmetric_workload(0.4, 8, 2)
    run = simulate_ring_workload(workload, ring_nodes=8,
                                 terminals_per_node=2, horizon=4000)
    report = run.compare(RingAnalysis(workload, 8))
    assert report.all_within_bounds
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim import CbrSource, GreedyVbrSource, SimNetwork
from .evaluation import RingAnalysis
from .topology import broadcast_route, build_rtnet, terminal_name
from .workloads import TrafficAssignment

__all__ = ["RingSimulation", "BoundComparison", "simulate_ring_workload"]

#: optional per-terminal source phase, in cell times
PhaseFn = Callable[[Tuple[int, int]], float]


@dataclass(frozen=True)
class BoundComparison:
    """Observed-vs-promised delays for one simulated workload."""

    rows: Tuple[Tuple[str, float, float], ...]   # (name, observed, bound)

    @property
    def all_within_bounds(self) -> bool:
        """True when no connection exceeded its analytic bound."""
        return all(observed <= bound + 1e-9
                   for _name, observed, bound in self.rows)

    @property
    def worst_margin(self) -> float:
        """Smallest (bound - observed) across connections."""
        return min(bound - observed
                   for _name, observed, bound in self.rows)

    def violations(self) -> List[Tuple[str, float, float]]:
        """Connections whose observation exceeded the bound (expect none)."""
        return [(name, observed, bound)
                for name, observed, bound in self.rows
                if observed > bound + 1e-9]


class RingSimulation:
    """A built-and-run RTnet simulation plus its bookkeeping."""

    def __init__(self, sim: SimNetwork,
                 connections: Dict[str, Tuple[int, int, int]]):
        #: name -> (source node, slot, priority)
        self.sim = sim
        self.connections = connections

    def compare(self, analysis: RingAnalysis) -> BoundComparison:
        """Observed worst e2e delays against the analytic e2e bounds."""
        rows = []
        for name, (node, _slot, priority) in sorted(self.connections.items()):
            observed = self.sim.metrics.stats(name).max_e2e_delay
            bound = float(analysis.e2e_bound(node, priority))
            rows.append((name, observed, bound))
        return BoundComparison(tuple(rows))

    @property
    def total_delivered(self) -> int:
        """Cells delivered across all broadcasts."""
        return self.sim.metrics.total_delivered()

    @property
    def total_drops(self) -> int:
        """Cells dropped network-wide (zero for admitted workloads)."""
        return self.sim.total_drops()


def simulate_ring_workload(workload: TrafficAssignment,
                           ring_nodes: int,
                           terminals_per_node: int,
                           horizon: float,
                           phases: Optional[PhaseFn] = None,
                           unbounded_queues: bool = True,
                           greedy_cells: int = 50,
                           drain: float = 800.0) -> RingSimulation:
    """Build, populate and run an RTnet ring simulation.

    CBR terminals get periodic sources; VBR terminals get the greedy
    worst-case source of equation (1) emitting ``greedy_cells`` cells.
    ``phases`` offsets each source's start (default: all aligned -- the
    adversarial choice).  The simulation runs ``drain`` cell times past
    the emission horizon so everything in flight is delivered.
    """
    net = build_rtnet(ring_nodes, terminals_per_node)
    sim = SimNetwork(net, unbounded_queues=unbounded_queues)
    connections: Dict[str, Tuple[int, int, int]] = {}
    for (node, slot), (params, priority) in sorted(workload.items()):
        name = f"bcast-{terminal_name(node, slot)}"
        route = broadcast_route(net, node, slot)
        sim.attach_route(name, route, priority)
        phase = 0.0 if phases is None else float(phases((node, slot)))
        if params.is_cbr:
            CbrSource(sim.engine, name, float(params.pcr),
                      sim.ingress(name), phase=phase, until=horizon)
        else:
            GreedyVbrSource(sim.engine, name, params, greedy_cells,
                            sim.ingress(name), phase=phase)
        connections[name] = (node, slot, priority)
    sim.run(until=horizon + drain)
    return RingSimulation(sim, connections)
