"""Cyclic-transmission traffic classes (Table 1).

RTnet's cyclic transmission implements a distributed shared memory:
every terminal periodically broadcasts its portion of the shared memory
and receives the other portions.  Three service classes exist; each is
fully specified by its update period, its maximum allowable update
delay, and the maximum shared-memory image size -- the bandwidth column
of Table 1 follows from those by cell arithmetic, which
:func:`required_bandwidth_mbps` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..units import RTNET_LINK, LinkRate, bandwidth_for_cyclic

__all__ = [
    "CyclicClass",
    "HIGH_SPEED",
    "MEDIUM_SPEED",
    "LOW_SPEED",
    "TABLE_1",
    "required_bandwidth_mbps",
]


@dataclass(frozen=True)
class CyclicClass:
    """One row of Table 1.

    Attributes
    ----------
    name:
        Class label ("high speed", ...).
    period_ms:
        Shared-memory update period.
    delay_ms:
        Maximum allowable update delay (the hard deadline).
    memory_kb:
        Maximum shared-memory image size in KB (1 KB = 1024 bytes).
    paper_bandwidth_mbps:
        The bandwidth figure the paper prints, kept for comparison.
    """

    name: str
    period_ms: float
    delay_ms: float
    memory_kb: int
    paper_bandwidth_mbps: float

    @property
    def memory_bytes(self) -> int:
        return self.memory_kb * 1024

    @property
    def period_seconds(self) -> float:
        return self.period_ms * 1e-3

    def required_bandwidth_bps(self) -> float:
        """Line bandwidth needed to ship the image every period.

        Includes the 53/48 cell header overhead -- what admission
        control must actually reserve on the wire.
        """
        return bandwidth_for_cyclic(self.memory_bytes, self.period_seconds)

    def payload_bandwidth_bps(self) -> float:
        """Application-payload bandwidth (no cell overhead).

        This is the convention of Table 1's bandwidth column (e.g.
        4 KB / 1 ms = 32.8 -> "32 Mbps").
        """
        return self.memory_bytes * 8 / self.period_seconds

    def normalized_rate(self, link: LinkRate = RTNET_LINK) -> float:
        """The class's aggregate PCR normalized to the RTnet link."""
        return link.normalized_rate(self.required_bandwidth_bps())

    def delay_cell_times(self, link: LinkRate = RTNET_LINK) -> float:
        """The deadline expressed in cell times."""
        return link.ms_to_cell_times(self.delay_ms)


HIGH_SPEED = CyclicClass("high speed", period_ms=1.0, delay_ms=1.0,
                         memory_kb=4, paper_bandwidth_mbps=32.0)
MEDIUM_SPEED = CyclicClass("medium speed", period_ms=30.0, delay_ms=30.0,
                           memory_kb=64, paper_bandwidth_mbps=17.5)
LOW_SPEED = CyclicClass("low speed", period_ms=150.0, delay_ms=150.0,
                        memory_kb=128, paper_bandwidth_mbps=6.8)

#: Table 1, keyed by class name.
TABLE_1: Dict[str, CyclicClass] = {
    cls.name: cls for cls in (HIGH_SPEED, MEDIUM_SPEED, LOW_SPEED)
}


def required_bandwidth_mbps(cls: CyclicClass) -> float:
    """The Table 1 bandwidth column, recomputed from period and size.

    Table 1 reports payload bandwidth; use
    :meth:`CyclicClass.required_bandwidth_bps` for the on-the-wire rate
    with cell overhead.
    """
    return cls.payload_bandwidth_bps() / 1e6
