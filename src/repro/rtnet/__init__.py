"""RTnet: the ATM-based plant-control network of Section 5.

Star-ring topology builder, cyclic-transmission traffic classes
(Table 1), symmetric/asymmetric workload generators, and the evaluation
drivers that regenerate Figures 10-13.
"""

from .constants import (
    CYCLIC_PRIORITY,
    CYCLIC_QUEUE_CELLS,
    HIGH_SPEED_DELAY_CELLS,
    MAX_TERMINALS_PER_NODE,
    NODE_DELAY_BOUND,
    NODE_DELAY_MICROSECONDS,
    RING_NODES,
)
from .cyclic import (
    HIGH_SPEED,
    LOW_SPEED,
    MEDIUM_SPEED,
    TABLE_1,
    CyclicClass,
    required_bandwidth_mbps,
)
from .evaluation import (
    RingAnalysis,
    asymmetric_capacity_curve,
    establish_workload,
    priority_capacity_curve,
    soft_hard_capacity_curve,
    symmetric_delay_curve,
    vbr_capacity_curve,
    vbr_workload,
)
from .failover import (
    MigrationStudy,
    evacuate_switch,
    failover_capacity,
    failover_capacity_curve,
    failover_migration_study,
    wrapped_analysis,
    wrapped_ring_size,
    wrapped_workload,
)
from .simulate import (
    BoundComparison,
    RingSimulation,
    simulate_ring_workload,
)
from .topology import broadcast_route, build_rtnet, ring_node, terminal_name
from .workloads import (
    TrafficAssignment,
    asymmetric_workload,
    plant_mix_workload,
    symmetric_workload,
)

__all__ = [
    "RING_NODES",
    "MAX_TERMINALS_PER_NODE",
    "CYCLIC_QUEUE_CELLS",
    "CYCLIC_PRIORITY",
    "NODE_DELAY_BOUND",
    "NODE_DELAY_MICROSECONDS",
    "HIGH_SPEED_DELAY_CELLS",
    "CyclicClass",
    "HIGH_SPEED",
    "MEDIUM_SPEED",
    "LOW_SPEED",
    "TABLE_1",
    "required_bandwidth_mbps",
    "build_rtnet",
    "broadcast_route",
    "ring_node",
    "terminal_name",
    "TrafficAssignment",
    "symmetric_workload",
    "asymmetric_workload",
    "RingAnalysis",
    "establish_workload",
    "symmetric_delay_curve",
    "asymmetric_capacity_curve",
    "priority_capacity_curve",
    "soft_hard_capacity_curve",
    "vbr_workload",
    "vbr_capacity_curve",
    "wrapped_ring_size",
    "wrapped_workload",
    "wrapped_analysis",
    "evacuate_switch",
    "failover_capacity",
    "failover_capacity_curve",
    "MigrationStudy",
    "failover_migration_study",
    "plant_mix_workload",
    "RingSimulation",
    "BoundComparison",
    "simulate_ring_workload",
]
