"""RTnet platform constants (Section 5).

RTnet is an ATM-based plant-control LAN: a star-ring of up to 16 ring
nodes connected by dual 155 Mbps links, each ring node hosting up to 16
terminals.  Every ring node gives cyclic (hard real-time) traffic a
highest-priority FIFO queue of 32 cells, so each node advertises a
32-cell-time queueing delay bound -- about 87 microseconds -- and
contributes at most that much delay variation to connections through it.
"""

from __future__ import annotations

from ..units import RTNET_LINK

#: Ring nodes in the reference configuration.
RING_NODES = 16

#: Maximum terminals attachable to one ring node.
MAX_TERMINALS_PER_NODE = 16

#: Highest-priority FIFO queue size for cyclic traffic, in cells.
CYCLIC_QUEUE_CELLS = 32

#: Per-node delay bound in cell times (equals the queue size).
NODE_DELAY_BOUND = CYCLIC_QUEUE_CELLS

#: Per-node worst-case delay contribution in microseconds (paper: 87).
NODE_DELAY_MICROSECONDS = CYCLIC_QUEUE_CELLS * RTNET_LINK.cell_time_seconds * 1e6

#: The 1 ms end-to-end requirement of high-speed cyclic traffic,
#: in cell times (paper: "370 cell times (1 ms)").
HIGH_SPEED_DELAY_CELLS = RTNET_LINK.ms_to_cell_times(1.0)

#: Priority level used for cyclic traffic (highest).
CYCLIC_PRIORITY = 0
