"""Cyclic-traffic workload generators for the Section 5 evaluation.

A workload assigns every terminal of an RTnet a traffic descriptor and
a priority:

* the **symmetric** pattern of Figure 10 -- the cyclic shared memory is
  divided equally, every terminal broadcasts at ``PCR = B / (R * N)``;
* the **asymmetric** pattern of Figures 11-13 -- one hot terminal
  generates a fraction ``p`` of the total load ``B`` and the remaining
  ``R * N - 1`` terminals split the rest equally.

Workloads are plain mappings ``(node, slot) -> (VBRParameters,
priority)`` so both evaluation paths -- the direct ring analysis and the
full incremental CAC -- consume the same object.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.traffic import VBRParameters, cbr
from ..exceptions import TrafficModelError
from .constants import CYCLIC_PRIORITY

__all__ = [
    "TrafficAssignment",
    "symmetric_workload",
    "asymmetric_workload",
    "plant_mix_workload",
]

#: (node index, terminal slot) -> (traffic descriptor, priority)
TrafficAssignment = Dict[Tuple[int, int], Tuple[VBRParameters, int]]


def symmetric_workload(total_load: float, ring_nodes: int,
                       terminals_per_node: int,
                       priority: int = CYCLIC_PRIORITY) -> TrafficAssignment:
    """Every terminal broadcasts an equal share of the total load.

    ``total_load`` is the aggregate normalized bandwidth ``B``; each of
    the ``ring_nodes * terminals_per_node`` terminals gets a CBR
    connection with ``PCR = B / (ring_nodes * terminals_per_node)``.
    """
    count = ring_nodes * terminals_per_node
    if not 0 < total_load <= 1:
        raise TrafficModelError(
            f"total load must be in (0, 1], got {total_load}"
        )
    share = total_load / count
    return {
        (node, slot): (cbr(share), priority)
        for node in range(ring_nodes)
        for slot in range(terminals_per_node)
    }


def plant_mix_workload(ring_nodes: int,
                       sets_per_node: int = 1,
                       priorities: Tuple[int, int, int] = (0, 0, 0),
                       ) -> TrafficAssignment:
    """The full Table 1 traffic mix: all three cyclic classes at once.

    Every ring node hosts ``sets_per_node`` sets of three terminals, one
    per cyclic class (high / medium / low speed); each class's
    network-wide bandwidth is the Table 1 figure (with cell overhead,
    since that is what rides the wire), divided equally over the class's
    terminals.  ``priorities`` assigns a static priority to each class,
    in Table 1 order -- ``(0, 0, 0)`` is the single-priority operation
    the paper says suffices for small configurations.

    Terminal slots: slot ``3*s + c`` is set ``s``'s class-``c`` terminal.
    """
    from ..units import RTNET_LINK
    from .cyclic import HIGH_SPEED, LOW_SPEED, MEDIUM_SPEED
    if sets_per_node < 1:
        raise TrafficModelError(
            f"need at least one class set per node, got {sets_per_node}"
        )
    classes = (HIGH_SPEED, MEDIUM_SPEED, LOW_SPEED)
    workload: TrafficAssignment = {}
    for node in range(ring_nodes):
        for set_index in range(sets_per_node):
            for class_index, cls in enumerate(classes):
                rate = RTNET_LINK.normalized_rate(
                    cls.required_bandwidth_bps()
                ) / (ring_nodes * sets_per_node)
                slot = 3 * set_index + class_index
                workload[(node, slot)] = (
                    cbr(rate), priorities[class_index])
    return workload


def asymmetric_workload(total_load: float, hot_fraction: float,
                        ring_nodes: int, terminals_per_node: int,
                        hot_priority: int = CYCLIC_PRIORITY,
                        other_priority: int = CYCLIC_PRIORITY,
                        hot_node: int = 0,
                        hot_slot: int = 0) -> TrafficAssignment:
    """One hot terminal generates ``hot_fraction`` of the total load.

    The remaining terminals split ``(1 - hot_fraction) * total_load``
    equally.  ``hot_fraction`` of 0 degenerates to (almost) the
    symmetric pattern; 1 concentrates everything on the hot terminal.
    Raises :class:`TrafficModelError` when any single terminal would
    need a rate above the link rate -- callers doing capacity searches
    treat that as infeasible.
    """
    count = ring_nodes * terminals_per_node
    if not 0 < total_load <= 1:
        raise TrafficModelError(
            f"total load must be in (0, 1], got {total_load}"
        )
    if not 0 <= hot_fraction <= 1:
        raise TrafficModelError(
            f"hot fraction must be in [0, 1], got {hot_fraction}"
        )
    hot_rate = total_load * hot_fraction
    if count > 1:
        other_rate = total_load * (1 - hot_fraction) / (count - 1)
    else:
        other_rate = 0.0
        hot_rate = total_load
    workload: TrafficAssignment = {}
    for node in range(ring_nodes):
        for slot in range(terminals_per_node):
            if (node, slot) == (hot_node, hot_slot):
                if hot_rate <= 0:
                    continue  # a zero-rate hot terminal sends nothing
                workload[(node, slot)] = (cbr(hot_rate), hot_priority)
            else:
                if other_rate <= 0:
                    continue
                workload[(node, slot)] = (cbr(other_rate), other_priority)
    return workload
