"""Lightweight tracing spans for the admission walk and friends.

A span is one timed, tagged region of work; spans nest, so a full
``NetworkCAC.setup`` yields a tree: the root covers the whole walk and
one child covers each hop's reservation (with the switch-level
admission check nested inside it).

The tracer keeps a plain stack -- the protocol code is synchronous and
single-threaded -- and stamps times from the observability clock
(:mod:`repro.obs.clock`), so injecting a
:class:`~repro.robustness.retry.ManualClock` makes whole trees
deterministic.  When tracing is off the global tracer is
:data:`NULL_TRACER`, whose ``span()`` hands back one shared no-op
context manager.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from . import clock as _clock

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span",
    "get_tracer",
    "set_tracer",
]


class Span:
    """One timed, tagged region of work in a span tree."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: Dict[str, object], start: float):
        self.name = name
        self.tags = tags
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed clock time; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def tag(self, **tags: object) -> "Span":
        """Attach or overwrite tags mid-span; returns self for chaining."""
        self.tags.update(tags)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, depth-first."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        tags = ", ".join(f"{k}={v}" for k, v in sorted(self.tags.items()))
        return (f"Span({self.name}"
                + (f" [{tags}]" if tags else "")
                + f" {self.start}..{self.end}, "
                  f"children={len(self.children)})")


class _ActiveSpan:
    """Context manager driving one span's lifecycle on the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        stack = self._tracer._stack
        if stack:
            stack[-1].children.append(self._span)
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end = self._tracer.clock.now()
        stack = self._tracer._stack
        # Tolerate a mispaired exit instead of corrupting the stack.
        if stack and stack[-1] is self._span:
            stack.pop()
        if not stack:
            self._tracer.roots.append(self._span)


class Tracer:
    """Collects finished span trees.

    Parameters
    ----------
    clock:
        Time source (``now() -> float``); defaults to the global
        observability clock at creation time.
    keep:
        Cap on retained root spans (oldest evicted first); ``None``
        keeps everything.
    """

    enabled = True

    def __init__(self, clock=None, keep: Optional[int] = None):
        self.clock = clock or _clock.get_clock()
        self.keep = keep
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **tags: object) -> _ActiveSpan:
        """Open a span as a context manager; yields the :class:`Span`."""
        if self.keep is not None and len(self.roots) >= self.keep:
            del self.roots[: len(self.roots) - self.keep + 1]
        return _ActiveSpan(self, Span(name, tags, self.clock.now()))

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop every collected root (open spans are unaffected)."""
        self.roots.clear()

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, open={len(self._stack)})"


class _NullSpan:
    """The span handed out while tracing is disabled."""

    __slots__ = ()
    name = "null"
    tags: Dict[str, object] = {}
    start = 0.0
    end = 0.0
    duration = 0.0
    children: List[Span] = []

    def tag(self, **tags: object) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []


class _NullContext:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: collects nothing, allocates nothing."""

    __slots__ = ()
    enabled = False
    roots: List[Span] = []

    def span(self, name: str, **tags: object) -> _NullContext:
        return _NULL_CONTEXT

    def current(self) -> None:
        return None

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

_tracer = NULL_TRACER


def get_tracer():
    """The tracer instrumented code currently reports to."""
    return _tracer


def set_tracer(tracer):
    """Install a tracer (or :data:`NULL_TRACER`); returns the old one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def span(name: str, **tags: object):
    """Open a span on the global tracer (no-op when tracing is off)."""
    return _tracer.span(name, **tags)
