"""Observability: metrics, tracing spans and structured events.

The CAC runs online inside every switch, so the operationally
interesting questions -- admission-check latency, cache hit rates,
per-hop retransmits, rollback counts -- need *measured* answers, not
just analytical bounds.  This package provides them without any
third-party dependency:

* :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket histograms
  behind a swappable global registry (no-op when disabled);
* :mod:`repro.obs.spans` -- nesting tracing spans, so one
  ``NetworkCAC.setup`` yields a hop-by-hop span tree;
* :mod:`repro.obs.events` -- the structured event bus unifying the
  signaling trace, cell journeys and journal records;
* :mod:`repro.obs.export` -- JSON-lines, Prometheus text exposition and
  console-table exporters.

Everything is off by default (the global registry/tracer are the shared
null objects, so instrumented hot paths cost one attribute check).
:func:`enable` switches a live registry and tracer in; timestamps come
from the injectable observability clock, so passing a
:class:`~repro.robustness.retry.ManualClock` makes spans and latency
histograms fully deterministic.

Usage::

    from repro import obs
    registry, tracer = obs.enable()
    ...  # run setups, simulations, recoveries
    print(obs.export.to_prometheus(registry))
    obs.disable()
"""

from __future__ import annotations

from typing import Optional, Tuple

from . import clock, events, export, metrics, spans
from .clock import (
    Clock,
    EngineClock,
    ManualClock,
    SystemClock,
    get_clock,
    set_clock,
)
from .events import Event, EventBus, EventLog, get_bus, set_bus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    METRIC_HELP,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
)
from .spans import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer, span

__all__ = [
    "clock", "events", "export", "metrics", "spans",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "METRIC_HELP", "get_registry", "set_registry",
    "Span", "Tracer", "NullTracer", "NULL_TRACER", "span",
    "get_tracer", "set_tracer",
    "Event", "EventBus", "EventLog", "get_bus", "set_bus",
    "Clock", "SystemClock", "ManualClock", "EngineClock",
    "get_clock", "set_clock",
    "enable", "disable", "enabled",
]


def enable(clock_source=None,
           keep_spans: Optional[int] = None) -> Tuple[MetricsRegistry, Tracer]:
    """Switch observability on: fresh registry + tracer, returned as a pair.

    ``clock_source`` (any object with ``now() -> float``) becomes the
    observability clock for spans, events and timing histograms;
    omitted, the current clock (wall time by default) stays in place.
    """
    if clock_source is not None:
        set_clock(clock_source)
    registry = MetricsRegistry()
    tracer = Tracer(keep=keep_spans)
    set_registry(registry)
    set_tracer(tracer)
    return registry, tracer


def disable() -> None:
    """Switch observability off (null registry and tracer)."""
    set_registry(NULL_REGISTRY)
    set_tracer(NULL_TRACER)


def enabled() -> bool:
    """True when a live metrics registry is installed."""
    return get_registry().enabled
