"""The structured event bus unifying the library's ad-hoc records.

Before this module existed the repo had two divergent trace formats --
:class:`~repro.network.signaling.SignalingTrace` message lists and
:class:`~repro.sim.trace.CellTracer` journey logs -- plus journal
entries that were not observable at all.  They now all flow through one
:class:`EventBus` as :class:`Event` records with a common shape
``(category, name, time, fields)``, so a single subscriber (a JSONL
sink, a test assertion, a live dashboard) sees everything.

Emitting to a bus with no subscribers is a length check and a return;
the legacy APIs stay as thin adapters on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from . import clock as _clock

__all__ = ["Event", "EventBus", "EventLog", "get_bus", "set_bus"]


@dataclass(frozen=True)
class Event:
    """One structured observation.

    ``category`` groups a source subsystem (``"signaling"``,
    ``"journal"``, ``"sim.cell"``, ...), ``name`` the event type within
    it, ``time`` the observability-clock (or caller-supplied) stamp and
    ``fields`` the payload.
    """

    category: str
    name: str
    time: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, ready for JSON serialization."""
        return {
            "category": self.category,
            "name": self.name,
            "time": self.time,
            "fields": dict(self.fields),
        }


class EventBus:
    """Synchronous publish/subscribe fan-out for :class:`Event` records."""

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[Callable[[Event], None]] = []

    @property
    def has_subscribers(self) -> bool:
        """True when at least one subscriber would see an emit."""
        return bool(self._subscribers)

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[], None]:
        """Register a subscriber; returns a zero-arg unsubscribe."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass
        return unsubscribe

    def emit(self, category: str, name: str, *,
             time: Optional[float] = None,
             **fields: Any) -> Optional[Event]:
        """Build and publish an event; returns it (None when unheard).

        With no subscribers nothing is allocated -- emit() costs a
        truthiness check, which is what lets the adapters emit
        unconditionally.
        """
        if not self._subscribers:
            return None
        if time is None:
            time = _clock.get_clock().now()
        event = Event(category, name, time, fields)
        self.publish(event)
        return event

    def publish(self, event: Event) -> None:
        """Deliver a pre-built event to every subscriber, in order."""
        for fn in tuple(self._subscribers):
            fn(event)

    def __repr__(self) -> str:
        return f"EventBus(subscribers={len(self._subscribers)})"


class EventLog:
    """A list-collecting subscriber (tests, the CLI, quick audits)."""

    def __init__(self, bus: Optional[EventBus] = None,
                 keep: Optional[int] = None):
        self.keep = keep
        self.events: List[Event] = []
        self._unsubscribe = (bus or get_bus()).subscribe(self._collect)

    def _collect(self, event: Event) -> None:
        self.events.append(event)
        if self.keep is not None and len(self.events) > self.keep:
            del self.events[: len(self.events) - self.keep]

    def of_category(self, category: str) -> List[Event]:
        """Every collected event of one category, in order."""
        return [e for e in self.events if e.category == category]

    def close(self) -> None:
        """Stop collecting (the gathered events stay readable)."""
        self._unsubscribe()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        return f"EventLog(events={len(self.events)})"


_bus = EventBus()


def get_bus() -> EventBus:
    """The bus the library's adapters emit to."""
    return _bus


def set_bus(bus: EventBus) -> EventBus:
    """Install a bus; returns the previous one."""
    global _bus
    previous = _bus
    _bus = bus
    return previous
