"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately minimal and dependency-free.  Instrumented
code asks the global registry for an instrument by ``(name, labels)``
and bumps it; when observability is off the global registry is the
shared :data:`NULL_REGISTRY`, whose instruments are no-ops and whose
``enabled`` flag lets hot paths skip instrumentation with a single
attribute check.

Hot paths that cannot afford a labelled lookup per call (the
:class:`~repro.core.switch_cac.SwitchCAC` cache getters, the kernel
path counter) bind their instrument handles once and re-bind only when
:data:`_generation` changes -- every :func:`set_registry` bumps it, so a
swapped registry invalidates all cached handles without any back
references.

The catalogue of every metric the library emits lives in
:data:`METRIC_HELP`; the Prometheus exporter uses it for ``# HELP``
lines and ``docs/observability.md`` documents the same names.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "SIGNALING_BUCKETS",
    "METRIC_HELP",
    "get_registry",
    "set_registry",
]

#: Wall-clock latency buckets in seconds (admission checks run in the
#: microsecond-to-millisecond range on the reference container).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

#: Stream-size buckets in breakpoints (aggregates on a loaded port run
#: to a few hundred).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                   1024)

#: Simulated-time buckets for signaling round trips (the default hop
#: timeout is 8.0 time units; backoff can push a retried delivery far
#: beyond it).
SIGNALING_BUCKETS: Tuple[float, ...] = (0.5, 1, 2, 4, 8, 16, 32, 64, 128)

#: name -> help text for every metric the library emits.
METRIC_HELP: Dict[str, str] = {
    "cac_checks_total":
        "Admission checks (Steps 2-6) run at a switch.",
    "cac_check_rejections_total":
        "Admission checks whose result violated at least one bound.",
    "cac_check_seconds":
        "Wall-clock latency of one switch admission check.",
    "cac_admits_total":
        "One-shot admit() commitments at a switch.",
    "cac_reserves_total":
        "Phase-1 reservations held at a switch.",
    "cac_commits_total":
        "Phase-2 commitments confirmed at a switch.",
    "cac_rollbacks_total":
        "Idempotent rollbacks that actually released state.",
    "cac_releases_total":
        "Committed legs torn down via release().",
    "cac_reservation_expiries_total":
        "Pending reservations discarded by the TTL hold timer.",
    "cac_cache_hits_total":
        "Derived-aggregate cache lookups served from cache.",
    "cac_cache_misses_total":
        "Derived-aggregate cache lookups that rebuilt from scratch.",
    "cac_incremental_updates_total":
        "Cached aggregates patched by one +/- delta in _apply().",
    "cac_recoveries_total":
        "Journal replays performed by recover().",
    "cac_recoveries_verified_total":
        "Recoveries whose caches passed verify_consistency().",
    "cac_recovery_replayed_entries":
        "Journal entries replayed by the most recent recover().",
    "kernel_path_total":
        "Delay/backlog bound evaluations by execution path "
        "(numpy fast path vs exact scalar).",
    "network_setups_total":
        "Route-level setup walks by outcome "
        "(accepted/rejected/timeout/unsatisfiable).",
    "network_setup_time":
        "Simulated time one setup walk consumed (timeouts and backoff "
        "advance the injected clock).",
    "network_teardowns_total":
        "Route-level teardowns of established connections.",
    "signaling_messages_total":
        "Signaling messages delivered successfully, by phase.",
    "signaling_retransmits_total":
        "Signaling retransmissions after a timed-out attempt, by phase.",
    "signaling_timeouts_total":
        "Deliveries abandoned after the retry budget ran out, by phase.",
    "signaling_faults_total":
        "Injected faults observed on delivery attempts, by kind.",
    "signaling_hop_rtt":
        "Simulated round-trip time of one successful delivery "
        "(includes backoff of earlier attempts).",
    "signaling_fast_fails_total":
        "Deliveries fast-failed by an open circuit breaker, by phase "
        "(zero timeouts and zero retransmissions spent).",
    "cac_breaker_state":
        "Circuit breaker state per signaling hop "
        "(0=closed, 1=half-open, 2=open).",
    "cac_breaker_transitions_total":
        "Circuit breaker state transitions, by entered state.",
    "cac_breaker_fast_fails_total":
        "Deliveries refused by an open breaker (fast-fail decisions).",
    "cac_failure_detections_total":
        "Targets the health monitor declared down, by kind "
        "(link/switch).",
    "cac_failure_detection_time":
        "Gap between a link's ground-truth failure instant and the "
        "health monitor declaring it down (simulated time).",
    "cac_migrations_total":
        "Live-migration outcomes: migrated (moved to a detour), failed "
        "(one migration attempt refused), dropped/kept (policy fallback "
        "applied to an unmigratable victim).",
    "journal_ops_total":
        "Entries appended to admission journals, by op.",
    "churn_arrivals_total":
        "Connection arrivals generated by the churn engine, by class.",
    "churn_outcomes_total":
        "Arrival outcomes (admitted/blocked) under churn, by class.",
    "churn_retries_total":
        "Extra candidate routes walked beyond the first (crankback "
        "retries), by class.",
    "churn_departures_total":
        "Churn departures by outcome (departed/dropped/absent).",
    "churn_active_connections":
        "High-water mark of concurrently held churn connections.",
    "churn_blocking_probability":
        "Blocking probability of the most recent churn report, by class.",
    "churn_carried_erlangs":
        "Carried load (time-averaged held connections) of the most "
        "recent churn report.",
    "sim_events_processed":
        "Events executed by the discrete-event engine so far.",
    "sim_cells_delivered_total":
        "Cells delivered to simulation sinks.",
    "sim_worst_e2e_delay":
        "Largest observed end-to-end queueing delay (cell times).",
}


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({_sample_name(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, worst-seen, ...)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the largest value ever seen (worst-case trackers)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({_sample_name(self.name, self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram with a Prometheus-compatible layout.

    ``bounds`` are the inclusive upper bucket edges; an implicit
    ``+Inf`` bucket catches everything beyond the last edge.  Bucket
    counts are stored per-bucket (not cumulative); the exporter derives
    the cumulative form.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 bounds: Tuple[float, ...]):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ``+Inf`` last."""
        edges = list(self.bounds) + [float("inf")]
        total = 0
        out = []
        for edge, bucket in zip(edges, self.bucket_counts):
            total += bucket
            out.append((edge, total))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({_sample_name(self.name, self.labels)}: "
                f"count={self.count}, sum={self.sum})")


def _sample_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v!r}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _label_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Holds every instrument, keyed by ``(name, sorted labels)``.

    A name is bound to one instrument kind forever (asking for a
    counter named like an existing gauge raises), which is what keeps
    the export formats coherent.
    """

    __slots__ = ("_instruments", "_kinds")
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                                object] = {}
        self._kinds: Dict[str, str] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram for ``(name, labels)``; ``buckets`` only
        matters on first creation (defaults to :data:`LATENCY_BUCKETS`).
        """
        self._check_kind(name, "histogram")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
            instrument = Histogram(name, key[1], bounds)
            self._instruments[key] = instrument
        return instrument  # type: ignore[return-value]

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        self._check_kind(name, cls.kind)
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        return instrument

    def _check_kind(self, name: str, kind: str) -> None:
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register as a {kind}"
            )

    # -- introspection -------------------------------------------------

    def kind_of(self, name: str) -> Optional[str]:
        """The instrument kind bound to ``name``, if any."""
        return self._kinds.get(name)

    def families(self) -> List[Tuple[str, str, List[object]]]:
        """``(name, kind, instruments)`` groups, sorted by name then labels."""
        grouped: Dict[str, List[object]] = {}
        for (name, _labels), instrument in self._instruments.items():
            grouped.setdefault(name, []).append(instrument)
        return [
            (name, self._kinds[name],
             sorted(grouped[name], key=lambda i: i.labels))
            for name in sorted(grouped)
        ]

    def samples(self) -> List[Dict[str, object]]:
        """Every instrument as one plain-data record (JSONL rows)."""
        out: List[Dict[str, object]] = []
        for name, kind, instruments in self.families():
            for instrument in instruments:
                record: Dict[str, object] = {
                    "name": name,
                    "kind": kind,
                    "labels": dict(instrument.labels),
                }
                if kind == "histogram":
                    record["count"] = instrument.count
                    record["sum"] = instrument.sum
                    record["buckets"] = [
                        ["+Inf" if edge == float("inf") else edge, total]
                        for edge, total in instrument.cumulative()
                    ]
                else:
                    record["value"] = instrument.value
                out.append(record)
        return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested ``{name: {rendered-labels: value-or-summary}}`` view."""
        snap: Dict[str, Dict[str, object]] = {}
        for name, kind, instruments in self.families():
            family: Dict[str, object] = {}
            for instrument in instruments:
                label = ",".join(f"{k}={v}" for k, v in instrument.labels)
                if kind == "histogram":
                    family[label] = {"count": instrument.count,
                                     "sum": instrument.sum}
                else:
                    family[label] = instrument.value
            snap[name] = family
        return snap

    def merge_snapshot(self, samples: Iterable[Mapping[str, object]]) -> None:
        """Fold another registry's :meth:`samples` into this one.

        The merge discipline (what a multi-process fan-out needs --
        worker registries are serialized as plain-data sample records
        and folded back into the parent):

        * **counters** add -- work done anywhere is work done;
        * **gauges** keep the maximum -- the library's gauges are
          worst-seen trackers (``sim_worst_e2e_delay``) or progress
          high-water marks, for which max is the meaningful union;
        * **histograms** merge bucket-by-bucket (counts, sum and count
          add); the bucket layouts must match exactly or the merge
          raises :class:`ValueError`.

        Kind conflicts (a worker counter colliding with a local gauge of
        the same name) raise, exactly as direct registration would.
        """
        for record in samples:
            name = str(record["name"])
            kind = record["kind"]
            labels: Mapping[str, object] = record.get("labels") or {}
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set_max(record["value"])
            elif kind == "histogram":
                self._merge_histogram(name, labels, record)
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    def _merge_histogram(self, name: str, labels: Mapping[str, object],
                         record: Mapping[str, object]) -> None:
        buckets = record["buckets"]  # [[edge-or-"+Inf", cumulative], ...]
        bounds = tuple(
            float(edge) for edge, _total in buckets if edge != "+Inf"
        )
        histogram = self.histogram(name, buckets=bounds or None, **labels)
        if histogram.bounds != (bounds or LATENCY_BUCKETS):
            raise ValueError(
                f"histogram {name!r} bucket layout mismatch: "
                f"{histogram.bounds} vs {bounds}"
            )
        previous = 0
        for index, (_edge, total) in enumerate(buckets):
            histogram.bucket_counts[index] += int(total) - previous
            previous = int(total)
        histogram.count += int(record["count"])
        histogram.sum += float(record["sum"])

    def value(self, name: str, **labels: object) -> float:
        """Current value of one counter/gauge (0 when never touched)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0
        return instrument.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of one counter family over every label combination."""
        total = 0.0
        for (sample_name, _labels), instrument in self._instruments.items():
            if sample_name == name and isinstance(instrument, Counter):
                total += instrument.value
        return total

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    name = "null"
    labels: Tuple[Tuple[str, str], ...] = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every instrument is the shared no-op.

    ``enabled`` is ``False`` so hot paths can skip label construction
    and lookups with a single attribute check; code that does not guard
    still works, it just bumps the black-hole instrument.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> List[Tuple[str, str, List[object]]]:
        return []

    def samples(self) -> List[Dict[str, object]]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def merge_snapshot(self,
                       samples: Iterable[Mapping[str, object]]) -> None:
        pass

    def value(self, name: str, **labels: object) -> float:
        return 0

    def total(self, name: str) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"


NULL_REGISTRY = NullRegistry()

_registry = NULL_REGISTRY
#: Bumped by every :func:`set_registry`; hot paths cache instrument
#: handles tagged with the generation they were bound under and re-bind
#: when it moves.
_generation = 0


def get_registry():
    """The registry instrumented code currently reports to."""
    return _registry


def set_registry(registry):
    """Install a registry (or :data:`NULL_REGISTRY`); returns the old one."""
    global _registry, _generation
    previous = _registry
    _registry = registry
    _generation += 1
    return previous
