"""Exporters: JSON-lines, Prometheus text exposition, console tables.

Three ways out of the process for the same registry:

* :func:`metrics_to_jsonl` / :func:`samples_from_jsonl` -- one JSON
  object per instrument, lossless round trip;
* :func:`to_prometheus` -- the text exposition format scrape endpoints
  serve (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series);
* :func:`metrics_table` -- an aligned console table for humans.

Plus :func:`format_span_tree` for tracer output and
:class:`JsonlEventSink`, a bus subscriber streaming every
:class:`~repro.obs.events.Event` as a JSON line.
"""

from __future__ import annotations

import json
import math
import re
from typing import IO, Dict, List, Optional, Union

from . import events as _events
from . import metrics as _metrics
from .events import Event, EventBus
from .spans import Span

__all__ = [
    "metrics_snapshot",
    "metrics_to_jsonl",
    "samples_from_jsonl",
    "to_prometheus",
    "metrics_table",
    "format_span_tree",
    "JsonlEventSink",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _registry(registry):
    return registry if registry is not None else _metrics.get_registry()


# ----------------------------------------------------------------------
# JSON / JSONL
# ----------------------------------------------------------------------

def metrics_snapshot(registry=None) -> Dict[str, Dict[str, object]]:
    """Nested plain-dict snapshot (see ``MetricsRegistry.snapshot``)."""
    return _registry(registry).snapshot()


def metrics_to_jsonl(registry=None) -> str:
    """One JSON object per instrument, newline separated."""
    return "\n".join(
        json.dumps(sample, sort_keys=True)
        for sample in _registry(registry).samples()
    )


def samples_from_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse :func:`metrics_to_jsonl` output back into sample records."""
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _format_number(value) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _label_block(labels, extra=()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in pairs
    )
    return "{" + inner + "}"


def to_prometheus(registry=None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for name, kind, instruments in _registry(registry).families():
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid Prometheus metric name {name!r}")
        help_text = _metrics.METRIC_HELP.get(name, name.replace("_", " "))
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for instrument in instruments:
            for key, _value in instrument.labels:
                if not _LABEL_RE.match(key):
                    raise ValueError(f"invalid Prometheus label {key!r}")
            if kind == "histogram":
                for edge, total in instrument.cumulative():
                    block = _label_block(
                        instrument.labels, [("le", _format_number(edge))])
                    lines.append(f"{name}_bucket{block} {total}")
                block = _label_block(instrument.labels)
                lines.append(
                    f"{name}_sum{block} {_format_number(instrument.sum)}")
                lines.append(f"{name}_count{block} {instrument.count}")
            else:
                block = _label_block(instrument.labels)
                lines.append(
                    f"{name}{block} {_format_number(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Console table
# ----------------------------------------------------------------------

def metrics_table(registry=None, title: str = "metrics") -> str:
    """An aligned console table of every instrument."""
    # Imported lazily: repro.analysis pulls in repro.core, which itself
    # imports repro.obs -- a module-level import here would be a cycle.
    from ..analysis.report import render_table

    rows: List[List[object]] = []
    for name, kind, instruments in _registry(registry).families():
        for instrument in instruments:
            labels = ",".join(f"{k}={v}" for k, v in instrument.labels)
            if kind == "histogram":
                value = (f"count={instrument.count} "
                         f"sum={_format_number(instrument.sum)}")
            else:
                value = _format_number(instrument.value)
            rows.append([name, kind, labels or "-", value])
    if not rows:
        return f"{title}\n(no metrics recorded)"
    return render_table(["metric", "kind", "labels", "value"], rows,
                        title=title)


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------

def format_span_tree(root: Span, indent: int = 0) -> str:
    """One span tree as an indented text block with durations."""
    tags = " ".join(f"{k}={v}" for k, v in sorted(root.tags.items()))
    line = ("  " * indent
            + f"{root.name} [{_format_number(root.duration)}]"
            + (f" {tags}" if tags else ""))
    parts = [line]
    for child in root.children:
        parts.append(format_span_tree(child, indent + 1))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Event sink
# ----------------------------------------------------------------------

class JsonlEventSink:
    """Streams every bus event as one JSON line to a file (or stream).

    Usable as a context manager; ``close()`` detaches from the bus and
    closes the file when this sink opened it.
    """

    def __init__(self, target: Union[str, IO[str]],
                 bus: Optional[EventBus] = None):
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.written = 0
        self._unsubscribe = (bus or _events.get_bus()).subscribe(self._write)

    def _write(self, event: Event) -> None:
        self._stream.write(
            json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n")
        self.written += 1

    def close(self) -> None:
        """Detach from the bus; close the file if this sink opened it."""
        self._unsubscribe()
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JsonlEventSink(written={self.written})"
