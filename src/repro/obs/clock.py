"""The time source shared by metrics timing, spans, events and the CAC.

Observability timestamps must be *deterministic under injected clocks*
so that span trees and latency histograms can be asserted exactly in
tests and replayed fault schedules.  Every clock in the repo satisfies
one small :class:`Clock` protocol -- ``now() -> float`` -- and there are
exactly three implementations:

* :class:`SystemClock` -- the monotonic wall clock
  (:func:`time.perf_counter`), the default for observability;
* :class:`ManualClock` -- simulated time advanced explicitly by the
  synchronous protocol machinery (re-exported as
  :class:`repro.robustness.retry.ManualClock` for compatibility);
* :class:`EngineClock` -- an adapter reading the shared
  :class:`~repro.sim.engine.Engine` simulation clock, so the admission
  plane, retry backoff, health suspicion and breaker reset timers all
  tick on *one* discrete-event timeline.

``EngineClock`` deliberately refuses :meth:`EngineClock.advance` with a
nonzero delta: engine time moves only when scheduled events fire, so
code that needs to *wait* under an engine clock must yield a delay to
the event loop (see :meth:`repro.sim.engine.Engine.process`) instead of
advancing the clock behind the engine's back.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "EngineClock",
    "get_clock",
    "set_clock",
]


@runtime_checkable
class Clock(Protocol):
    """Anything that can answer "what time is it?" -- the one protocol
    every time source in the repo (observability, retry backoff, health
    suspicion, breaker resets, the admission plane) is typed against."""

    def now(self) -> float:
        """Current time in this clock's units."""
        ...


class SystemClock:
    """Monotonic wall-clock time; the default observability clock."""

    __slots__ = ()

    def now(self) -> float:
        """Seconds on the process-local monotonic clock."""
        return time.perf_counter()

    def __repr__(self) -> str:
        return "SystemClock()"


class ManualClock:
    """A monotonically advancing simulated clock.

    The synchronous protocol machinery never sleeps; it *advances* this
    clock by the backoff and timeout intervals it would have waited,
    which keeps hundreds of randomized fault schedules fast and
    reproducible.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward; negative deltas are refused."""
        if delta < 0:
            raise ValueError(f"cannot advance the clock by {delta}")
        self._now += delta
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now})"


class EngineClock:
    """Adapter exposing an :class:`~repro.sim.engine.Engine` as a Clock.

    ``now()`` reads the engine's simulation time, so components built
    against the :class:`Clock` protocol (health monitor, breakers,
    metrics timestamps, the signaling channel) all see the one shared
    discrete-event timeline.  ``advance`` exists only so synchronous
    zero-wait call sites keep working: a nonzero delta is refused,
    because engine time moves exclusively through scheduled events.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine) -> None:
        self._engine = engine

    @property
    def engine(self):
        """The engine this clock reads."""
        return self._engine

    def now(self) -> float:
        """The engine's current simulation time."""
        return self._engine.now

    def advance(self, delta: float) -> float:
        """Zero-delta no-op; anything else is a programming error.

        Synchronous walk code advances its clock by the waits it would
        have slept; under an engine clock those waits must be yielded to
        the event loop instead, so a nonzero advance here means a
        synchronous driver was used where an engine process belongs.
        """
        if delta != 0:
            from ..exceptions import SimulationError
            raise SimulationError(
                f"EngineClock cannot advance by {delta}: engine time moves "
                f"only via scheduled events; run this walk as an engine "
                f"process (see AdmissionPlane) instead of synchronously"
            )
        return self._engine.now

    def __repr__(self) -> str:
        return f"EngineClock(now={self._engine.now})"


_clock: Clock = SystemClock()


def get_clock():
    """The clock currently stamping spans and events."""
    return _clock


def set_clock(clock):
    """Install a clock (``now() -> float``); returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous
