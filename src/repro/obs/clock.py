"""The time source shared by metrics timing, spans and events.

Observability timestamps must be *deterministic under injected clocks*
so that span trees and latency histograms can be asserted exactly in
tests and replayed fault schedules.  Any object with a ``now() -> float``
method qualifies -- in particular
:class:`repro.robustness.retry.ManualClock` -- and the default is a
monotonic wall clock (:func:`time.perf_counter`).
"""

from __future__ import annotations

import time

__all__ = ["SystemClock", "get_clock", "set_clock"]


class SystemClock:
    """Monotonic wall-clock time; the default observability clock."""

    __slots__ = ()

    def now(self) -> float:
        """Seconds on the process-local monotonic clock."""
        return time.perf_counter()

    def __repr__(self) -> str:
        return "SystemClock()"


_clock = SystemClock()


def get_clock():
    """The clock currently stamping spans and events."""
    return _clock


def set_clock(clock):
    """Install a clock (``now() -> float``); returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous
