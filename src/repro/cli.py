"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-eval`` (or run as ``python -m repro.cli``):

.. code-block:: console

   repro-eval table1
   repro-eval fig10 --loads 0.25 0.5 0.75 --terminals 1 16
   repro-eval fig11 --fractions 0 0.5 0.9
   repro-eval fig12
   repro-eval fig13
   repro-eval vbr --mbs 1 8 16
   repro-eval failover --terminals 1 16
   repro-eval chaos --link ring0->ring1 --policy migrate-or-drop
   repro-eval obs --prom           # instrumented plant-mix run, metrics dump
   repro-eval churn --loads 0.5 2 4 --policy k-alternate --seed 7
   repro-eval profile --events 800 --json   # where does admission time go?
   repro-eval --csv fig10          # machine-readable output
   repro-eval --jobs 4 fig11       # fan scenarios across 4 worker processes
   repro-eval --jobs 0 fig13       # ... or every available core
   repro-eval --version

Randomized subcommands (``churn``, ``chaos``) take ``--seed`` (default
0) and are bit-identically reproducible for a given seed; everything
else is closed-form analysis and draws no randomness at all.

Each subcommand prints the same rows the corresponding paper artifact
reports (see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import __version__
from .analysis.report import render_table, to_csv
from .rtnet import (
    TABLE_1,
    asymmetric_capacity_curve,
    failover_capacity_curve,
    priority_capacity_curve,
    required_bandwidth_mbps,
    soft_hard_capacity_curve,
    symmetric_delay_curve,
)
from .rtnet.evaluation import vbr_capacity_curve
from .workload.policies import POLICY_NAMES

__all__ = ["main", "build_parser"]

DEFAULT_LOADS = [round(0.05 * step, 2) for step in range(1, 20)]
DEFAULT_FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]


def _jobs_argument(text: str) -> int:
    """argparse type for ``--jobs``: non-negative int, 0 = all cores."""
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer: {text!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the evaluation artifacts of 'Connection "
                    "Admission Control for Hard Real-Time Communication "
                    "in ATM Networks' (ICDCS 1997).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of an aligned table")
    parser.add_argument("--jobs", type=_jobs_argument, default=1,
                        metavar="N",
                        help="worker processes for independent scenarios "
                             "(default 1 = serial; 0 = os.cpu_count(); "
                             "results are bit-identical either way)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="cyclic transmission classes")

    fig10 = sub.add_parser("fig10", help="delay bound vs symmetric load")
    fig10.add_argument("--loads", type=float, nargs="+",
                       default=DEFAULT_LOADS)
    fig10.add_argument("--terminals", type=int, nargs="+",
                       default=[1, 4, 8, 16])
    fig10.add_argument("--ring-nodes", type=int, default=16)

    for name, helptext in [
        ("fig11", "max load vs asymmetry"),
        ("fig12", "1 vs 2 priority levels"),
        ("fig13", "hard vs soft CAC"),
    ]:
        fig = sub.add_parser(name, help=helptext)
        fig.add_argument("--fractions", type=float, nargs="+",
                         default=DEFAULT_FRACTIONS)
        fig.add_argument("--terminals", type=int, nargs="+",
                         default=[16] if name != "fig11" else [1, 8, 16])
        fig.add_argument("--ring-nodes", type=int, default=16)
        fig.add_argument("--tolerance", type=float, default=1 / 128)

    vbr = sub.add_parser("vbr", help="VBR feasibility vs per-node MBS")
    vbr.add_argument("--mbs", type=int, nargs="+",
                     default=[1, 2, 4, 8, 16, 24])
    vbr.add_argument("--ring-nodes", type=int, default=16)

    failover = sub.add_parser(
        "failover", help="capacity before/after a ring wrap")
    failover.add_argument("--terminals", type=int, nargs="+",
                          default=[1, 4, 8, 16])
    failover.add_argument("--ring-nodes", type=int, default=16)

    chaos = sub.add_parser(
        "chaos", help="fail a ring link mid-service and migrate around it")
    chaos.add_argument("--ring-nodes", type=int, default=8)
    chaos.add_argument("--sets-per-node", type=int, default=1,
                       help="Table 1 class sets per ring node "
                            "(3 terminals each)")
    chaos.add_argument("--link", default=None,
                       help="link to fail (default: first primary "
                            "ring link)")
    chaos.add_argument("--policy", choices=["migrate-or-drop",
                                            "migrate-or-keep"],
                       default="migrate-or-drop")
    chaos.add_argument("--obs", action="store_true",
                       help="run instrumented and dump the "
                            "survivability counters")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for the CAC's retry-jitter RNG "
                            "(default 0; equal seeds reproduce the "
                            "study bit for bit)")

    churn = sub.add_parser(
        "churn", help="seeded dynamic traffic: blocking vs offered load")
    churn.add_argument("--loads", type=float, nargs="+",
                       default=[0.5, 1.0, 2.0, 3.0, 4.0],
                       metavar="L",
                       help="offered-load points (normalized bandwidth "
                            "demand) of the blocking curve")
    churn.add_argument("--topology", choices=["star", "dual-ring"],
                       default="dual-ring")
    churn.add_argument("--nodes", type=int, default=6,
                       help="terminals (star) or ring nodes (dual-ring)")
    churn.add_argument("--events", type=int, default=2000,
                       help="hard churn-event budget per run")
    churn.add_argument("--policy", choices=list(POLICY_NAMES),
                       default="first-path",
                       help="route-selection policy for every setup")
    churn.add_argument("--k", type=int, default=2,
                       help="candidate routes for the alternate-path "
                            "policies")
    churn.add_argument("--rate", type=float, default=0.15,
                       help="per-connection CBR cell rate (normalized)")
    churn.add_argument("--bound", type=float, default=48.0,
                       help="advertised per-link delay bound (cell times)")
    churn.add_argument("--holding", type=float, default=400.0,
                       help="mean exponential holding time (cell times)")
    churn.add_argument("--replications", type=int, default=1,
                       help="independent seeded replications per load "
                            "point (seed, seed+1, ...)")
    churn.add_argument("--seed", type=int, default=0,
                       help="base seed for arrivals/holding times "
                            "(default 0; equal seeds reproduce the "
                            "curve bit for bit)")
    churn.add_argument("--setup-latency", type=float, default=0.0,
                       help="per-hop per-direction signaling transit "
                            "time (cell times); > 0 runs arrivals as "
                            "concurrent in-flight setups on the "
                            "event-driven admission plane (default 0: "
                            "instantaneous setups)")
    churn.add_argument("--reservation-ttl", type=float, default=None,
                       help="phase-1 reservation hold time before the "
                            "switch discards it (cell times; default: "
                            "no expiry)")
    churn.add_argument("--json", action="store_true",
                       help="emit the curve as a JSON document instead "
                            "of a table (the CI artifact format)")

    profile = sub.add_parser(
        "profile", help="cProfile a seeded churn run; where does admission "
                        "time go?")
    profile.add_argument("--events", type=int, default=800,
                         help="hard churn-event budget of the profiled run")
    profile.add_argument("--seed", type=int, default=11,
                         help="churn seed (equal seeds profile the exact "
                              "same run)")
    profile.add_argument("--load", type=float, default=4.0,
                         help="offered load (normalized bandwidth demand)")
    profile.add_argument("--topology", choices=["star", "dual-ring"],
                         default="dual-ring")
    profile.add_argument("--nodes", type=int, default=6,
                         help="terminals (star) or ring nodes (dual-ring)")
    profile.add_argument("--setup-latency", type=float, default=2.0,
                         help="per-hop signaling transit time; > 0 profiles "
                              "the event-driven admission plane")
    profile.add_argument("--reservation-ttl", type=float, default=40.0,
                         help="phase-1 reservation hold time (cell times)")
    profile.add_argument("--fast-path", choices=["on", "off", "auto"],
                         default="auto",
                         help="force the screened (on) or exact (off) "
                              "admission path; auto defers to CAC_FAST_PATH")
    profile.add_argument("--top", type=int, default=15,
                         help="rows of the cumulative-time table to keep")
    profile.add_argument("--json", action="store_true",
                         help="emit the profile as a JSON document (the CI "
                              "artifact format)")

    obs_cmd = sub.add_parser(
        "obs", help="run the Table 1 plant mix instrumented; dump metrics")
    obs_cmd.add_argument("--ring-nodes", type=int, default=4)
    obs_format = obs_cmd.add_mutually_exclusive_group()
    obs_format.add_argument("--json", action="store_true",
                            help="emit the metrics as JSON lines")
    obs_format.add_argument("--prom", action="store_true",
                            help="emit Prometheus text exposition format")
    obs_cmd.add_argument("--spans", action="store_true",
                         help="also print the setup span trees")
    obs_cmd.add_argument("--batched", action="store_true",
                         help="establish the mix through the batched "
                              "setup_many pipeline (shared group checks)")

    return parser


def _emit(args, headers: List[str], rows: List[list],
          title: str) -> None:
    if args.csv:
        print(to_csv(headers, rows))
    else:
        print(render_table(headers, rows, title=title))


def _run_table1(args) -> None:
    rows = [
        [cls.name, cls.period_ms, cls.delay_ms, cls.memory_kb,
         round(required_bandwidth_mbps(cls), 1)]
        for cls in TABLE_1.values()
    ]
    _emit(args, ["class", "period_ms", "delay_ms", "memory_kb",
                 "bandwidth_mbps"], rows,
          "Table 1: types of cyclic transmission")


def _run_fig10(args) -> None:
    curves = {
        count: symmetric_delay_curve(args.loads, terminals_per_node=count,
                                     ring_nodes=args.ring_nodes,
                                     jobs=args.jobs)
        for count in args.terminals
    }
    rows = []
    for index, load in enumerate(args.loads):
        row = [load]
        for count in args.terminals:
            point = curves[count][index]
            row.append(round(point.delay_bound, 1)
                       if point.admissible else "rejected")
        rows.append(row)
    _emit(args, ["load"] + [f"N={count}" for count in args.terminals],
          rows, "Figure 10: e2e delay bound (cell times) vs load")


def _run_fig11(args) -> None:
    curves = {
        count: asymmetric_capacity_curve(
            args.fractions, terminals_per_node=count,
            ring_nodes=args.ring_nodes, tolerance=args.tolerance,
            jobs=args.jobs)
        for count in args.terminals
    }
    rows = [
        [fraction] + [round(curves[count][index].max_load, 3)
                      for count in args.terminals]
        for index, fraction in enumerate(args.fractions)
    ]
    _emit(args, ["p"] + [f"N={count}" for count in args.terminals],
          rows, "Figure 11: max supported load vs asymmetry")


def _run_fig12(args) -> None:
    rows_out = []
    for count in args.terminals:
        rows = priority_capacity_curve(
            args.fractions, terminals_per_node=count,
            ring_nodes=args.ring_nodes, tolerance=args.tolerance,
            jobs=args.jobs)
        for fraction, single, dual in rows:
            rows_out.append([count, fraction, round(single, 3),
                             round(dual, 3)])
    _emit(args, ["N", "p", "1 priority", "2 priorities"], rows_out,
          "Figure 12: 1 vs 2 priority levels")


def _run_fig13(args) -> None:
    rows_out = []
    for count in args.terminals:
        rows = soft_hard_capacity_curve(
            args.fractions, terminals_per_node=count,
            ring_nodes=args.ring_nodes, tolerance=args.tolerance,
            jobs=args.jobs)
        for fraction, hard, soft in rows:
            rows_out.append([count, fraction, round(hard, 3),
                             round(soft, 3)])
    _emit(args, ["N", "p", "hard CAC", "soft CAC"], rows_out,
          "Figure 13: hard vs soft CAC")


def _run_vbr(args) -> None:
    rows = [
        [mbs, round(load, 3)]
        for mbs, load in vbr_capacity_curve(args.mbs,
                                            ring_nodes=args.ring_nodes,
                                            jobs=args.jobs)
    ]
    _emit(args, ["mbs_per_node", "max_load"], rows,
          "VBR feasibility: per-node burst allowance vs supportable load")


def _run_failover(args) -> None:
    rows = [
        [count, round(healthy, 3), round(wrapped, 3)]
        for count, healthy, wrapped in failover_capacity_curve(
            args.terminals, ring_nodes=args.ring_nodes, jobs=args.jobs)
    ]
    _emit(args, ["terminals", "healthy", "after_wrap"], rows,
          "Failover: capacity before/after a single ring failure")


def _run_chaos(args) -> None:
    from .rtnet.failover import failover_migration_study

    def study():
        return failover_migration_study(
            ring_nodes=args.ring_nodes, sets_per_node=args.sets_per_node,
            link=args.link, policy=args.policy, seed=args.seed,
        )

    if args.obs:
        from . import obs
        from .robustness.retry import ManualClock

        obs.enable(clock_source=ManualClock())
        try:
            result = study()
        finally:
            obs.disable()
    else:
        result = study()

    latency = (round(result.detection_latency, 1)
               if result.detection_latency is not None else "undetected")
    rows = [
        ["terminals", result.terminals],
        ["established", result.established],
        ["refused", result.refused],
        ["failed link", result.link],
        ["policy", result.policy],
        ["probes to detect", result.probes_to_detect],
        ["detection latency", latency],
        ["migrated", len(result.migrated)],
        ["dropped", len(result.dropped)],
        ["kept", len(result.kept)],
        ["open hops", ", ".join(result.open_hops) or "none"],
        ["breaker reclosed", result.breaker_reclosed],
        ["booking safe", result.booking_safe],
    ]
    _emit(args, ["metric", "value"], rows,
          f"Chaos: live migration around {result.link} "
          f"({args.ring_nodes} ring nodes)")
    for key in sorted(result.metrics):
        print(f"{key} {result.metrics[key]:g}")


def _run_obs(args) -> None:
    from . import obs
    from .obs import export
    from .robustness.retry import ManualClock
    from .rtnet.evaluation import establish_workload
    from .rtnet.workloads import plant_mix_workload

    registry, tracer = obs.enable(clock_source=ManualClock())
    try:
        network, established = establish_workload(
            plant_mix_workload(args.ring_nodes),
            ring_nodes=args.ring_nodes, terminals_per_node=3,
            batched=args.batched,
        )
        setups = list(tracer.roots)
        network.teardown_all()
        if args.json:
            print(export.metrics_to_jsonl(registry))
        elif args.prom:
            print(export.to_prometheus(registry), end="")
        else:
            pipeline = "batched" if args.batched else "sequential"
            print(f"plant mix on {args.ring_nodes} ring nodes "
                  f"({pipeline}): {len(established)} connections "
                  f"established and torn down")
            print(export.metrics_table(registry))
        if args.spans:
            for root in setups:
                print(export.format_span_tree(root))
    finally:
        obs.disable()


def _run_churn(args) -> None:
    import json

    from .workload.churn import ChurnScenario, blocking_curve

    scenario = ChurnScenario(
        topology=args.topology, nodes=args.nodes, bound=args.bound,
        rate=args.rate, mean_holding=args.holding, events=args.events,
        seed=args.seed, policy=args.policy, k=args.k,
        setup_latency=args.setup_latency,
        reservation_ttl=args.reservation_ttl,
    )
    points = blocking_curve(args.loads, scenario,
                            replications=args.replications,
                            jobs=args.jobs)
    if args.json:
        print(json.dumps({
            "topology": args.topology,
            "nodes": args.nodes,
            "policy": args.policy,
            "k": args.k,
            "events": args.events,
            "seed": args.seed,
            "replications": args.replications,
            "setup_latency": args.setup_latency,
            "reservation_ttl": args.reservation_ttl,
            "points": [
                {
                    "offered_load": point.offered_load,
                    "arrivals": point.arrivals,
                    "blocked": point.blocked,
                    "blocking": point.blocking,
                    "ci_half_width": point.ci_half_width,
                    "carried_erlangs": point.carried_erlangs,
                    "digests": list(point.digests),
                }
                for point in points
            ],
        }, indent=2))
        return
    rows = [point.as_row() for point in points]
    _emit(args, ["offered_load", "arrivals", "blocked", "blocking",
                 "ci_95", "carried_erlangs"], rows,
          f"Churn: blocking vs offered load "
          f"({args.policy}, {args.topology}, seed {args.seed})")


def _run_profile(args) -> None:
    import cProfile
    import json
    import pstats
    import time

    from .workload.churn import ChurnScenario, run_scenario

    fast_path = {"on": True, "off": False, "auto": None}[args.fast_path]
    scenario = ChurnScenario(
        topology=args.topology, nodes=args.nodes, bound=48.0, rate=0.15,
        offered_load=args.load, events=args.events, seed=args.seed, k=2,
        setup_latency=args.setup_latency,
        reservation_ttl=args.reservation_ttl, fast_path=fast_path,
    )
    run_scenario(scenario)          # warm-up run stays outside the profile
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    run_scenario(scenario)
    profiler.disable()
    elapsed = time.perf_counter() - start
    events_per_sec = args.events / elapsed if elapsed > 0 else float("inf")

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    top = []
    for key in stats.fcn_list:                  # already cumulative-sorted
        filename, line, function = key
        if filename.startswith("~") or "cProfile" in filename:
            continue                            # profiler bookkeeping frames
        _cc, ncalls, tottime, cumtime, _callers = stats.stats[key]
        top.append({
            "function": function,
            "file": filename,
            "line": line,
            "ncalls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
        if len(top) >= args.top:
            break

    if args.json:
        print(json.dumps({
            "topology": args.topology,
            "nodes": args.nodes,
            "events": args.events,
            "seed": args.seed,
            "offered_load": args.load,
            "setup_latency": args.setup_latency,
            "reservation_ttl": args.reservation_ttl,
            "fast_path": args.fast_path,
            "elapsed_s": round(elapsed, 6),
            "events_per_sec": round(events_per_sec, 1),
            "top": top,
        }, indent=2))
        return
    rows = [
        [entry["function"],
         f"{entry['file'].rsplit('/', 1)[-1]}:{entry['line']}",
         entry["ncalls"], round(entry["tottime_s"], 4),
         round(entry["cumtime_s"], 4)]
        for entry in top
    ]
    _emit(args, ["function", "where", "ncalls", "tottime_s", "cumtime_s"],
          rows,
          f"Profile: {args.events} churn events in {elapsed:.2f}s "
          f"({events_per_sec:.0f} events/s, fast path {args.fast_path})")


_RUNNERS = {
    "table1": _run_table1,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "vbr": _run_vbr,
    "failover": _run_failover,
    "chaos": _run_chaos,
    "obs": _run_obs,
    "churn": _run_churn,
    "profile": _run_profile,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _RUNNERS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
