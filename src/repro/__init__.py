"""repro -- bit-stream connection admission control for hard real-time ATM.

A from-scratch reproduction of *"Connection Admission Control for Hard
Real-Time Communication in ATM Networks"* (Zheng, Yokotani, Ichihashi,
Nemoto -- MERL TR-96-21 / ICDCS 1997):

* :mod:`repro.core` -- the bit-stream traffic model, the manipulation
  algebra (delay / multiplex / demultiplex / filter), the worst-case
  queueing analysis and the CAC scheme itself;
* :mod:`repro.network` -- topology, routing and signalling substrate;
* :mod:`repro.sim` -- a cell-level discrete-event simulator used to
  validate the analytical bounds;
* :mod:`repro.rtnet` -- the RTnet plant-control network model and the
  paper's Section 5 evaluation workloads;
* :mod:`repro.analysis` -- capacity search, sweeps and report rendering.

Quickstart::

    from repro import NetworkCAC, ConnectionRequest, cbr
    from repro.network import star_network, shortest_path

    net = star_network(4, bounds={0: 32})
    cac = NetworkCAC(net)
    request = ConnectionRequest(
        "vc0", cbr(0.25), shortest_path(net, "t0", "t1"), delay_bound=32)
    established = cac.setup(request)
    print(established.e2e_bound)    # guaranteed queueing delay, cell times
"""

from .core import (
    HARD,
    SOFT,
    BitStream,
    NetworkCAC,
    PeakBandwidthCAC,
    SustainedBandwidthCAC,
    SwitchCAC,
    VBRParameters,
    aggregate,
    cbr,
    delay_bound,
)
from .exceptions import (
    AdmissionError,
    BitStreamError,
    QosUnsatisfiable,
    ReproError,
    RetryExhausted,
    RoutingError,
    SignalingTimeout,
    SimulationError,
    SwitchRejection,
    SwitchUnavailable,
    TopologyError,
    TrafficModelError,
    UnstableSystemError,
)
from .network import (
    ConnectionRequest,
    EstablishedConnection,
    Network,
    Route,
    ring_walk,
    shortest_path,
)
from .units import CELL_BITS, CELL_BYTES, LinkRate, RTNET_LINK

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BitStream",
    "aggregate",
    "VBRParameters",
    "cbr",
    "delay_bound",
    "SwitchCAC",
    "NetworkCAC",
    "PeakBandwidthCAC",
    "SustainedBandwidthCAC",
    "HARD",
    "SOFT",
    # network
    "Network",
    "Route",
    "shortest_path",
    "ring_walk",
    "ConnectionRequest",
    "EstablishedConnection",
    # units
    "LinkRate",
    "RTNET_LINK",
    "CELL_BITS",
    "CELL_BYTES",
    # exceptions
    "ReproError",
    "TrafficModelError",
    "BitStreamError",
    "UnstableSystemError",
    "AdmissionError",
    "SwitchRejection",
    "QosUnsatisfiable",
    "SignalingTimeout",
    "SwitchUnavailable",
    "RetryExhausted",
    "RoutingError",
    "TopologyError",
    "SimulationError",
]
