"""Unit conversions for ATM cell-based time and rate arithmetic.

The paper (Section 2) measures time in *cell times* -- the time needed to
transmit one 53-byte ATM cell at the full link bandwidth -- and normalizes
all rates to the link bandwidth (so a rate of ``1`` means "one cell per
cell time", i.e. the full link).

This module provides the conversions between physical units (seconds,
milliseconds, bits per second) and the normalized units used throughout
:mod:`repro.core`, plus the constants of the RTnet evaluation platform
(155.52 Mbps SDH/STM-1 links, 53-byte cells, so one cell time is roughly
2.7 microseconds -- the paper rounds to "about 2.7 microseconds").
"""

from __future__ import annotations

from dataclasses import dataclass

#: Size of an ATM cell in bytes (5-byte header + 48-byte payload).
CELL_BYTES = 53

#: Size of an ATM cell in bits.
CELL_BITS = CELL_BYTES * 8

#: Payload carried by one ATM cell in bytes (AAL overhead not modelled).
CELL_PAYLOAD_BYTES = 48

#: Nominal SDH STM-1 / SONET OC-3 line rate used by RTnet, in bits/second.
OC3_LINE_RATE_BPS = 155.52e6


@dataclass(frozen=True)
class LinkRate:
    """A physical link rate and the conversions it induces.

    The normalized unit system of the paper is *relative to one link*:
    once a link rate is fixed, a "cell time" and a "normalized rate" are
    both well defined.

    Parameters
    ----------
    bits_per_second:
        Raw line rate of the link in bits per second.

    Examples
    --------
    >>> oc3 = LinkRate(OC3_LINE_RATE_BPS)
    >>> round(oc3.cell_time_seconds * 1e6, 2)  # microseconds per cell
    2.73
    >>> round(oc3.cells_per_second)
    366792
    """

    bits_per_second: float

    @property
    def cell_time_seconds(self) -> float:
        """Duration of one cell time in seconds."""
        return CELL_BITS / self.bits_per_second

    @property
    def cells_per_second(self) -> float:
        """Number of cells the link transmits per second at full rate."""
        return self.bits_per_second / CELL_BITS

    def seconds_to_cell_times(self, seconds: float) -> float:
        """Convert a duration in seconds into cell times."""
        return seconds / self.cell_time_seconds

    def ms_to_cell_times(self, milliseconds: float) -> float:
        """Convert a duration in milliseconds into cell times."""
        return self.seconds_to_cell_times(milliseconds * 1e-3)

    def cell_times_to_seconds(self, cell_times: float) -> float:
        """Convert a duration in cell times into seconds."""
        return cell_times * self.cell_time_seconds

    def cell_times_to_ms(self, cell_times: float) -> float:
        """Convert a duration in cell times into milliseconds."""
        return self.cell_times_to_seconds(cell_times) * 1e3

    def normalized_rate(self, bits_per_second: float) -> float:
        """Normalize a bit rate to this link (1.0 == full link rate)."""
        return bits_per_second / self.bits_per_second

    def mbps_to_normalized(self, mbps: float) -> float:
        """Normalize a rate given in Mbps to this link."""
        return self.normalized_rate(mbps * 1e6)

    def normalized_to_mbps(self, rate: float) -> float:
        """Convert a normalized rate back to Mbps on this link."""
        return rate * self.bits_per_second / 1e6


#: The RTnet link: dual 155 Mbps ring links (Section 5).
RTNET_LINK = LinkRate(OC3_LINE_RATE_BPS)


def cells_for_bytes(num_bytes: int) -> int:
    """Number of ATM cells needed to carry ``num_bytes`` of payload.

    >>> cells_for_bytes(48)
    1
    >>> cells_for_bytes(49)
    2
    >>> cells_for_bytes(0)
    0
    """
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    return -(-num_bytes // CELL_PAYLOAD_BYTES)


def bandwidth_for_cyclic(memory_bytes: int, period_seconds: float,
                         link: LinkRate = RTNET_LINK) -> float:
    """Raw bandwidth (bits/second) needed to ship a cyclic memory image.

    A cyclic-transmission terminal broadcasts a ``memory_bytes`` shared
    memory image every ``period_seconds``.  The required line bandwidth
    includes the cell header overhead (each 48-byte payload chunk costs a
    53-byte cell on the wire).  This is the arithmetic behind the
    "bandwidth (Mbps)" column of Table 1.
    """
    if period_seconds <= 0:
        raise ValueError(f"period must be positive, got {period_seconds}")
    cells = cells_for_bytes(memory_bytes)
    return cells * CELL_BITS / period_seconds
