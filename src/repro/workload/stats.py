"""Blocking-probability and load analytics over a churn ledger.

The ledger written by :class:`~repro.workload.churn.ChurnEngine` is the
single source of truth: every function here is a pure, deterministic
fold over those plain-data rows, so the analytics can run in-process,
in a worker of the parallel fan-out, or offline on a pickled report --
always with bit-identical results.

The headline quantities are the classic teletraffic trio:

* **blocking probability** per class -- blocked arrivals over offered
  arrivals inside the measurement window, with a batch-means confidence
  interval (the window is cut into equal time batches, per-batch
  blocking ratios are treated as approximately independent samples, and
  a Student-t interval is put around their mean);
* **carried vs offered load** -- time-averaged concurrently-held
  erlangs against the nominal ``arrival_rate * mean_holding`` the
  sources offered;
* **link-utilization timelines** -- the piecewise-constant bandwidth
  commitment on every link as connections come and go, summarized to
  time-weighted mean and peak per link.

Warm-up trimming: every statistic ignores the ledger prefix before
``warmup`` (arrivals, departures and active time alike), so transient
fill-up of an initially empty network does not bias the steady-state
estimates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.admission import NetworkCAC
    from .churn import ChurnRecord, TrafficClass

from ..obs import events as _oe
from ..obs import metrics as _om

__all__ = [
    "ClassStats",
    "ChurnReport",
    "batch_means",
    "ledger_digest",
    "journal_digest_of",
    "summarize",
    "utilization_timeline",
    "export_report",
]

#: Two-sided 95% Student-t critical values by degrees of freedom; the
#: normal quantile 1.96 serves beyond the table.  Hard-coded because the
#: container must not grow a scipy dependency for one lookup.
_T_95: Dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_critical(df: int) -> float:
    if df in _T_95:
        return _T_95[df]
    if df < 1:
        return 0.0
    for known in sorted(_T_95):
        if df <= known:
            return _T_95[known]
    return 1.96


def batch_means(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95% half-width over approximately independent batches.

    The standard batch-means construction: each value is one batch
    statistic; the half-width is ``t * s / sqrt(n)`` with ``s`` the
    sample standard deviation.  Degenerate inputs collapse gracefully --
    no values gives ``(0, 0)``, a single value gives ``(value, 0)`` --
    so reports stay JSON-serializable (never infinite).
    """
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = _t_critical(n - 1) * (variance ** 0.5) / (n ** 0.5)
    return mean, half


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------


def ledger_digest(ledger: Sequence["ChurnRecord"]) -> str:
    """SHA-256 fingerprint of an entire churn trajectory.

    Hashes the canonical repr of every row in order -- times, outcomes,
    routes, everything -- so two runs agree on the digest iff they took
    bit-identical trajectories.  This is the value the jobs=1 vs jobs=4
    equivalence check compares.
    """
    hasher = hashlib.sha256()
    for row in ledger:
        hasher.update(repr((
            row.index, row.time.hex(), row.kind, row.name, row.cls,
            row.outcome, row.attempts, row.route,
        )).encode())
    return hasher.hexdigest()


def journal_digest_of(cac: "NetworkCAC") -> str:
    """SHA-256 over every switch's op-for-op admission journal.

    The same ``(switch, ((op, connection_id), ...))`` canonical form the
    robustness harness compares, hashed so a report can carry it as one
    short string.  Equal digests mean every switch journalled the exact
    same operation sequence -- the strongest cheap witness that two runs
    drove the CAC identically.
    """
    hasher = hashlib.sha256()
    for name, switch in sorted(cac.switches().items()):
        hasher.update(repr((
            name,
            tuple((entry.op, entry.connection_id)
                  for entry in switch.journal.entries),
        )).encode())
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClassStats:
    """Steady-state statistics of one traffic class."""

    name: str
    #: Nominal offered load, ``arrival_rate * mean_holding`` erlangs.
    offered_erlangs: float
    arrivals: int
    admitted: int
    blocked: int
    departed: int
    dropped: int
    #: Blocked arrivals / arrivals in the measurement window.
    blocking: float
    #: 95% batch-means half-width around :attr:`blocking`.
    blocking_ci: float
    #: Time-averaged concurrently-held connections in the window.
    carried_erlangs: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "class": self.name,
            "offered_erlangs": self.offered_erlangs,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "departed": self.departed,
            "dropped": self.dropped,
            "blocking": self.blocking,
            "blocking_ci": self.blocking_ci,
            "carried_erlangs": self.carried_erlangs,
        }


@dataclass(frozen=True)
class ChurnReport:
    """Everything one churn run yields -- plain data, picklable.

    ``link_utilization`` summarizes the per-link bandwidth-commitment
    timeline as sorted ``(link, time-weighted mean, peak)`` triples;
    the full piecewise series is available from
    :func:`utilization_timeline` when a plot needs it.  The two digests
    fingerprint the trajectory (:attr:`ledger_digest`) and the CAC's
    operation history (:attr:`journal_digest`) -- the determinism
    acceptance compares both.
    """

    seed: int
    policy: str
    events: int
    horizon: float
    warmup: float
    arrivals: int
    admitted: int
    blocked: int
    blocking: float
    blocking_ci: float
    carried_erlangs: float
    offered_erlangs: float
    per_class: Tuple[ClassStats, ...]
    link_utilization: Tuple[Tuple[str, float, float], ...]
    ledger_digest: str
    journal_digest: str
    active_at_end: int

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (the CLI's ``--json`` payload)."""
        return {
            "seed": self.seed,
            "policy": self.policy,
            "events": self.events,
            "horizon": self.horizon,
            "warmup": self.warmup,
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "blocking": self.blocking,
            "blocking_ci": self.blocking_ci,
            "carried_erlangs": self.carried_erlangs,
            "offered_erlangs": self.offered_erlangs,
            "per_class": [stats.as_dict() for stats in self.per_class],
            "link_utilization": [
                {"link": link, "mean": mean, "peak": peak}
                for link, mean, peak in self.link_utilization
            ],
            "ledger_digest": self.ledger_digest,
            "journal_digest": self.journal_digest,
            "active_at_end": self.active_at_end,
        }


def _intervals(ledger: Sequence["ChurnRecord"], horizon: float,
               ) -> List[Tuple[str, float, float, Tuple[str, ...]]]:
    """``(class, start, end, route)`` holding intervals, ledger order.

    An admitted arrival opens an interval; its ``departed``/``dropped``
    row closes it; still-open intervals close at the horizon.
    """
    open_at: Dict[str, Tuple[str, float, Tuple[str, ...]]] = {}
    out: List[Tuple[str, float, float, Tuple[str, ...]]] = []
    order: List[str] = []
    for row in ledger:
        if row.kind == "arrival" and row.outcome == "admitted":
            open_at[row.name] = (row.cls, row.time, row.route)
            order.append(row.name)
        elif row.kind == "departure" and row.name in open_at:
            cls, start, route = open_at.pop(row.name)
            out.append((cls, start, row.time, route))
    for name in order:
        if name in open_at:
            cls, start, route = open_at.pop(name)
            out.append((cls, start, horizon, route))
    return out


def utilization_timeline(ledger: Sequence["ChurnRecord"],
                         classes: Mapping[str, "TrafficClass"],
                         horizon: float,
                         links: Optional[Iterable[str]] = None,
                         ) -> Dict[str, List[Tuple[float, float]]]:
    """Piecewise-constant committed bandwidth per link over the run.

    Returns ``{link: [(time, utilization), ...]}`` where each pair says
    "from this time on, the link carried this much committed SCR" --
    exactly the step series a blocking-curve plot overlays.  ``links``
    restricts the output; by default every link any admitted route used
    appears.
    """
    wanted = set(links) if links is not None else None
    deltas: Dict[str, List[Tuple[float, float]]] = {}
    for cls, start, end, route in _intervals(ledger, horizon):
        rate = float(classes[cls].traffic.scr) if cls in classes else 0.0
        for link in route:
            if wanted is not None and link not in wanted:
                continue
            deltas.setdefault(link, []).append((start, rate))
            if end < horizon:
                deltas[link].append((end, -rate))
    series: Dict[str, List[Tuple[float, float]]] = {}
    for link in sorted(deltas):
        level = 0.0
        steps: List[Tuple[float, float]] = [(0.0, 0.0)]
        for time, delta in sorted(deltas[link]):
            level += delta
            if steps and steps[-1][0] == time:
                steps[-1] = (time, level)
            else:
                steps.append((time, level))
        series[link] = steps
    return series


def summarize(ledger: Sequence["ChurnRecord"],
              classes: Mapping[str, "TrafficClass"],
              horizon: float,
              warmup: float,
              seed: int,
              policy: str,
              journal_digest: str,
              batches: int = 10) -> ChurnReport:
    """Fold a churn ledger into a :class:`ChurnReport`.

    ``warmup`` trims the transient: only rows (and holding time) at or
    after it count.  ``batches`` controls the batch-means construction
    for the blocking confidence intervals.
    """
    duration = max(0.0, horizon - warmup)
    intervals = _intervals(ledger, horizon)

    per_class: List[ClassStats] = []
    for name in sorted(classes):
        cls = classes[name]
        rows = [r for r in ledger if r.cls == name and r.time >= warmup]
        arrivals = [r for r in rows if r.kind == "arrival"]
        blocked = sum(1 for r in arrivals if r.outcome == "blocked")
        admitted = len(arrivals) - blocked
        departed = sum(1 for r in rows if r.kind == "departure"
                       and r.outcome == "departed")
        dropped = sum(1 for r in rows if r.kind == "departure"
                      and r.outcome == "dropped")
        blocking = blocked / len(arrivals) if arrivals else 0.0
        # Batch means over equal time slices of the window.
        ratios: List[float] = []
        if duration > 0 and batches > 0:
            width = duration / batches
            for index in range(batches):
                lo = warmup + index * width
                hi = warmup + (index + 1) * width
                batch = [r for r in arrivals if lo <= r.time < hi]
                if batch:
                    ratios.append(
                        sum(1 for r in batch if r.outcome == "blocked")
                        / len(batch))
        _mean, half = batch_means(ratios)
        carried = 0.0
        if duration > 0:
            for icls, start, end, _route in intervals:
                if icls == name:
                    carried += max(0.0, min(end, horizon) - max(start, warmup))
            carried /= duration
        per_class.append(ClassStats(
            name=name,
            offered_erlangs=cls.offered_erlangs,
            arrivals=len(arrivals),
            admitted=admitted,
            blocked=blocked,
            departed=departed,
            dropped=dropped,
            blocking=blocking,
            blocking_ci=half,
            carried_erlangs=carried,
        ))

    # Per-link time-weighted mean and peak within the window.
    link_summary: List[Tuple[str, float, float]] = []
    if duration > 0:
        means: Dict[str, float] = {}
        for cls, start, end, route in intervals:
            rate = float(classes[cls].traffic.scr) if cls in classes else 0.0
            overlap = max(0.0, min(end, horizon) - max(start, warmup))
            if overlap <= 0:
                continue
            for link in route:
                means[link] = means.get(link, 0.0) + rate * overlap / duration
        peaks: Dict[str, float] = {}
        for link, steps in utilization_timeline(
                ledger, classes, horizon, links=means).items():
            peak = 0.0
            for index, (time, level) in enumerate(steps):
                next_time = (steps[index + 1][0]
                             if index + 1 < len(steps) else horizon)
                if next_time > warmup:   # the step overlaps the window
                    peak = max(peak, level)
            peaks[link] = peak
        link_summary = [
            (link, means[link], peaks.get(link, 0.0))
            for link in sorted(means)
        ]

    total_arrivals = sum(s.arrivals for s in per_class)
    total_blocked = sum(s.blocked for s in per_class)
    opened = {r.name for r in ledger
              if r.kind == "arrival" and r.outcome == "admitted"}
    closed = {r.name for r in ledger if r.kind == "departure"}
    active_at_end = len(opened - closed)

    # Overall CI: batch means over time slices pooled across classes.
    overall_ratios: List[float] = []
    if duration > 0 and batches > 0:
        all_arrivals = [r for r in ledger
                        if r.kind == "arrival" and r.time >= warmup]
        width = duration / batches
        for index in range(batches):
            lo = warmup + index * width
            hi = warmup + (index + 1) * width
            batch = [r for r in all_arrivals if lo <= r.time < hi]
            if batch:
                overall_ratios.append(
                    sum(1 for r in batch if r.outcome == "blocked")
                    / len(batch))
    return ChurnReport(
        seed=seed,
        policy=policy,
        events=len(ledger),
        horizon=horizon,
        warmup=warmup,
        arrivals=total_arrivals,
        admitted=sum(s.admitted for s in per_class),
        blocked=total_blocked,
        blocking=total_blocked / total_arrivals if total_arrivals else 0.0,
        blocking_ci=batch_means(overall_ratios)[1],
        carried_erlangs=sum(s.carried_erlangs for s in per_class),
        offered_erlangs=sum(s.offered_erlangs for s in per_class),
        per_class=tuple(per_class),
        link_utilization=tuple(link_summary),
        ledger_digest=ledger_digest(ledger),
        journal_digest=journal_digest,
        active_at_end=active_at_end,
    )


def export_report(report: ChurnReport) -> None:
    """Publish a report's headline numbers to the observability layer.

    Sets the ``churn_blocking_probability`` gauge per class and emits
    one ``churn/report`` event on the bus -- the hook the CLI calls so
    ``--metrics-out`` / ``--events-out`` capture churn summaries next
    to the per-event counters.
    """
    registry = _om.get_registry()
    if registry.enabled:
        for stats in report.per_class:
            registry.gauge("churn_blocking_probability",
                           cls=stats.name).set(stats.blocking)
        registry.gauge("churn_carried_erlangs").set(report.carried_erlangs)
    bus = _oe.get_bus()
    if bus.has_subscribers:
        bus.emit("churn", "report", time=report.horizon,
                 policy=report.policy, seed=report.seed,
                 arrivals=report.arrivals, blocked=report.blocked,
                 blocking=report.blocking,
                 carried_erlangs=report.carried_erlangs)
