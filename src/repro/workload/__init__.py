"""Dynamic traffic: seeded churn, admission policies, blocking analytics.

The paper's evaluation admits *fixed* connection sets; this package
adds the missing dynamic regime -- connections that arrive by seeded
Poisson processes, hold for exponential times and depart, while the CAC
admits or refuses in steady state.  Three pieces:

* :mod:`~repro.workload.churn` -- the deterministic
  :class:`~repro.workload.churn.ChurnEngine` plus the picklable
  :class:`~repro.workload.churn.ChurnScenario` /
  :func:`~repro.workload.churn.blocking_curve` fan-out recipes;
* :mod:`~repro.workload.policies` -- pluggable route-selection
  strategies (first-path, k-alternate crankback, least-loaded);
* :mod:`~repro.workload.stats` -- blocking probability, carried vs
  offered load and link-utilization analytics with batch-means
  confidence intervals.

See ``docs/architecture.md`` ("Dynamic workloads") for how the pieces
compose with the parallel executor and the survivability layer.
"""

from .churn import (
    BlockingPoint,
    ChurnEngine,
    ChurnRecord,
    ChurnScenario,
    LinkFailure,
    TrafficClass,
    blocking_curve,
    opposite_pairs,
    run_scenario,
    star_pairs,
)
from .policies import (
    POLICY_NAMES,
    AdmissionPolicy,
    FirstPathPolicy,
    KAlternatePolicy,
    LeastLoadedPolicy,
    make_policy,
    route_load,
)
from .stats import (
    ChurnReport,
    ClassStats,
    batch_means,
    export_report,
    journal_digest_of,
    ledger_digest,
    summarize,
    utilization_timeline,
)

__all__ = [
    "ChurnEngine",
    "ChurnRecord",
    "ChurnScenario",
    "TrafficClass",
    "LinkFailure",
    "BlockingPoint",
    "blocking_curve",
    "run_scenario",
    "star_pairs",
    "opposite_pairs",
    "AdmissionPolicy",
    "FirstPathPolicy",
    "KAlternatePolicy",
    "LeastLoadedPolicy",
    "POLICY_NAMES",
    "make_policy",
    "route_load",
    "ChurnReport",
    "ClassStats",
    "batch_means",
    "export_report",
    "journal_digest_of",
    "ledger_digest",
    "summarize",
    "utilization_timeline",
]
