"""Pluggable route-selection strategies for dynamic admission.

The paper assumes a *preselected* route carried by the SETUP message; a
production CAC serving churning traffic gets to choose which route to
preselect, and to try another when the first one is refused.  This
module captures that choice as an :class:`AdmissionPolicy`: given a
``(src, dst)`` pair and the live :class:`~repro.core.admission.NetworkCAC`
state, a policy returns the ordered candidate routes a setup attempt
should walk, first choice first.

Three strategies ship (all backed by
:func:`~repro.network.routing.alternate_paths`, whose ``(hop count,
link names)`` ordering makes every candidate list deterministic):

* :class:`FirstPathPolicy` -- the single best path; a refusal blocks
  the call.  This is the paper's original behaviour and the baseline
  the blocking-probability analytics compare against.
* :class:`KAlternatePolicy` -- up to ``k`` loopless paths in hop-count
  order; a refusal retries on the next candidate (crankback routing).
* :class:`LeastLoadedPolicy` -- the same ``k`` candidates reordered by
  current bottleneck utilization (ties broken by the hop-count order),
  so fresh traffic steers away from hot links *before* being refused.

Policies must not consume any randomness: the churn engine guarantees
that two runs differing only in policy see the *same* arrival sequence,
which is what makes policy comparisons (first-path vs k-alternate
blocking at equal offered load) apples to apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List

from ..exceptions import TrafficModelError
from ..network.routing import Route, alternate_paths
from ..network.topology import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.admission import NetworkCAC

__all__ = [
    "AdmissionPolicy",
    "FirstPathPolicy",
    "KAlternatePolicy",
    "LeastLoadedPolicy",
    "POLICY_NAMES",
    "make_policy",
    "route_load",
]


def route_load(cac: "NetworkCAC", route: Route) -> float:
    """Bottleneck long-run utilization along a route's queueing points.

    The maximum :meth:`~repro.core.switch_cac.SwitchCAC.utilization`
    over the route's hops -- the quantity a least-loaded selector
    minimizes.  A route with no hops (single access link) loads no
    queueing point and scores 0.
    """
    worst = 0.0
    for hop in route.hops():
        worst = max(worst, float(cac.switch(hop.switch).utilization(
            hop.out_link)))
    return worst


class AdmissionPolicy(ABC):
    """Orders the candidate routes one setup attempt may try."""

    #: Stable identifier (CLI flag value, metrics label, report field).
    name: str = "abstract"

    @abstractmethod
    def routes(self, cac: "NetworkCAC", network: Network,
               src: str, dst: str) -> List[Route]:
        """Candidate routes from ``src`` to ``dst``, first choice first.

        May be empty (unroutable pair).  Implementations must be
        deterministic functions of the arguments and draw no
        randomness.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FirstPathPolicy(AdmissionPolicy):
    """The single best path; no retry on refusal (the paper's scheme)."""

    name = "first-path"

    def routes(self, cac: "NetworkCAC", network: Network,
               src: str, dst: str) -> List[Route]:
        return alternate_paths(network, src, dst, k=1)


class KAlternatePolicy(AdmissionPolicy):
    """Crankback over up to ``k`` loopless paths in hop-count order."""

    name = "k-alternate"

    def __init__(self, k: int = 2):
        if k < 1:
            raise TrafficModelError(f"need k >= 1 candidate routes, got {k}")
        self.k = k

    def routes(self, cac: "NetworkCAC", network: Network,
               src: str, dst: str) -> List[Route]:
        return alternate_paths(network, src, dst, k=self.k)

    def __repr__(self) -> str:
        return f"KAlternatePolicy(k={self.k})"


class LeastLoadedPolicy(AdmissionPolicy):
    """``k`` candidates reordered by current bottleneck utilization.

    Sorting is stable, so routes with equal load keep their hop-count
    order -- shorter (or lexicographically earlier) routes still win
    ties, and the ordering stays deterministic under churn.
    """

    name = "least-loaded"

    def __init__(self, k: int = 2):
        if k < 1:
            raise TrafficModelError(f"need k >= 1 candidate routes, got {k}")
        self.k = k

    def routes(self, cac: "NetworkCAC", network: Network,
               src: str, dst: str) -> List[Route]:
        candidates = alternate_paths(network, src, dst, k=self.k)
        return sorted(candidates, key=lambda route: route_load(cac, route))

    def __repr__(self) -> str:
        return f"LeastLoadedPolicy(k={self.k})"


#: CLI-facing policy names, in presentation order.
POLICY_NAMES = ("first-path", "k-alternate", "least-loaded")


def make_policy(name: str, k: int = 2) -> AdmissionPolicy:
    """Build a policy from its CLI name (``k`` ignored by first-path)."""
    if name == "first-path":
        return FirstPathPolicy()
    if name == "k-alternate":
        return KAlternatePolicy(k)
    if name == "least-loaded":
        return LeastLoadedPolicy(k)
    raise TrafficModelError(
        f"unknown admission policy {name!r}; expected one of {POLICY_NAMES}"
    )
